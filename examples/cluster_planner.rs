//! Capacity-planning with the paper's performance model.
//!
//! ```sh
//! cargo run --release --example cluster_planner -- 128 134217728
//! ```
//!
//! Given a node count and a per-node problem size, answers the questions
//! §4 and §7 pose: which algorithm, which machine, and which coprocessor
//! usage mode — with the predicted times and TFLOPS for every combination.

use soifft::model::{ClusterModel, ScalingPoint};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let per_node: f64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or((1u64 << 27) as f64);
    let n = per_node * nodes as f64;

    let xeon = ClusterModel::xeon(nodes);
    let phi = ClusterModel::xeon_phi(nodes);

    println!("capacity plan: {nodes} nodes, {per_node:.0} points/node (N = {n:.3e})\n");
    println!("{:<34}{:>10}{:>10}", "configuration", "time (s)", "TFLOPS");
    let report = |label: &str, t: f64| {
        println!("{label:<34}{t:>10.3}{:>10.2}", ClusterModel::tflops(n, t));
        t
    };
    let ct_x = report("Cooley-Tukey / Xeon", xeon.ct_time(n).total());
    report("Cooley-Tukey / Xeon Phi", phi.ct_time(n).total());
    report("SOI / Xeon", xeon.soi_time(n).total());
    let soi_sym = report("SOI / Xeon Phi (symmetric)", phi.soi_time(n).total());
    let soi_off = report("SOI / Xeon Phi (offload)", phi.soi_offload_time(n).total());
    report(
        "SOI / Xeon Phi (sym, 8 segments)",
        phi.soi_time_overlapped(n, 8).total(),
    );

    println!("\nrecommendation:");
    println!(
        "  best algorithm/machine: SOI on Xeon Phi, symmetric mode ({:.2}x over CT/Xeon)",
        ct_x / soi_sym
    );
    println!(
        "  offload-mode penalty if the application dictates it: {:.0}%",
        (soi_off / soi_sym - 1.0) * 100.0
    );

    // Where does this configuration sit on the weak-scaling curve?
    let sweep = soifft::model::weak_scaling(&[nodes / 2, nodes, nodes * 2], per_node);
    println!("\nneighbouring weak-scaling points (SOI/Phi):");
    for ScalingPoint { nodes, soi_phi, .. } in sweep {
        println!("  {nodes:>5} nodes -> {soi_phi:.2} TFLOPS");
    }
}
