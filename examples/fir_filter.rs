//! FFT-accelerated FIR filtering (overlap–save) with the real-input FFT.
//!
//! ```sh
//! cargo run --release --example fir_filter
//! ```
//!
//! A classic downstream use of the node-local FFT library: filter a long
//! real signal with a 129-tap low-pass FIR by multiplying in the frequency
//! domain, block by block (overlap–save), and verify against direct
//! time-domain convolution. Demonstrates `RealFft` (r2c/c2r) and shows the
//! O(N log N) vs O(N·taps) advantage.

use soifft::fft::RealFft;
use soifft::num::c64;
use soifft::num::special::sinc;

/// Windowed-sinc low-pass FIR, cutoff in cycles/sample.
fn design_lowpass(taps: usize, cutoff: f64) -> Vec<f64> {
    assert!(taps % 2 == 1, "odd tap count keeps the filter symmetric");
    let mid = (taps / 2) as f64;
    (0..taps)
        .map(|i| {
            let t = i as f64 - mid;
            // Hann-windowed sinc.
            let w = 0.5 + 0.5 * (std::f64::consts::PI * t / (mid + 1.0)).cos();
            2.0 * cutoff * sinc(2.0 * cutoff * t) * w
        })
        .collect()
}

/// Direct O(N·taps) convolution ("valid" samples only) — the reference.
fn convolve_direct(x: &[f64], h: &[f64]) -> Vec<f64> {
    let n = x.len();
    let k = h.len();
    (0..n - k + 1)
        .map(|i| {
            h.iter()
                .enumerate()
                .map(|(j, &hj)| hj * x[i + k - 1 - j])
                .sum()
        })
        .collect()
}

/// Overlap–save fast convolution via the real FFT.
fn convolve_fft(x: &[f64], h: &[f64], block: usize) -> Vec<f64> {
    let k = h.len();
    assert!(block.is_power_of_two() && block > 2 * k, "block too small");
    let step = block - (k - 1);
    let plan = RealFft::new(block);

    // Frequency response of the zero-padded filter.
    let mut h_pad = vec![0.0; block];
    h_pad[..k].copy_from_slice(h);
    let h_spec = plan.forward(&h_pad);

    let mut out = Vec::with_capacity(x.len());
    let mut pos = 0;
    while pos + block <= x.len() {
        let spec = plan.forward(&x[pos..pos + block]);
        let prod: Vec<c64> = spec.iter().zip(&h_spec).map(|(&a, &b)| a * b).collect();
        let y = plan.inverse(&prod);
        // First k−1 samples of each block are circular garbage: discard.
        out.extend_from_slice(&y[k - 1..k - 1 + step.min(y.len() - (k - 1))]);
        pos += step;
    }
    out
}

fn main() {
    let n = 1 << 16;
    let taps = 129;
    let h = design_lowpass(taps, 0.05);

    // Signal: slow ramp + low tone (should pass) + high tone (should be
    // rejected).
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            (2.0 * std::f64::consts::PI * 0.01 * t).sin()
                + 0.8 * (2.0 * std::f64::consts::PI * 0.25 * t).sin()
        })
        .collect();

    let t0 = std::time::Instant::now();
    let fast = convolve_fft(&x, &h, 1024);
    let t_fast = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let direct = convolve_direct(&x, &h);
    let t_direct = t0.elapsed().as_secs_f64();

    // Compare on the overlap of both outputs.
    let m = fast.len().min(direct.len());
    let max_err = fast[..m]
        .iter()
        .zip(&direct[..m])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    // Measure rejection: RMS of the high tone before/after.
    let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
    let rms_in = rms(&x);
    let rms_out = rms(&fast[..m]);

    println!("overlap-save FIR filtering, N = {n}, taps = {taps}");
    println!("  fast (FFT)    : {t_fast:.4} s");
    println!(
        "  direct        : {t_direct:.4} s  ({:.1}x slower)",
        t_direct / t_fast
    );
    println!("  max |fast - direct| = {max_err:.3e}");
    println!("  RMS in {rms_in:.3} -> out {rms_out:.3} (high tone removed)");

    assert!(max_err < 1e-10, "fast convolution disagrees with direct");
    // Input RMS = √(0.5 + 0.32) ≈ 0.906; with the 0.25-cyc/sample tone
    // rejected, only the unit low tone remains: RMS ≈ 1/√2.
    assert!(
        (rms_out - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
        "low-pass output RMS {rms_out} != 0.707"
    );
    println!("ok.");
}
