//! Quickstart: plan and run a Segment-of-Interest FFT in one process.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the three things a new user needs: planning (with parameter
//! validation), executing, and judging accuracy against the conventional
//! FFT.

use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::{Rational, SoiFftLocal};

fn main() {
    // 2^16 points split into 16 segments of interest; oversampling 5/4 and
    // a 72-block window, the paper's "typical" design point.
    let n = 1 << 16;
    let segments = 16;
    let soi = SoiFftLocal::new(n, segments, Rational::new(5, 4), 72)
        .expect("parameters satisfy the SOI divisibility constraints");

    // A signal with two complex tones and a little deterministic "noise".
    let x: Vec<c64> = (0..n)
        .map(|i| {
            let t = i as f64;
            let tone_a = c64::cis(2.0 * std::f64::consts::PI * 1234.0 * t / n as f64);
            let tone_b = c64::cis(2.0 * std::f64::consts::PI * 40000.0 * t / n as f64) * 0.5;
            tone_a + tone_b + c64::new(0.0, 0.01 * (0.1 * t).sin())
        })
        .collect();

    // SOI forward transform.
    let y = soi.forward(&x);

    // Reference: the library's own conventional FFT.
    let mut reference = x.clone();
    Plan::new(n).forward(&mut reference);
    let err = rel_l2(&y, &reference);

    // Locate the two tones in the SOI spectrum.
    let mut peaks: Vec<(usize, f64)> = y.iter().map(|z| z.abs()).enumerate().collect();
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("SOI FFT quickstart");
    println!("  N            = {n}");
    println!(
        "  segments (L) = {segments}  (each recovers {} bins)",
        n / segments
    );
    println!("  mu           = 5/4, B = 72");
    println!("  rel_l2 error vs conventional FFT = {err:.3e}");
    println!(
        "  strongest bins: {} and {} (expected 1234 and 40000)",
        peaks[0].0, peaks[1].0
    );

    assert!(err < 1e-6, "SOI accuracy regression");
    let top2: Vec<usize> = peaks[..2].iter().map(|p| p.0).collect();
    assert!(top2.contains(&1234) && top2.contains(&40000));
    println!("ok.");
}
