//! Realistic workload: wideband spectral surveillance with a distributed
//! SOI FFT.
//!
//! ```sh
//! cargo run --release --example spectral_analysis
//! ```
//!
//! The scenario the paper's introduction motivates: a single *long* 1D
//! signal (here a simulated wideband capture with several narrowband
//! emitters buried in noise) that no single node can transform alone. Each
//! of the P ranks holds a contiguous time slice; after the SOI transform,
//! each rank holds contiguous *frequency segments* — exactly the
//! "segment of interest" a downstream detector wants, with no extra
//! redistribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soifft::cluster::Cluster;
use soifft::num::c64;
use soifft::soi::{Rational, SoiFft, SoiParams};

/// Narrowband emitters: (frequency bin, amplitude).
const EMITTERS: [(usize, f64); 4] = [(3_000, 1.0), (17_500, 0.6), (33_100, 0.8), (61_000, 0.4)];

fn main() {
    let procs = 8;
    let n = 1 << 16;
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 32,
    };
    params.validate().expect("valid");

    // Synthesize the capture: tones + complex white noise.
    let mut rng = StdRng::seed_from_u64(2013);
    let x: Vec<c64> = (0..n)
        .map(|i| {
            let mut v = c64::new(
                0.05 * rng.gen_range(-1.0..1.0),
                0.05 * rng.gen_range(-1.0..1.0),
            );
            for &(bin, amp) in &EMITTERS {
                let phase = 2.0 * std::f64::consts::PI * (bin * i) as f64 / n as f64;
                v += c64::cis(phase) * amp;
            }
            v
        })
        .collect();

    // Distribute time slices and transform.
    let per = params.per_rank();
    let inputs: Vec<Vec<c64>> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();
    let fft = SoiFft::new(params).expect("plannable");

    // Each rank detects peaks in its own frequency segments — no gather of
    // the full spectrum is ever needed.
    let detections = Cluster::run(procs, |comm| {
        let rank = comm.rank();
        let y = fft.forward(comm, &inputs[rank]);
        let base_bin = rank * per;
        // Noise floor estimate: median-ish via mean magnitude.
        let mean: f64 = y.iter().map(|z| z.abs()).sum::<f64>() / y.len() as f64;
        let threshold = 20.0 * mean;
        let mut found: Vec<(usize, f64)> = y
            .iter()
            .enumerate()
            .filter(|(_, z)| z.abs() > threshold)
            .map(|(i, z)| (base_bin + i, z.abs() / n as f64))
            .collect();
        found.sort_by(|a, b| b.1.total_cmp(&a.1));
        found
    });

    println!("wideband spectral analysis: N = {n}, {procs} ranks, 4 emitters injected\n");
    let mut all: Vec<(usize, f64)> = Vec::new();
    for (rank, found) in detections.iter().enumerate() {
        let lo = rank * per;
        println!(
            "rank {rank}: owns bins [{lo}, {}), detections: {:?}",
            lo + per,
            found
                .iter()
                .map(|&(b, a)| format!("bin {b} (amp {a:.2})"))
                .collect::<Vec<_>>()
        );
        all.extend_from_slice(found);
    }

    // Every injected emitter must be found, at the right amplitude.
    for &(bin, amp) in &EMITTERS {
        let hit = all
            .iter()
            .find(|&&(b, _)| b == bin)
            .unwrap_or_else(|| panic!("emitter at bin {bin} not detected"));
        assert!(
            (hit.1 - amp).abs() < 0.05,
            "amplitude at bin {bin}: got {:.3}, injected {amp}",
            hit.1
        );
    }
    println!(
        "\nall {} emitters detected with correct amplitudes — ok.",
        EMITTERS.len()
    );

    // --- Segment-of-interest follow-up -------------------------------------
    // Revisit just the band around the strongest emitter: the namesake
    // capability — the all-to-all ships only the wanted segments' data
    // (here 1 of 16: 1/16th of the communication volume) and only that
    // segment's recovery FFT runs.
    let l = params.total_segments();
    let seg_of = |bin: usize| bin / (n / l);
    let target = seg_of(EMITTERS[0].0);
    let revisit = Cluster::run(procs, |comm| {
        let segs = fft.forward_segments(comm, &inputs[comm.rank()], &[target]);
        (segs, comm.stats().bytes_in("all-to-all"))
    });
    let owner = revisit
        .iter()
        .position(|(segs, _)| !segs.is_empty())
        .expect("someone owns the target segment");
    let (s, bins) = &revisit[owner].0[0];
    let base = s * (n / l);
    let peak = bins
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, v)| (base + i, v.abs() / n as f64))
        .expect("non-empty segment");
    println!(
        "segment-of-interest revisit: segment {s} (bins [{base}, {})) on rank {owner}: \
         peak at bin {} amp {:.2}; all-to-all bytes {} (full scan: {})",
        base + n / l,
        peak.0,
        peak.1,
        revisit[owner].1,
        // Full exchange ships S·blocks·P elements of 16 B.
        params.segments_per_proc * params.blocks_per_rank() * procs * 16,
    );
    assert_eq!(peak.0, EMITTERS[0].0);
    println!("ok.");
}
