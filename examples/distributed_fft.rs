//! Distributed SOI FFT vs the Cooley–Tukey baseline on a simulated
//! cluster.
//!
//! ```sh
//! cargo run --release --example distributed_fft
//! ```
//!
//! Runs both distributed algorithms on an 8-rank cluster, verifies each
//! against a single-process reference transform, and prints the
//! communication ledger that makes the paper's point: SOI moves ~µ/3 of
//! Cooley–Tukey's all-to-all volume in a single exchange.

use soifft::cluster::Cluster;
use soifft::ct::DistributedCtFft;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::{Rational, SoiFft, SoiParams};

fn main() {
    let procs = 8;
    let n = 1 << 16;

    // Deterministic input, block-distributed like a real MPI application.
    let x: Vec<c64> = (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new(
                (0.002 * t).sin() + (0.13 * t).cos() * 0.3,
                (0.0007 * t).cos(),
            )
        })
        .collect();
    let per = n / procs;
    let inputs: Vec<Vec<c64>> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    let mut reference = x.clone();
    Plan::new(n).forward(&mut reference);

    // --- SOI: one all-to-all + ghost exchange -----------------------------
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let soi = SoiFft::new(params).expect("valid SOI parameters");
    let soi_runs = Cluster::run(procs, |comm| {
        let y = soi.forward(comm, &inputs[comm.rank()]);
        (y, comm.stats().clone())
    });
    let soi_out: Vec<c64> = soi_runs
        .iter()
        .flat_map(|(y, _)| y.iter().copied())
        .collect();
    let soi_err = rel_l2(&soi_out, &reference);
    let soi_bytes = soi_runs[0].1.total_bytes_sent();

    // --- Cooley–Tukey: three all-to-alls -----------------------------------
    let ct = DistributedCtFft::new(n, procs).expect("valid CT split");
    let ct_runs = Cluster::run(procs, |comm| {
        let y = ct.forward(comm, &inputs[comm.rank()]);
        (y, comm.stats().clone())
    });
    let ct_out: Vec<c64> = ct_runs
        .iter()
        .flat_map(|(y, _)| y.iter().copied())
        .collect();
    let ct_err = rel_l2(&ct_out, &reference);
    let ct_bytes = ct_runs[0].1.total_bytes_sent();

    println!("distributed 1D FFT, N = {n}, P = {procs} simulated ranks\n");
    println!("algorithm      all-to-alls  bytes sent/rank  rel_l2 error");
    println!(
        "SOI            {:>11}  {:>15}  {soi_err:.3e}",
        soi_runs[0].1.count_of("all-to-all"),
        soi_bytes
    );
    println!(
        "Cooley-Tukey   {:>11}  {:>15}  {ct_err:.3e}",
        ct_runs[0].1.count_of("all-to-all"),
        ct_bytes
    );
    println!(
        "\ncommunication ratio CT/SOI = {:.2}x  (SOI sends µN once; CT sends N three times)",
        ct_bytes as f64 / soi_bytes as f64
    );

    assert!(soi_err < 1e-7 && ct_err < 1e-10);
    assert!(ct_bytes > soi_bytes);
    println!("ok.");
}
