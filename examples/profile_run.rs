//! Per-phase profiling of the distributed SOI superstep (the paper's
//! Fig 9 time breakdown, measured instead of modeled).
//!
//! ```sh
//! cargo run --release --example profile_run
//! ```
//!
//! Runs the SOI transform on a 4-rank simulated cluster with tracing on
//! ([`ClusterConfig::with_trace`]) and Table 2-flavoured virtual-time
//! rates, then:
//!
//! * prints the rank-0 span tree and the cross-rank per-phase table
//!   ([`text_tree`]) — the measured Fig 9 breakdown,
//! * compares every phase's simulated time against the a-priori model
//!   prediction ([`PlanReport::predicted_phases`]); the two must agree to
//!   rounding because the ledger applies the very same formulas,
//! * runs the Cooley-Tukey baseline traced for the communication
//!   contrast (three all-to-alls vs one),
//! * writes `artifacts/example_profile.json` (chrome://tracing — open via
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and
//!   `artifacts/example_profile.txt` (this report).

use std::fs;

use soifft::cluster::{
    chrome_trace_json, text_tree, Cluster, ClusterConfig, CommStats, RankOutcome, RunProfile,
};
use soifft::ct::DistributedCtFft;
use soifft::model::MachineSpec;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::par::Pool;
use soifft::soi::{PlanReport, Rational, SimSpec, SoiFft, SoiParams};

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.05 * t).sin() + 0.4, 0.3 * (0.11 * t).cos())
        })
        .collect()
}

fn unwrap_ranks(outcomes: Vec<RankOutcome<CommStats>>) -> Vec<CommStats> {
    outcomes
        .into_iter()
        .map(|o| match o {
            RankOutcome::Ok(s) => s,
            other => panic!("rank failed: {other:?}"),
        })
        .collect()
}

fn main() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    // Table 2-flavoured rates: a Xeon Phi-class node at the usual FFT and
    // convolution efficiencies, FDR-InfiniBand-class links.
    let phi = MachineSpec::xeon_phi_se10();
    let sim = SimSpec {
        fft_flops_per_s: 0.12 * phi.peak_gflops * 1e9,
        conv_flops_per_s: 0.40 * phi.peak_gflops * 1e9,
        net_bytes_per_s: 3.0 * (1u64 << 30) as f64,
        net_latency_s: 1e-6,
    };

    let x = signal(params.n);
    let per = params.per_rank();
    let inputs: Vec<Vec<c64>> = (0..params.procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    // One instrumented intra-node pool, shared by the simulated ranks
    // (they are threads of one process here); its busy-time counters are
    // folded into the profile below.
    let pool = Pool::instrumented(2);
    let fft = SoiFft::new(params)
        .unwrap()
        .with_sim(sim)
        .with_pool(pool.clone());

    let soi_run = Cluster::run_with(ClusterConfig::with_trace(), params.procs, |comm| {
        let y = fft.forward(comm, &inputs[comm.rank()]);
        (y, comm.stats().clone())
    });
    let mut ys = Vec::new();
    let mut stats = Vec::new();
    for o in soi_run {
        match o {
            RankOutcome::Ok((y, s)) => {
                ys.push(y);
                stats.push(s);
            }
            other => panic!("rank failed: {other:?}"),
        }
    }

    // Verify before profiling anything.
    let got: Vec<c64> = ys.into_iter().flatten().collect();
    let mut want = x.clone();
    soifft::fft::Plan::new(params.n).forward(&mut want);
    let err = rel_l2(&got, &want);
    assert!(err < 1e-7, "transform failed: rel_l2 = {err:.2e}");

    // Fold the shared pool's busy time into rank 0's ledger (the pool is
    // node-wide; the profile sums the column across ranks anyway).
    if let Some(m) = pool.metrics() {
        stats[0].add_pool_metrics(m.busy_seconds(), m.tasks());
    }

    let mut report = String::new();
    report.push_str(&format!(
        "SOI profile: N = 2^{}, P = {}, S = {} (transform verified, rel_l2 = {err:.1e})\n\n",
        params.n.trailing_zeros(),
        params.procs,
        params.segments_per_proc
    ));
    report.push_str(&text_tree(&stats));

    // Measured (simulated-time) breakdown vs the a-priori model — the
    // Fig 9 bars next to their prediction. Same formulas, so the match is
    // exact up to floating-point rounding.
    let breakdown = PlanReport::new(params).unwrap().predicted_phases(&sim);
    report.push_str("\nmeasured vs model (simulated seconds per rank):\n");
    report.push_str("  phase         measured       model          |rel diff|\n");
    for (name, model_s) in breakdown.phases() {
        let measured = stats[0].sim_seconds_in(name);
        let rel = (measured - model_s).abs() / model_s.max(1e-300);
        report.push_str(&format!(
            "  {name:<12}  {measured:>11.4e}  {model_s:>11.4e}  {rel:>9.1e}\n"
        ));
        assert!(rel < 1e-9, "{name}: measured {measured} vs model {model_s}");
    }
    report.push_str(&format!(
        "  total         {:>11.4e}  {:>11.4e}\n",
        breakdown
            .phases()
            .iter()
            .map(|(n, _)| stats[0].sim_seconds_in(n))
            .sum::<f64>(),
        breakdown.total_s()
    ));

    // The Cooley-Tukey baseline, traced the same way: three all-to-alls'
    // worth of bytes against SOI's one (times the µ oversampling).
    let ct = DistributedCtFft::new(params.n, params.procs).unwrap();
    let ct_stats = unwrap_ranks(Cluster::run_with(
        ClusterConfig::with_trace(),
        params.procs,
        |comm| {
            ct.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        },
    ));
    let soi_a2a = RunProfile::from_stats(&stats)
        .phase("all-to-all")
        .map_or(0, |p| p.total_bytes);
    let ct_a2a = RunProfile::from_stats(&ct_stats)
        .phase("all-to-all")
        .map_or(0, |p| p.total_bytes);
    report.push_str(&format!(
        "\ncommunication: SOI {} all-to-all B in {} exchange, CT baseline {} B in {} \
         (SOI pays the µ = {} oversampling once instead of exchanging three times)\n",
        soi_a2a,
        stats[0].count_of("all-to-all"),
        ct_a2a,
        ct_stats[0].count_of("all-to-all"),
        params.mu,
    ));

    print!("{report}");

    fs::create_dir_all("artifacts").unwrap();
    fs::write("artifacts/example_profile.json", chrome_trace_json(&stats)).unwrap();
    fs::write("artifacts/example_profile.txt", &report).unwrap();
    println!("\nwrote artifacts/example_profile.json (chrome://tracing) and artifacts/example_profile.txt");
}
