//! Serving run: the overload-safe front end under normal load, burst
//! overload, deadlines, a rank crash, and a tripped circuit breaker.
//!
//! ```sh
//! cargo run --release --example serve_run
//! ```
//!
//! Scenario 1 serves a multi-tenant batch with deadlines: every job
//! completes within its deadline and the spectra verify against a
//! single-process reference FFT.
//!
//! Scenario 2 floods a deliberately tiny engine: excess submissions get
//! typed `Rejected::{QueueFull, RateLimited}` answers immediately — the
//! queue is bounded, so overload sheds at the front door instead of
//! buffering without limit.
//!
//! Scenario 3 submits a job whose deadline has already passed: it is
//! shed *before* execution with `JobError::DeadlineExpired` — the
//! engine never spends cluster time on an answer nobody can use.
//!
//! Scenario 4 crashes a rank mid-batch: in-flight jobs fail with the
//! typed `JobError::RankFailure`, the supervisor respawns the rank, and
//! the jobs still queued complete correctly after recovery.
//!
//! Scenario 5 crashes the same rank three times: the circuit breaker
//! trips open (new submissions get `Rejected::Unavailable` with a retry
//! hint), then — after the cooldown — a half-open probe serves cleanly
//! and the breaker closes again.

use std::time::Duration;

use soifft::cluster::{ClusterConfig, CrashSite, ExchangePolicy, FaultPlan, RestartPolicy};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::serve::{
    BreakerConfig, BreakerState, JobError, RateLimit, Rejected, ServeConfig, ServeEngine,
};
use soifft::soi::{Rational, SoiParams};

fn main() {
    let procs = 4;
    let params = SoiParams {
        n: 1 << 10,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let n = params.n;
    let x: Vec<c64> = (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.06 * t).sin() + 0.1, 0.3 * (0.017 * t).cos())
        })
        .collect();
    let mut reference = x.clone();
    Plan::new(n).forward(&mut reference);
    let exchange = ExchangePolicy {
        deadline: Duration::from_secs(2),
        ..ExchangePolicy::default()
    };

    // --- scenario 1: normal multi-tenant service with deadlines -----------
    println!("scenario 1: 2 tenants, 6 jobs, 1 s deadlines, N = {n}, P = {procs}");
    let engine = ServeEngine::start(
        params,
        ServeConfig {
            tenants: 2,
            queue_capacity: 8,
            max_batch: 2,
            exchange,
            ..ServeConfig::default()
        },
    )
    .expect("valid SOI parameters");
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            engine
                .submit(i % 2, &x, Some(Duration::from_secs(1)))
                .expect("admitted")
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let spectrum = t.wait().expect("served within deadline");
        let err = rel_l2(&spectrum, &reference);
        assert!(err < 1e-9);
        println!("  job {i} (tenant {}): verified, rel_l2 = {err:.3e}", i % 2);
    }
    let report = engine.shutdown();
    assert!(report.clean);
    println!(
        "  drained clean: {} completed, {} rejected\n",
        report.stats.completed, report.stats.rejected
    );

    // --- scenario 2: burst overload sheds at the front door ---------------
    println!("scenario 2: burst of 40 against queue bound 2 + rate limit (burst 3)");
    let tiny = ServeEngine::start(
        params,
        ServeConfig {
            tenants: 1,
            queue_capacity: 2,
            max_batch: 1,
            rate_limit: Some(RateLimit {
                rate_per_s: 0.5,
                burst: 3.0,
            }),
            exchange,
            ..ServeConfig::default()
        },
    )
    .expect("valid SOI parameters");
    let mut admitted = Vec::new();
    let (mut queue_full, mut rate_limited) = (0u32, 0u32);
    for _ in 0..40 {
        match tiny.submit(0, &x, None) {
            Ok(t) => admitted.push(t),
            Err(Rejected::QueueFull { .. }) => queue_full += 1,
            Err(Rejected::RateLimited { retry_after, .. }) => {
                assert!(retry_after > Duration::ZERO, "honest retry hint");
                rate_limited += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    let mut served = admitted.len();
    for t in admitted {
        t.wait().expect("admitted jobs complete");
    }
    println!(
        "  burst A: {served} admitted (all served), {queue_full} QueueFull, \
         {rate_limited} RateLimited"
    );
    assert_eq!(served as u32 + queue_full + rate_limited, 40);
    assert!(
        queue_full > 0,
        "a burst of 40 against a queue of 2 must shed"
    );
    // Burst B arrives with the queue idle but the token bucket drained
    // (0.5 tokens/s refill): the limiter answers, not the queue.
    let (mut admitted_b, mut rate_limited_b) = (0u32, 0u32);
    for _ in 0..10 {
        match tiny.submit(0, &x, None) {
            Ok(t) => {
                admitted_b += 1;
                t.wait().expect("admitted jobs complete");
            }
            Err(Rejected::RateLimited { retry_after, .. }) => {
                assert!(retry_after > Duration::ZERO, "honest retry hint");
                rate_limited_b += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    served += admitted_b as usize;
    println!("  burst B: {admitted_b} admitted, {rate_limited_b} RateLimited (bucket empty)");
    assert!(
        rate_limited_b >= 9,
        "the drained bucket must answer burst B"
    );
    let report = tiny.shutdown();
    assert_eq!(report.stats.completed, served as u64);
    println!("  conservation holds: every submission got exactly one typed answer\n");

    // --- scenario 3: expired deadline is shed before execution ------------
    println!("scenario 3: a job submitted with an already-expired deadline");
    let engine = ServeEngine::start(
        params,
        ServeConfig {
            exchange,
            ..ServeConfig::default()
        },
    )
    .expect("valid SOI parameters");
    let shed = engine
        .submit(0, &x, Some(Duration::ZERO))
        .expect("admission cannot see the future")
        .wait();
    match shed {
        Err(JobError::DeadlineExpired { shed_at }) => {
            println!("  typed shed: DeadlineExpired at {shed_at:?} — never dispatched")
        }
        other => panic!("expected a deadline shed, got {other:?}"),
    }
    let report = engine.shutdown();
    assert_eq!(report.stats.shed_queue, 1);
    println!(
        "  stats record the shed: shed_queue = {}\n",
        report.stats.shed_queue
    );

    // --- scenario 4: rank crash mid-batch, queued jobs survive ------------
    println!("scenario 4: rank 1 crashes in the all-to-all mid-batch (seed 61)");
    let engine = ServeEngine::start(
        params,
        ServeConfig {
            tenants: 2,
            queue_capacity: 8,
            max_batch: 2,
            exchange,
            cluster: ClusterConfig::with_faults(FaultPlan::new(61).crash(1, CrashSite::AllToAll)),
            ..ServeConfig::default()
        },
    )
    .expect("valid SOI parameters");
    let tickets: Vec<_> = (0..6)
        .map(|i| engine.submit(i % 2, &x, None).expect("admitted"))
        .collect();
    let (mut completed, mut rank_failures) = (0u32, 0u32);
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(spectrum) => {
                assert!(rel_l2(&spectrum, &reference) < 1e-9);
                completed += 1;
                println!("  job {i}: verified after recovery");
            }
            Err(JobError::RankFailure) => {
                rank_failures += 1;
                println!("  job {i}: typed RankFailure (was in flight when the rank died)");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rank_failures >= 1 && completed >= 4);
    let report = engine.shutdown();
    assert_eq!(report.restarts, 1);
    println!("  supervisor respawned once; {completed} completed, {rank_failures} failed typed\n");

    // --- scenario 5: breaker trips open, then recovers half-open ----------
    println!("scenario 5: three crashes trip the breaker; cooldown, probe, recover");
    let engine = ServeEngine::start(
        params,
        ServeConfig {
            tenants: 1,
            queue_capacity: 8,
            max_batch: 1,
            exchange,
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(300),
                ..BreakerConfig::default()
            },
            restart: RestartPolicy {
                max_restarts: 4,
                ..RestartPolicy::default()
            },
            cluster: ClusterConfig::with_faults(FaultPlan::new(62).crash_times(
                1,
                CrashSite::AllToAll,
                3,
            )),
            ..ServeConfig::default()
        },
    )
    .expect("valid SOI parameters");
    for k in 0..3 {
        let err = engine
            .submit(0, &x, None)
            .expect("admitted while breaker closed")
            .wait()
            .expect_err("the planned crash kills this batch");
        assert!(matches!(err, JobError::RankFailure));
        println!("  crash {}: {err}", k + 1);
    }
    assert_eq!(engine.breaker_state(), BreakerState::Open);
    match engine.submit(0, &x, None) {
        Err(Rejected::Unavailable { retry_after }) => {
            println!("  breaker OPEN: new work rejected, retry_after = {retry_after:?}")
        }
        other => panic!("expected Unavailable, got {:?}", other.map(|_| ())),
    }
    std::thread::sleep(Duration::from_millis(350));
    let spectrum = engine
        .submit(0, &x, None)
        .expect("half-open admits a probe")
        .wait()
        .expect("the probe serves cleanly");
    assert!(rel_l2(&spectrum, &reference) < 1e-9);
    assert_eq!(engine.breaker_state(), BreakerState::Closed);
    println!("  probe verified; breaker CLOSED — service recovered");
    let report = engine.shutdown();
    println!(
        "  lifetime: {} restarts, {} epoch aborts, {} completed",
        report.restarts, report.stats.epoch_aborts, report.stats.completed
    );

    println!(
        "\nok: bounded queues shed typed, deadlines hold end-to-end, crashes fail only \
         in-flight work, and the breaker fails fast then heals."
    );
}
