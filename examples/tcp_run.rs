//! TCP-mesh mode: the distributed SOI FFT over real sockets.
//!
//! ```sh
//! # single machine, supervised loopback mesh:
//! cargo run --release --example tcp_run
//!
//! # two terminals (or two hosts — use real addresses):
//! cargo run --release --example tcp_run -- 0 2 127.0.0.1:7100 127.0.0.1:7100,127.0.0.1:7101
//! cargo run --release --example tcp_run -- 1 2 127.0.0.1:7101 127.0.0.1:7100,127.0.0.1:7101
//! ```
//!
//! With no arguments, a [`TcpSupervisor`] runs 4 ranks as threads over a
//! loopback mesh — the same wiring `tests/tcp_chaos.rs` partitions.
//!
//! With arguments `<rank> <size> <listen> <dial0,dial1,...>`, this
//! process becomes one rank of a mesh whose peers are launched by hand:
//! each terminal (or host) runs one rank, every rank lists the same dial
//! addresses, and the mesh assembles itself — dialers retry with capped
//! backoff until the staleness budget expires, so start order does not
//! matter as long as every rank is up within that budget. The input is
//! regenerated from a shared seed on every rank, so nothing but frames
//! crosses the network, and every rank prints a checksum of its local
//! spectrum that must match across runs.

use std::sync::Arc;
use std::time::Duration;

use soifft::cluster::transport::tcp::{TcpConfig, TcpEndpoint, TcpSupervisor, TcpTransport};
use soifft::cluster::{
    checksum, CheckpointStore, ClusterConfig, Comm, FailureDetection, RankOutcome, RecoveryCtx,
};
use soifft::fft::Plan;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::gather_output;
use soifft::soi::procrun::seeded_input;
use soifft::soi::tcprun::run_tcp_rank;
use soifft::soi::{Rational, SoiParams};

const SEED: u64 = 0x07C9_5EA1;

fn params(procs: usize) -> SoiParams {
    SoiParams {
        n: 1 << 16,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.len() {
        0 => supervised_loopback(),
        4 => manual_rank(&args),
        _ => {
            eprintln!("usage: tcp_run                                  (loopback demo)");
            eprintln!("       tcp_run <rank> <size> <listen> <dial0,dial1,...>");
            std::process::exit(2);
        }
    }
}

/// No-arg mode: a supervised 4-rank loopback mesh.
fn supervised_loopback() {
    let p = params(4);
    println!(
        "TCP-mesh SOI: N = {}, P = {} ranks over loopback sockets",
        p.n, p.procs
    );
    let sup = TcpSupervisor::new(TcpConfig::default());
    let run = sup
        .run(p.procs, |comm, ctx| run_tcp_rank(comm, ctx, &p, SEED))
        .expect("mesh launches");
    assert!(run.all_ok(), "all ranks must complete: run failed");
    println!("  epochs {} | restarts {}", run.epochs, run.restarts);
    let mut parts = Vec::new();
    for (rank, o) in run.outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok(y) => {
                println!(
                    "  rank {rank}: local spectrum checksum {:#018x}",
                    checksum(&y)
                );
                parts.push(y);
            }
            other => panic!("rank {rank}: unexpected outcome {other:?}"),
        }
    }
    let mut want = seeded_input(p.n, SEED);
    Plan::new(p.n).forward(&mut want);
    let err = rel_l2(&gather_output(parts), &want);
    println!("  spectrum verified: rel_l2 = {err:.3e}");
    assert!(err < 1e-9);
}

/// Arg mode: one hand-launched rank of a multi-terminal (or multi-host)
/// mesh.
fn manual_rank(args: &[String]) {
    let rank: usize = args[0].parse().expect("rank is a number");
    let size: usize = args[1].parse().expect("size is a number");
    let listen = args[2].parse().expect("listen is host:port");
    let dial: Vec<_> = args[3]
        .split(',')
        .map(|a| a.parse().expect("dial addresses are host:port"))
        .collect();
    assert_eq!(dial.len(), size, "need one dial address per rank");
    // Bring-up budget: dialers keep retrying until staleness expires, so
    // a generous budget gives the operator time to start every terminal.
    let detection = FailureDetection {
        staleness_timeout: Duration::from_secs(30),
        ..FailureDetection::default()
    };
    let p = params(size);
    println!("rank {rank}/{size}: listening on {listen}, N = {}", p.n);
    let ep = TcpEndpoint {
        rank,
        size,
        generation: 0,
        restarts: 0,
        listen,
        dial,
        detection,
    };
    let transport = TcpTransport::connect(&ep).expect("listen address binds");
    let config = ClusterConfig {
        detection,
        ..ClusterConfig::default()
    };
    let mut comm = Comm::from_transport(Box::new(transport), &config);
    // Hand-launched ranks have no supervisor: one generation, a local
    // in-memory checkpoint store, and a typed abort on failure.
    let ctx = RecoveryCtx::resume(Arc::new(CheckpointStore::new(size)), 0, 0);
    match run_tcp_rank(&mut comm, &ctx, &p, SEED) {
        Ok(y) => {
            println!(
                "rank {rank}: done — local spectrum checksum {:#018x} ({} bins)",
                checksum(&y),
                y.len()
            );
        }
        Err(e) => {
            eprintln!("rank {rank}: aborted: {e}");
            std::process::exit(1);
        }
    }
}
