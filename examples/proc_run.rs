//! Multi-process mode: the distributed SOI FFT with ranks as real OS
//! processes.
//!
//! ```sh
//! cargo run --release --example proc_run
//! ```
//!
//! The in-process `Cluster` runs ranks as threads over channels; this
//! demo swaps that transport for the multi-process backend: a
//! `ProcSupervisor` spawns each rank as a child process (re-executing
//! this very binary — the probe at the top of `main` turns the child
//! into a rank), wires them through Unix-domain sockets plus a
//! shared-memory ring per rank, points them at a shared **disk**
//! checkpoint directory, and watches their health (exit status +
//! heartbeats).
//!
//! Run 1 is fault-free. Run 2 delivers a real `kill -9` to rank 2 just
//! as its `segment-fft` checkpoint lands (i.e. entering the all-to-all);
//! the supervisor detects the death, respawns the rank set into a new
//! generation, the children resume from the on-disk checkpoints, and the
//! recovered spectrum is bit-identical to run 1.

use std::path::PathBuf;
use std::time::Duration;

use soifft::cluster::transport::proc::{KillPlan, KillWhen, ProcConfig, ProcSupervisor};
use soifft::cluster::FailureDetection;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::gather_output;
use soifft::soi::procrun::{self, read_rank_output, seeded_input};
use soifft::soi::{Rational, SoiParams};

const PROCS: usize = 4;
const SEED: u64 = 0xD15C_0FF7;

fn params() -> SoiParams {
    SoiParams {
        n: 1 << 18,
        procs: PROCS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn bits(v: &[c64]) -> Vec<u64> {
    v.iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

fn main() {
    // Child probe: when the supervisor re-executes this binary with the
    // SOIFFT_PROC_* environment, become the rank process.
    if let Ok(out) = std::env::var("SOIFFT_DEMO_OUT") {
        if let Some(code) = procrun::child_main(&params(), SEED, &PathBuf::from(out)) {
            std::process::exit(code);
        }
    }

    let p = params();
    println!(
        "multi-process SOI: N = {}, P = {PROCS} rank processes (UDS + shm ring, disk checkpoints)",
        p.n
    );
    let exe = std::env::current_exe().expect("own path");
    let work = std::env::temp_dir().join(format!("soifft-proc-run-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);

    let mut want = seeded_input(p.n, SEED);
    Plan::new(p.n).forward(&mut want);

    let run_once = |tag: &str, kill: Option<KillPlan>| {
        let dir = work.join(tag);
        let out = dir.join("out");
        let config = ProcConfig {
            detection: FailureDetection {
                heartbeat_interval: Duration::from_millis(25),
                staleness_timeout: Duration::from_secs(3),
                ..FailureDetection::default()
            },
            kill,
            ..ProcConfig::default()
        };
        let sup = ProcSupervisor::with_config(&dir, config);
        let run = sup
            .run(PROCS, |_, _| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.env("SOIFFT_DEMO_OUT", &out);
                cmd
            })
            .expect("supervised run launches");
        println!(
            "  {tag}: epochs {} | restarts {} | deaths {} (heartbeat {}) | kills injected {} | outcomes {:?}",
            run.epochs, run.restarts, run.deaths, run.heartbeat_deaths, run.injected_kills, run.outcomes
        );
        assert!(run.all_ok(), "{tag}: all ranks must complete");
        let parts: Vec<Vec<c64>> = (0..PROCS)
            .map(|r| read_rank_output(&out, r).expect("rank output present"))
            .collect();
        (run, parts)
    };

    println!("\nrun 1: fault-free");
    let (clean_run, clean_parts) = run_once("clean", None);
    assert_eq!(clean_run.epochs, 1);
    let err = rel_l2(&gather_output(clean_parts.clone()), &want);
    println!("  spectrum verified: rel_l2 = {err:.3e}");
    assert!(err < 1e-9);

    println!("\nrun 2: kill -9 rank 2 as it enters the all-to-all");
    let kill = KillPlan {
        rank: 2,
        generation: 0,
        when: KillWhen::FileExists(work.join("chaos").join("ckpt").join("r2-segment-fft.ckpt")),
    };
    let (chaos_run, chaos_parts) = run_once("chaos", Some(kill));
    assert_eq!(chaos_run.injected_kills, 1, "the kill must fire");
    assert!(
        chaos_run.epochs >= 2,
        "recovery takes a respawned generation"
    );
    for r in 0..PROCS {
        assert_eq!(
            bits(&chaos_parts[r]),
            bits(&clean_parts[r]),
            "rank {r} must recover bit-identically"
        );
    }
    println!("  recovered spectrum: bit-identical to run 1 on every rank");

    let _ = std::fs::remove_dir_all(&work);
    println!("\nok: rank processes die for real, the supervisor respawns them, disk checkpoints make recovery exact.");
}
