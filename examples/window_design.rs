//! Window-design explorer: how the SOI convolution kernel trades
//! oversampling (µ), width (B) and taper family for accuracy.
//!
//! ```sh
//! cargo run --release --example window_design
//! ```
//!
//! Prints, for each design point: the passband flatness (demodulation
//! conditioning), the worst-case alias leakage (the transform's error
//! level), the tap storage cost, and the extra flops the convolution pays —
//! the engineering trade at the heart of the paper.

use soifft::soi::accuracy::alias_bound;
use soifft::soi::{Rational, SoiParams, Window, WindowKind};

fn main() {
    let l = 16usize;
    println!("SOI window design space (L = {l} segments)\n");
    println!(
        "{:<14}{:>6}{:>5}{:>14}{:>14}{:>12}{:>14}",
        "taper", "mu", "B", "passband min", "alias leak", "taps (KB)", "conv flops/pt"
    );

    for kind in [
        WindowKind::GaussianSinc,
        WindowKind::KaiserSinc,
        WindowKind::ProlateSinc,
    ] {
        for (mu, b) in [
            (Rational::new(8, 7), 72usize),
            (Rational::new(5, 4), 72),
            (Rational::new(5, 4), 48),
            (Rational::new(2, 1), 24),
        ] {
            // Pick an M divisible by d_µ.
            let m = mu.den() * 512;
            let params = SoiParams {
                n: m * l,
                procs: 1,
                segments_per_proc: l,
                mu,
                conv_width: b,
            };
            if params.validate().is_err() {
                continue;
            }
            let w = Window::new(kind, &params);

            // Passband conditioning: min |ŵ| over the recovered band,
            // relative to its max (1.0 ⇒ perfectly flat).
            let mut min_mag = f64::INFINITY;
            let mut max_mag: f64 = 0.0;
            for i in 0..32 {
                let f = -(i as f64) * (params.m() as f64 - 1.0) / 31.0 / params.n as f64;
                let mag = w.spectrum_numeric(f).abs();
                min_mag = min_mag.min(mag);
                max_mag = max_mag.max(mag);
            }
            let leak = alias_bound(&w, &params, 9, 2);
            let taps_kb = w.distinct_taps() * 16 / 1024;
            let flops_per_point = 8.0 * b as f64 * mu.as_f64();

            println!(
                "{:<14}{:>6}{:>5}{:>14.3}{:>14.2e}{:>12}{:>14.0}",
                format!("{kind:?}"),
                mu.to_string(),
                b,
                min_mag / max_mag,
                leak,
                taps_kb,
                flops_per_point
            );
        }
    }

    println!("\nHow to read this:");
    println!("* 'alias leak' is the transform's relative-error level; every row");
    println!("  trades it against tap storage and convolution flops (8Bµ per point).");
    println!("* µ=8/7 keeps the extra work small (~15% oversampling) but leaves only");
    println!("  a (µ-1)/L guard band — at B=72 that is where taper optimality");
    println!("  matters: prolate gains ~4 orders of magnitude over Gaussian.");
    println!("* µ=5/4 (the paper's model setting) relaxes the design enough that");
    println!("  all three tapers are excellent.");
}
