//! Chaos run: the distributed SOI FFT under injected link faults and a
//! rank crash.
//!
//! ```sh
//! cargo run --release --example chaos_run
//! ```
//!
//! Scenario 1 runs a 4-rank SOI transform through a fault storm (drops,
//! bit corruption, duplicates, delays). The link layer detects every
//! corrupt frame by checksum, filters duplicates by sequence number and
//! retransmits dropped frames, so the run completes and the spectrum
//! verifies against a single-process reference FFT.
//!
//! Scenario 2 crashes rank 2 in the middle of the all-to-all. The
//! survivors must not hang: the failure detector turns their blocked
//! receives into typed `PeerFailed` errors carrying the partial
//! communication ledger.
//!
//! Scenario 3 runs the same crash under supervision: the supervisor
//! respawns the dead rank, the replacement resumes from its phase
//! checkpoints, and the run completes and verifies.
//!
//! Scenario 4 exhausts the restart budget (it is zero): the survivors
//! recompute the dead rank's segments from checkpointed exchange inputs
//! and the run still completes, degraded but correct.
//!
//! Scenario 5 flips one bit in a rank's local FFT buffer — memory
//! corruption the link layer never sees. Under `CheckOnly` the Parseval
//! invariant flags it as a typed `SilentCorruption`; under `Recover` the
//! flagged phase is re-executed locally and the spectrum comes out
//! bit-identical to a fault-free run.
//!
//! Scenario 6 leaves the in-process world entirely: ranks become real OS
//! processes on the multi-process transport (Unix sockets + shared-memory
//! rings, disk checkpoints), and the fault is a genuine `kill -9` of
//! rank 2 as it enters the all-to-all. The supervisor detects the death,
//! respawns the rank set into a new generation, and the recovered
//! spectrum is bit-identical to a fault-free multi-process run.
//!
//! Scenario 7 moves to the TCP mesh with the deterministic network-fault
//! proxy in path. First a brief partition of rank 2 mid-all-to-all heals
//! transparently — the senders reconnect and resend, zero restarts. Then
//! a partition that outlasts the staleness budget escalates: every rank
//! aborts with a typed `PeerDown`, the TCP supervisor respawns the mesh
//! into a new generation, and the recovered spectrum is bit-identical to
//! the fault-free TCP run.

use std::path::PathBuf;
use std::time::Duration;

use soifft::cluster::transport::netchaos::{
    ChaosTrigger, NetChaosPlan, PartitionKind, PartitionSpec,
};
use soifft::cluster::transport::proc::{KillPlan, KillWhen, ProcConfig, ProcSupervisor};
use soifft::cluster::transport::tcp::{TcpConfig, TcpSupervisor};
use soifft::cluster::{
    run_cluster_with_faults, BitFlipSite, ClusterConfig, CommError, CrashSite, ExchangePolicy,
    FailureDetection, FaultPlan, RankOutcome, RecoveryOutcome, RestartPolicy, ValidationPolicy,
};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::procrun::{self, read_rank_output, seeded_input};
use soifft::soi::tcprun::run_tcp_rank;
use soifft::soi::{Rational, SoiFft, SoiParams};

const PROC_SEED: u64 = 0xC4A0_5FF7;

/// Scenario 6's problem: bigger than the in-process scenarios so the
/// post-checkpoint tail comfortably outlasts the supervisor's kill poll.
fn proc_params() -> SoiParams {
    SoiParams {
        n: 1 << 18,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn main() {
    // Child probe: when scenario 6's supervisor re-executes this binary
    // with the SOIFFT_PROC_* environment, become the rank process.
    if let Ok(out) = std::env::var("SOIFFT_CHAOS_OUT") {
        if let Some(code) = procrun::child_main(&proc_params(), PROC_SEED, &PathBuf::from(out)) {
            std::process::exit(code);
        }
    }
    let procs = 4;
    let params = SoiParams {
        n: 1 << 12,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    };
    let n = params.n;

    let x: Vec<c64> = (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.07 * t).sin() - 0.2, 0.5 * (0.013 * t).cos())
        })
        .collect();
    let mut reference = x.clone();
    Plan::new(n).forward(&mut reference);
    let inputs = scatter_input(&x, procs);
    let fft = SoiFft::new(params).expect("valid SOI parameters");

    // --- scenario 1: transient fault storm, absorbed by the link layer ----
    let plan = FaultPlan::new(42)
        .drop(0.25)
        .corrupt(0.15)
        .duplicate(0.15)
        .delay(0.2, Duration::from_micros(100));
    let policy = ExchangePolicy {
        deadline: Duration::from_secs(2),
        max_rounds: 3,
    };
    println!("scenario 1: SOI N = {n}, P = {procs}, fault storm (seed 42)");
    println!("  plan: drop 25% / corrupt 15% / duplicate 15% / delay 20%\n");

    let outcomes = run_cluster_with_faults(procs, plan, |comm| {
        let y = fft
            .try_forward(comm, &inputs[comm.rank()], &policy)
            .expect("transient faults must be absorbed");
        (
            y,
            comm.fault_events().expect("plan installed"),
            comm.stats().retransmits(),
        )
    });

    let mut parts = Vec::new();
    println!("  rank  drops  corrupt  dup  delay  retransmits");
    for (rank, o) in outcomes.into_iter().enumerate() {
        let (y, ev, retx) = o.unwrap();
        println!(
            "  {rank:>4}  {:>5}  {:>7}  {:>3}  {:>5}  {retx:>11}",
            ev.drops, ev.corruptions, ev.duplicates, ev.delays
        );
        parts.push(y);
    }
    let got = gather_output(parts);
    let err = rel_l2(&got, &reference);
    println!("\n  spectrum verified: rel_l2 = {err:.3e}");
    assert!(err < 1e-9);

    // --- scenario 2: rank 2 crashes mid-exchange, survivors unblock -------
    let crash_plan = FaultPlan::new(7).crash(2, CrashSite::AllToAll);
    let short = ExchangePolicy {
        deadline: Duration::from_millis(300),
        max_rounds: 2,
    };
    println!("\nscenario 2: rank 2 crashes in the all-to-all");

    let outcomes = run_cluster_with_faults(procs, crash_plan, |comm| {
        fft.try_forward(comm, &inputs[comm.rank()], &short)
    });
    for (rank, o) in outcomes.iter().enumerate() {
        match o {
            RankOutcome::Crashed => println!("  rank {rank}: crashed (injected)"),
            RankOutcome::Ok(Err(e)) => {
                assert_eq!(e.error, CommError::PeerFailed { rank: 2 });
                println!(
                    "  rank {rank}: typed failure in {} phase: {} ({} ledger phases retained)",
                    e.phase,
                    e.error,
                    e.stats.records().len()
                );
            }
            RankOutcome::Err(e) => {
                assert_eq!(*e, CommError::PeerFailed { rank: 2 });
                println!("  rank {rank}: typed failure: {e}");
            }
            other => panic!("rank {rank}: unexpected outcome {other:?}"),
        }
    }
    assert!(matches!(outcomes[2], RankOutcome::Crashed));

    // --- scenario 3: same crash, but supervised — respawn and complete ----
    println!("\nscenario 3: rank 2 crashes in the all-to-all, supervisor respawns it");
    let crash_plan = FaultPlan::new(7).crash(2, CrashSite::AllToAll);
    let run = fft
        .forward_recovered(
            ClusterConfig::with_faults(crash_plan),
            RestartPolicy::default(),
            &policy,
            &inputs,
        )
        .expect("supervised run completes");
    let RecoveryOutcome::Recovered {
        restarts,
        recomputed_segments,
    } = run.recovery
    else {
        panic!("expected a recovery, got {:?}", run.recovery);
    };
    println!("  recovery: {restarts} restart(s), {recomputed_segments} segment(s) recomputed");
    let got = gather_output(run.outputs);
    let err = rel_l2(&got, &reference);
    println!("  spectrum verified after respawn: rel_l2 = {err:.3e}");
    assert!(err < 1e-9);

    // --- scenario 4: restart budget exhausted, degraded-mode completion ---
    println!("\nscenario 4: rank 1 crashes in the segment FFT, restart budget is zero");
    let crash_plan = FaultPlan::new(9).crash(1, CrashSite::Phase("segment-fft"));
    let run = fft
        .forward_recovered(
            ClusterConfig::with_faults(crash_plan),
            RestartPolicy::disabled(),
            &policy,
            &inputs,
        )
        .expect("degraded run completes");
    let RecoveryOutcome::Recovered {
        restarts,
        recomputed_segments,
    } = run.recovery
    else {
        panic!("expected a degraded recovery, got {:?}", run.recovery);
    };
    println!(
        "  recovery: {restarts} restart(s), {recomputed_segments} segment(s) recomputed by survivors"
    );
    let got = gather_output(run.outputs);
    let err = rel_l2(&got, &reference);
    println!("  spectrum verified in degraded mode: rel_l2 = {err:.3e}");
    assert!(err < 1e-9);

    // --- scenario 5: silent bit flip in a local FFT buffer ----------------
    println!("\nscenario 5: one bit flips in rank 1's local FFT buffer (seed 55)");
    let flip = |seed| FaultPlan::new(seed).bit_flip(1, BitFlipSite::LocalFftBuffer);

    let checked = fft.clone().with_validation(ValidationPolicy::CheckOnly);
    let outcomes = run_cluster_with_faults(procs, flip(55), |comm| {
        checked.try_forward(comm, &inputs[comm.rank()], &short)
    });
    match &outcomes[1] {
        RankOutcome::Ok(Err(e)) => {
            assert!(matches!(
                e.error,
                CommError::SilentCorruption { rank: 1, .. }
            ));
            println!(
                "  CheckOnly: rank 1 flagged in {} phase: {}",
                e.phase, e.error
            );
        }
        other => panic!("rank 1: expected a typed detection, got {other:?}"),
    }

    let recovering = fft.clone().with_validation(ValidationPolicy::Recover);
    let clean = {
        let outcomes = run_cluster_with_faults(procs, FaultPlan::new(56), |comm| {
            recovering.try_forward(comm, &inputs[comm.rank()], &policy)
        });
        gather_output(outcomes.into_iter().map(|o| o.unwrap().unwrap()).collect())
    };
    let outcomes = run_cluster_with_faults(procs, flip(55), |comm| {
        let y = recovering.try_forward(comm, &inputs[comm.rank()], &policy);
        (y, comm.stats().sdc_detected(), comm.stats().sdc_repaired())
    });
    let mut parts = Vec::new();
    for (rank, o) in outcomes.into_iter().enumerate() {
        let (y, detected, repaired) = o.unwrap();
        if detected > 0 {
            println!("  Recover: rank {rank} detected {detected} and repaired {repaired} flip(s)");
        }
        parts.push(y.expect("the flip is repaired in place"));
    }
    let got = gather_output(parts);
    assert_eq!(
        got, clean,
        "repair must be bit-identical to the fault-free run"
    );
    println!("  spectrum verified after repair: bit-identical to the fault-free run");

    // --- scenario 6: kill -9 a real rank process, recover bit-identical ---
    let pp = proc_params();
    println!(
        "\nscenario 6: multi-process backend, kill -9 rank 2 entering the all-to-all (N = {})",
        pp.n
    );
    let exe = std::env::current_exe().expect("own path");
    let work = std::env::temp_dir().join(format!("soifft-chaos-run-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    let proc_run = |tag: &str, kill: Option<KillPlan>| {
        let dir = work.join(tag);
        let out = dir.join("out");
        let config = ProcConfig {
            detection: FailureDetection {
                heartbeat_interval: Duration::from_millis(25),
                staleness_timeout: Duration::from_secs(3),
                ..FailureDetection::default()
            },
            kill,
            ..ProcConfig::default()
        };
        let run = ProcSupervisor::with_config(&dir, config)
            .run(pp.procs, |_, _| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.env("SOIFFT_CHAOS_OUT", &out);
                cmd
            })
            .expect("supervised run launches");
        println!(
            "  {tag}: epochs {} | deaths {} | kills injected {} | outcomes {:?}",
            run.epochs, run.deaths, run.injected_kills, run.outcomes
        );
        assert!(run.all_ok(), "{tag}: all rank processes must complete");
        let parts: Vec<Vec<c64>> = (0..pp.procs)
            .map(|r| read_rank_output(&out, r).expect("rank output present"))
            .collect();
        (run, parts)
    };
    let (clean_run, clean_parts) = proc_run("clean", None);
    assert_eq!(clean_run.epochs, 1);
    let kill = KillPlan {
        rank: 2,
        generation: 0,
        when: KillWhen::FileExists(work.join("kill9").join("ckpt").join("r2-segment-fft.ckpt")),
    };
    let (chaos_run, chaos_parts) = proc_run("kill9", Some(kill));
    assert_eq!(chaos_run.injected_kills, 1, "the scripted kill must fire");
    assert!(
        chaos_run.epochs >= 2,
        "recovery takes a respawned generation"
    );
    assert_eq!(
        chaos_parts
            .iter()
            .flatten()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect::<Vec<_>>(),
        clean_parts
            .iter()
            .flatten()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect::<Vec<_>>(),
        "recovered spectrum must be bit-identical to the fault-free run"
    );
    let mut proc_want = seeded_input(pp.n, PROC_SEED);
    Plan::new(pp.n).forward(&mut proc_want);
    let err = rel_l2(&gather_output(chaos_parts), &proc_want);
    println!("  recovered spectrum: bit-identical to fault-free, rel_l2 = {err:.3e}");
    assert!(err < 1e-9);
    let _ = std::fs::remove_dir_all(&work);

    // --- scenario 7: TCP mesh behind the network-fault proxy --------------
    let tp = SoiParams {
        n: 1 << 16,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    };
    println!(
        "\nscenario 7: TCP mesh, rank 2 partitioned mid-all-to-all (N = {})",
        tp.n
    );
    let tcp_seed = 0x07C9_F0A2u64;
    let tcp_run = |tag: &str, detection: FailureDetection, chaos: Option<NetChaosPlan>| {
        let sup = TcpSupervisor::new(TcpConfig {
            cluster: ClusterConfig {
                detection,
                ..ClusterConfig::default()
            },
            chaos,
            ..TcpConfig::default()
        });
        let run = sup
            .run(tp.procs, |comm, ctx| run_tcp_rank(comm, ctx, &tp, tcp_seed))
            .expect("TCP mesh launches");
        if let Some(ev) = run.chaos_events {
            println!(
                "  {tag}: epochs {} | restarts {} | peer-down aborts {} | proxy: {} partitions, {} conns severed, {} refused",
                run.epochs, run.restarts, run.peer_down_aborts,
                ev.partitions_fired, ev.conns_severed, ev.conns_refused
            );
        } else {
            println!(
                "  {tag}: epochs {} | restarts {} | peer-down aborts {}",
                run.epochs, run.restarts, run.peer_down_aborts
            );
        }
        assert!(run.all_ok(), "{tag}: final epoch must complete");
        let mut parts = Vec::new();
        for o in run.outcomes {
            match o {
                RankOutcome::Ok(y) => parts.push(y),
                other => panic!("{tag}: unexpected outcome {other:?}"),
            }
        }
        (run.epochs, run.restarts, parts)
    };

    // Detection budgets: generous staleness lets the brief partition heal
    // by reconnecting; the tight budget forces escalation.
    let lenient = FailureDetection {
        heartbeat_interval: Duration::from_millis(20),
        staleness_timeout: Duration::from_secs(3),
        ..FailureDetection::default()
    };
    let strict = FailureDetection {
        heartbeat_interval: Duration::from_millis(20),
        staleness_timeout: Duration::from_millis(900),
        ..FailureDetection::default()
    };
    let partition_at = |duration: Option<Duration>| {
        NetChaosPlan::new(0xBAD1_1ACE).partition(PartitionSpec {
            rank: 2,
            kind: PartitionKind::Symmetric,
            trigger: ChaosTrigger::BytesThrough {
                rank: 2,
                bytes: 48 * 1024,
            },
            duration,
        })
    };

    let (_, _, clean_parts) = tcp_run("fault-free", lenient, None);
    let (epochs, restarts, healed_parts) = tcp_run(
        "heal",
        lenient,
        Some(partition_at(Some(Duration::from_millis(250)))),
    );
    assert_eq!(epochs, 1, "a brief partition must heal without respawn");
    assert_eq!(restarts, 0);
    assert_eq!(
        healed_parts, clean_parts,
        "healed run must be bit-identical to fault-free"
    );
    println!("  heal: reconnect absorbed the partition — no respawn, bits identical");

    let (epochs, restarts, recovered_parts) = tcp_run("escalate", strict, Some(partition_at(None)));
    assert!(
        epochs >= 2 && restarts >= 1,
        "an unhealed partition must consume a respawn"
    );
    assert_eq!(
        recovered_parts, clean_parts,
        "recovered run must be bit-identical to fault-free"
    );
    let mut tcp_want = seeded_input(tp.n, tcp_seed);
    Plan::new(tp.n).forward(&mut tcp_want);
    let err = rel_l2(&gather_output(recovered_parts), &tcp_want);
    println!(
        "  escalate: PeerDown on every rank, respawned generation recovered — rel_l2 = {err:.3e}"
    );
    assert!(err < 1e-9);

    println!(
        "\nok: faults absorbed when transient, typed when unsupervised, recovered when supervised, \
         silent flips caught by invariants, a kill -9'd rank process resumed from disk checkpoints \
         bit-exactly, and a network partition first healed by reconnect then recovered by respawn."
    );
}
