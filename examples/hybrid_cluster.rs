//! Heterogeneous (hybrid) clusters: load-balancing segments across ranks
//! of different compute capability (paper §6.1/§7).
//!
//! ```sh
//! cargo run --release --example hybrid_cluster
//! ```
//!
//! The paper: "we can assign 1 segment per a socket of Xeon E5-2680 and 6
//! segments per Xeon Phi (recall that a Xeon Phi has ~6× compute
//! capability)". This example builds a 4-rank cluster of 2 "Xeon-socket"
//! ranks and 2 "Phi" ranks, derives the 6:1 split from the Table 2
//! machine specs, runs the transform with that segment layout, and uses
//! virtual time to show the recovery work is now balanced.

use soifft::cluster::Cluster;
use soifft::model::{ClusterModel, MachineSpec};
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::{Rational, SimSpec, SoiFft, SoiParams};

fn main() {
    // Derive the split from the machine constants.
    let xeon = MachineSpec::xeon_e5_2680();
    let phi = MachineSpec::xeon_phi_se10();
    let per_phi = ClusterModel::segments_per_accelerator(&xeon, &phi) as usize;
    println!("Table 2 peaks: Xeon socket {:.0} GF, Phi {:.0} GF -> {per_phi} segments per Phi per 1 per socket\n",
        xeon.peak_gflops / xeon.sockets as f64, phi.peak_gflops);

    // 2 Xeon-socket ranks + 2 Phi ranks. The total segment count must be
    // S·P with integer S, so we use L = 16 split [2, 2, 6, 6] — the same
    // 3:1 capability ratio rounded to fit (the exact 6:1 rule applies when
    // P and the counts allow, e.g. 14 ranks of mixed sockets).
    let counts = vec![2usize, 2, 6, 6];
    let l: usize = counts.iter().sum();
    let m = 512; // per-segment output length
    let params = SoiParams {
        n: m * l,
        procs: 4,
        segments_per_proc: l / 4,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    params.validate().expect("valid");

    // Signal and distribution (input stays uniformly block-distributed).
    let x: Vec<c64> = (0..params.n)
        .map(|i| c64::new((0.01 * i as f64).sin(), (0.003 * i as f64).cos()))
        .collect();
    let per = params.per_rank();
    let inputs: Vec<Vec<c64>> = (0..4).map(|r| x[r * per..(r + 1) * per].to_vec()).collect();

    // Per-rank virtual-time rates: ranks 0-1 run at Xeon-socket speed,
    // ranks 2-3 at Phi speed.
    let rate = |machine: &MachineSpec, frac: f64| SimSpec {
        fft_flops_per_s: 0.12 * machine.peak_gflops * frac * 1e9,
        conv_flops_per_s: 0.40 * machine.peak_gflops * frac * 1e9,
        net_bytes_per_s: 3.0 * (1u64 << 30) as f64,
        net_latency_s: 0.0,
    };
    let sims = [
        rate(&xeon, 0.5), // one socket
        rate(&xeon, 0.5),
        rate(&phi, 1.0),
        rate(&phi, 1.0),
    ];

    // Balanced (heterogeneous) run: plan once, clone per rank with that
    // rank's virtual-time rates.
    let planned = SoiFft::new(params)
        .unwrap()
        .with_segment_counts(counts.clone());
    let bal = Cluster::run(4, |comm| {
        let f = planned.clone().with_sim(sims[comm.rank()]);
        let y = f.forward(comm, &inputs[comm.rank()]);
        (y, comm.stats().sim_seconds_in("local-fft"))
    });
    let got: Vec<c64> = bal.iter().flat_map(|(y, _)| y.iter().copied()).collect();

    // Uniform run for contrast.
    let planned_uni = SoiFft::new(params).unwrap();
    let uni = Cluster::run(4, |comm| {
        let f = planned_uni.clone().with_sim(sims[comm.rank()]);
        f.forward(comm, &inputs[comm.rank()]);
        comm.stats().sim_seconds_in("local-fft")
    });

    // Verify.
    let mut want = x.clone();
    soifft::fft::Plan::new(params.n).forward(&mut want);
    let err = rel_l2(&got, &want);
    println!("transform verified: rel_l2 = {err:.2e}\n");
    assert!(err < 1e-7);

    println!("simulated per-rank recovery (local FFT) time:");
    println!("rank  machine      uniform S=4   balanced {counts:?}");
    let mut worst_uni: f64 = 0.0;
    let mut worst_bal: f64 = 0.0;
    for r in 0..4 {
        let machine = if r < 2 { "Xeon sock" } else { "Xeon Phi " };
        println!("   {r}  {machine}  {:>10.2e}   {:>10.2e}", uni[r], bal[r].1);
        worst_uni = worst_uni.max(uni[r]);
        worst_bal = worst_bal.max(bal[r].1);
    }
    println!(
        "\ncritical-path recovery time: uniform {worst_uni:.2e} s -> balanced {worst_bal:.2e} s ({:.2}x better)",
        worst_uni / worst_bal
    );
    assert!(worst_bal < worst_uni);
    println!("ok.");
}
