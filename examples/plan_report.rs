//! Plan diagnostics: inspect an SOI configuration before running it.
//!
//! ```sh
//! cargo run --release --example plan_report -- 16777216 32
//! ```
//!
//! Prints the derived quantities, memory/communication footprints, flop
//! budget and predicted accuracy for `N` points on `P` ranks — and, when a
//! configuration is invalid, explains why and suggests a nearby valid one.

use soifft::soi::{PlanReport, SoiParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7 * (1 << 20));
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    // First try the paper's defaults outright.
    let attempt = SoiParams::paper_defaults(n, procs);
    match PlanReport::new(attempt) {
        Ok(report) => {
            println!("paper-default parameters are valid:\n");
            print!("{report}");
        }
        Err((err, suggestion)) => {
            println!("paper defaults (mu=8/7, B=72, S=1) rejected:");
            println!("  {err}\n");
            match suggestion {
                Some(s) => {
                    println!(
                        "suggested configuration: mu = {}, B = {}, S = {}\n",
                        s.mu, s.conv_width, s.segments_per_proc
                    );
                    let report = PlanReport::new(s).expect("suggestion validates");
                    print!("{report}");
                }
                None => {
                    println!("no valid configuration found for N = {n}, P = {procs};");
                    println!("N must admit L = S*P segments with d_mu | N/L.");
                    return;
                }
            }
        }
    }

    // Show the accuracy ladder the user can buy with B.
    println!("\naccuracy vs window width (Gaussian design estimate):");
    for b in [24usize, 36, 48, 72, 96] {
        let mut p = SoiParams::paper_defaults(n, procs);
        p.conv_width = b;
        if let Some(valid) = SoiParams::suggest(n, procs).map(|mut s| {
            s.conv_width = b;
            s
        }) {
            if valid.validate().is_ok() {
                if let Ok(r) = PlanReport::new(valid) {
                    println!("  B = {b:>3}: ~{:.1e}", r.estimated_error());
                    continue;
                }
            }
        }
        if p.validate().is_ok() {
            if let Ok(r) = PlanReport::new(p) {
                println!("  B = {b:>3}: ~{:.1e}", r.estimated_error());
            }
        }
    }
}
