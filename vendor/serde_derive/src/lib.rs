//! Offline vendored stand-in for `serde_derive`.
//!
//! Emits *empty* impls of the vendored `serde` marker traits. Handles
//! plain (non-generic) structs and enums, which covers every derive site
//! in this workspace; a generic type triggers a compile error naming this
//! limitation rather than producing a wrong impl.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        _ => return Err("expected a type name after struct/enum".into()),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "vendored serde_derive does not support generic type `{name}`"
                            ));
                        }
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)`, doc idents… keep scanning.
            }
            _ => {}
        }
    }
    Err("expected a struct or enum".into())
}

fn emit(input: TokenStream, template: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => template(&name).parse().expect("valid emitted impl"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("valid error"),
    }
}

/// Derives the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
