//! Offline vendored stand-in for the `criterion` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry. The stand-in keeps the bench targets *compiling*
//! against the familiar criterion surface and, when actually executed
//! via `cargo bench`, times each body over a small fixed iteration
//! budget and prints `label: median µs` lines — no statistics engine,
//! no HTML reports. Under `cargo test` the harnessless bench binaries
//! run the same way but with a single iteration per body, so test runs
//! stay fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to each bench function by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    iters: u64,
}

impl Criterion {
    /// Builds a runner; `CRITERION_STUB_ITERS` overrides the per-body
    /// iteration budget (default 3; `cargo test` passes through here too,
    /// so keep it small).
    pub fn stub_from_env() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Self { iters }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup::new(name.to_string(), self.iters)
    }

    /// Benchmarks `f` directly under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.iters, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    // Tie to the parent so the surface matches criterion's lifetimes.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub has no sampling engine.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Benchmarks `f` with an explicit `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

// BenchmarkGroup is constructed in one place; keep the ctor private
// but avoid an unused-field trap for the lifetime marker.
impl BenchmarkGroup<'_> {
    fn new(name: String, iters: u64) -> Self {
        Self {
            name,
            iters,
            _marker: std::marker::PhantomData,
        }
    }
}

fn run_one<F>(label: &str, iters: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed_ns: Vec::new(),
    };
    f(&mut b);
    if let Some(&med) = b.elapsed_ns.get(b.elapsed_ns.len() / 2) {
        println!("{label}: {:.1} µs/iter", med as f64 / 1e3);
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    /// Runs `routine` for the configured iteration budget, recording
    /// wall-clock time per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed_ns.push(t0.elapsed().as_nanos());
        }
        self.elapsed_ns.sort_unstable();
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Declared workload size for throughput normalization (unused by the
/// stub's reporting).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups, as
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harnessless bench binary is executed
            // with `--test`-style flags; a single pass keeps it cheap.
            if std::env::args().any(|a| a == "--test") {
                std::env::set_var("CRITERION_STUB_ITERS", "1");
            }
            let mut c = $crate::Criterion::stub_from_env();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_bodies() {
        let mut c = Criterion { iters: 2 };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(1));
            g.bench_function("direct", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &x| {
                b.iter(|| {
                    ran += x;
                    ran
                })
            });
            g.finish();
        }
        assert_eq!(ran, 8, "2 iters × input 4");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
