//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry, so the small `rand` surface it uses (seeded
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`])
//! is re-implemented here around a xoshiro256** core seeded via
//! SplitMix64. Streams are deterministic per seed but are *not*
//! bit-compatible with upstream `rand` — no test in this repository
//! depends on upstream stream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stand-in has a single generator quality tier.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).all(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }
}
