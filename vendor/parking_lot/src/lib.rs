//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry, so the handful of `parking_lot` primitives it uses
//! are re-implemented here as thin wrappers over `std::sync`. Semantics
//! match `parking_lot` where they differ from `std`:
//!
//! * `lock()` returns the guard directly (poisoning is swallowed — a
//!   poisoned lock yields the inner guard, as `parking_lot` has no
//!   poisoning concept at all);
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Only the API surface exercised by this repository is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (std-backed, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`Mutex`] (std-backed).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. `guard` stays locked on return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses. Returns a result whose
    /// `timed_out()` reports whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter. Returns whether a thread was woken (always `false`
    /// here: std does not report it; callers in this workspace ignore it).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiters. Returns the number woken (unknown under std; 0).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock (std-backed, no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_coordinate() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g < 3 {
                cv.wait(&mut g);
            }
            *g
        });
        for _ in 0..3 {
            let (m, cv) = &*pair;
            *m.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 3);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
