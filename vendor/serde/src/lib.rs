//! Offline vendored stand-in for the `serde` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry. It only *derives* `Serialize`/`Deserialize` on
//! model structs (as forward-looking schema markers) and never invokes a
//! serializer — no `serde_json`/`bincode`-style backend is a dependency
//! anywhere in the tree. The traits are therefore empty markers and the
//! derive macros (see `serde_derive`) emit empty impls.
//!
//! If a future change actually needs wire serialization, replace this
//! stand-in with upstream serde in `[workspace.dependencies]`.

#![forbid(unsafe_code)]

/// Marker for types whose schema is declared serializable.
pub trait Serialize {}

/// Marker for types whose schema is declared deserializable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
