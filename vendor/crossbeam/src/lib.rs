//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry, so the `crossbeam::channel` surface it uses is
//! re-implemented here as a lock-based MPMC channel. Semantics follow
//! `crossbeam-channel`:
//!
//! * senders and receivers are both [`Clone`] + [`Send`] + [`Sync`];
//! * a channel disconnects when *all* senders or *all* receivers drop;
//! * `recv` on a disconnected channel first drains buffered messages;
//! * `bounded(cap)` applies backpressure at `cap` queued messages
//!   (`bounded(0)` degenerates to capacity 1 rather than a rendezvous —
//!   no caller in this workspace uses a zero-capacity channel).
//!
//! Only the API surface exercised by this repository is provided.

#![forbid(unsafe_code)]

/// MPMC channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Creates an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel holding at most `cap` messages
    /// (`cap == 0` is rounded up to 1; see the crate docs).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued (bounded channels apply
        /// backpressure). Fails if every receiver has dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Queues the message without blocking, failing when the channel
        /// is full or every receiver has dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.lock();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.lock();
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails only once the channel is
        /// disconnected *and* drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.lock();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }

        /// Blocking iterator over received messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.shared.lock();
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator returned by `Receiver::into_iter`.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Error returned by [`Sender::send`] on a disconnected channel.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver has dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued.
        Empty,
        /// Every sender has dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender has dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on a channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError, TrySendError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            rx.iter().take(100).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounded_backpressure_and_unblock() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
