//! Offline vendored stand-in for the `proptest` crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io registry, so the property-testing surface its test suites
//! use is re-implemented here as a miniature engine:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter`, integer and float
//!   range strategies, tuples up to arity 6, [`prop::collection::vec`],
//!   [`prop::sample::select`], and [`any`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   plus `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`;
//! * a deterministic runner: case seeds derive from the test name and
//!   case index (FNV-1a), so failures reproduce run-to-run. There is no
//!   shrinking — a failing case reports its seed instead of a minimal
//!   counterexample.
//!
//! Semantics deliberately mirror upstream where the difference would be
//! observable to this repository's tests: `ProptestConfig::default()`
//! honours the `PROPTEST_CASES` environment variable while
//! `with_cases(n)` pins the count explicitly, and `prop_filter`
//! rejections retry without consuming a case (bounded by a global
//! reject budget).

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic xoshiro256**-based RNG used by the runner.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds via SplitMix64 expansion of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case was abandoned without counting against the
/// case budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection(pub String);

/// Error type threaded out of a property body.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a precondition (`prop_assume!` or a
    /// `prop_filter`); retry with fresh inputs.
    Reject(Rejection),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(Rejection(msg.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {}", r.0),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Strategies: sources of generated values.
pub mod strategy {
    use super::{Rejection, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A source of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value, or a [`Rejection`] if a filter refused it.
        fn try_generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`; `whence` names the
        /// constraint in reject diagnostics.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn try_generate(&self, rng: &mut TestRng) -> Result<U, Rejection> {
            self.inner.try_generate(rng).map(&self.f)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`]. Retries locally a
    /// few times before surfacing a rejection to the runner.
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn try_generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            for _ in 0..16 {
                let v = self.inner.try_generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejection(self.whence.clone()))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn try_generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn try_generate(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
            assert!(self.start < self.end, "empty range strategy");
            Ok(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn try_generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    Ok((self.start as i128 + rng.below(span) as i128) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn try_generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    Ok((lo as i128 + rng.below(span) as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn try_generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    let ($($name,)+) = self;
                    Ok(($($name.try_generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical whole-domain strategy (the subset of
    /// upstream `Arbitrary` this workspace uses).
    pub trait Arbitrary: Sized {
        /// Draws from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`](super::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn try_generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(T::arbitrary(rng))
        }
    }

    /// Whole-domain strategy for `T`, as `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Namespaced strategy constructors (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::{Rejection, TestRng};
        use std::ops::Range;

        /// Element-count specification for [`vec`]: an exact size or a
        /// half-open range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn try_generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
                let span = (self.size.hi - self.size.lo) as u128 + 1;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.elem.try_generate(rng)).collect()
            }
        }

        /// `Vec` strategy of `size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::{Rejection, TestRng};

        /// Strategy returned by [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn try_generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
                let i = rng.below(self.options.len() as u128) as usize;
                Ok(self.options[i].clone())
            }
        }

        /// Uniform choice among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Total rejection budget across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Pins the case count explicitly (ignores `PROPTEST_CASES`, as
    /// upstream does for explicit configs).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// The case-loop driver used by the expansion of [`proptest!`].
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` until `config.cases` cases pass, retrying rejected
    /// cases against a global reject budget. Panics (failing the
    /// enclosing `#[test]`) on the first failed case, reporting the
    /// deterministic case seed.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut attempt = 0u64;
        while case < config.cases {
            let seed = base ^ (attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(r)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest stand-in: `{name}` exceeded the reject budget \
                         ({} rejects; last: {})",
                        rejects,
                        r.0
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest stand-in: `{name}` failed at case {case} \
                         (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// Everything the test suites import, as `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches `fn` items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::ProptestConfig = $cfg;
            $crate::runner::run(stringify!($name), &__pt_cfg, |__pt_rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::try_generate(
                        &($strat),
                        __pt_rng,
                    ) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(r) => {
                            return ::std::result::Result::Err(
                                $crate::TestCaseError::Reject(r),
                            )
                        }
                    };
                )+
                let __pt_out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __pt_out
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __pt_l,
            __pt_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(*__pt_l == *__pt_r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l != *__pt_r,
            "assertion failed: `left != right`\n  both: {:?}",
            __pt_l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2i64..=2, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..10, 0u32..10).prop_map(|(a, b)| a + b), 4),
            pick in prop::sample::select(vec![1usize, 2, 4]),
            any_bits in any::<u64>(),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&s| s < 19));
            prop_assert!([1usize, 2, 4].contains(&pick));
            let _ = any_bits;
        }

        #[test]
        fn filters_reject_without_failing(n in (0u32..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
            prop_assume!(n != u32::MAX); // trivially true; exercises the macro
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::runner::run("always_fails", &ProptestConfig::with_cases(1), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn runner_is_deterministic() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut draws = Vec::new();
            crate::runner::run("det", &ProptestConfig::with_cases(5), |rng| {
                draws.push(rng.next_u64());
                Ok(())
            });
            seen.push(draws);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
