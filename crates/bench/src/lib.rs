//! Shared helpers for the figure/table regenerator binaries and criterion
//! benches.
//!
//! Every experiment in the paper's evaluation has a binary here (see
//! DESIGN.md §4 for the index); this module holds the common pieces: signal
//! generation, wall-clock measurement, and plain-text table rendering so
//! each binary prints rows comparable with the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use soifft_num::c64;

/// Schema version stamped into every machine-readable `BENCH_*.json` this
/// crate's binaries emit. Bump when a field is renamed, removed, or
/// changes meaning — additions are backward-compatible and don't require
/// a bump — so cross-PR perf-trajectory tooling can parse historical
/// artifacts without guessing.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Deterministic pseudo-random complex signal (xorshift; stable across
/// runs, no RNG dependency in the hot path).
pub fn signal(n: usize, seed: u64) -> Vec<c64> {
    // Golden-ratio mix so nearby seeds give unrelated streams.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-1, 1).
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// Times `f`, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times and returns the minimum wall-clock seconds
/// (the conventional "best of k" for bandwidth-bound kernels).
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, s) = time(&mut f);
        best = best.min(s);
    }
    best
}

/// Process exit status for malformed configuration (the conventional
/// "incorrect usage" code), used by the strict environment parsers and by
/// [`check_cli`] for unrecognized arguments.
pub const USAGE_EXIT: i32 = 2;

/// A rejected `SOIFFT_*` environment override: the variable was set but its
/// value did not parse as the expected type. Returned by the `try_env_*`
/// parsers; the infallible `env_*` wrappers print it and exit with
/// [`USAGE_EXIT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable name.
    pub name: String,
    /// The offending value (lossily converted when not valid Unicode).
    pub value: String,
    /// Human description of the expected shape, e.g. `"unsigned integer"`.
    pub expected: &'static str,
}

impl std::fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?} is not a valid {} (unset the variable for the default)",
            self.name, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvParseError {}

/// Strictly reads a `usize` override: `Ok(None)` when unset, `Ok(Some)`
/// when set and parseable, and a typed [`EnvParseError`] when set to
/// garbage — never a silent fallback to the default.
pub fn try_env_usize(name: &str) -> Result<Option<usize>, EnvParseError> {
    try_env_parse(name, "unsigned integer")
}

/// Strictly reads an `f64` override (see [`try_env_usize`]).
pub fn try_env_f64(name: &str) -> Result<Option<f64>, EnvParseError> {
    try_env_parse(name, "number")
}

fn try_env_parse<T: std::str::FromStr>(
    name: &str,
    expected: &'static str,
) -> Result<Option<T>, EnvParseError> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(EnvParseError {
            name: name.to_string(),
            value: raw.to_string_lossy().into_owned(),
            expected,
        }),
        Ok(v) => match v.trim().parse() {
            Ok(x) => Ok(Some(x)),
            Err(_) => Err(EnvParseError {
                name: name.to_string(),
                value: v,
                expected,
            }),
        },
    }
}

/// Reads a `usize` override from the environment (lets the figure binaries
/// scale up on bigger machines: e.g. `SOIFFT_FIG10_N=16777216`).
///
/// A *set but malformed* value is a configuration error, not a request for
/// the default: it prints the offending variable to stderr and exits with
/// [`USAGE_EXIT`], so a typo'd sweep fails loudly instead of silently
/// benchmarking the default size.
pub fn env_usize(name: &str, default: usize) -> usize {
    unwrap_env(try_env_usize(name)).unwrap_or(default)
}

/// Reads an `f64` override from the environment (durations, load factors).
/// Malformed values exit with [`USAGE_EXIT`] like [`env_usize`].
pub fn env_f64(name: &str, default: f64) -> f64 {
    unwrap_env(try_env_f64(name)).unwrap_or(default)
}

fn unwrap_env<T>(parsed: Result<Option<T>, EnvParseError>) -> Option<T> {
    match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(USAGE_EXIT);
        }
    }
}

/// Enforces the argv contract shared by every figure/table binary: they
/// take **no positional arguments** — all configuration flows through
/// `SOIFFT_*` environment variables. `--help`/`-h` prints `description`
/// plus the recognized variables (name, meaning) and exits 0; any other
/// argument is unknown and exits with [`USAGE_EXIT`]. Call it first thing
/// in `main`.
pub fn check_cli(description: &str, env_vars: &[(&str, &str)]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // One buffered write with the error ignored: `--help | head`
        // closes the pipe early, and a SIGPIPE-ignoring Rust binary
        // would otherwise panic mid-print.
        use std::io::Write;
        let mut help =
            format!("{description}\n\nTakes no arguments; configure via environment variables:\n");
        for (name, meaning) in env_vars {
            help.push_str(&format!("  {name:<28} {meaning}\n"));
        }
        let _ = std::io::stdout().write_all(help.as_bytes());
        std::process::exit(0);
    }
    eprintln!(
        "error: unknown argument {:?} (this binary takes no arguments; \
         run with --help for the recognized SOIFFT_* variables)",
        args[0]
    );
    std::process::exit(USAGE_EXIT);
}

/// Minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders per-rank phase ledgers as an ASCII Gantt chart (the Fig 12
/// timing-diagram style): one row per rank, phases drawn in execution
/// order, each segment's width proportional to its duration.
///
/// `pick` selects which duration to draw (wall or simulated seconds).
pub fn gantt<F>(stats: &[soifft_cluster::CommStats], width: usize, pick: F) -> String
where
    F: Fn(&soifft_cluster::PhaseRecord) -> f64,
{
    assert!(width >= 10, "need some width to draw in");
    let total: f64 = stats
        .iter()
        .map(|s| s.records().iter().map(&pick).sum::<f64>())
        .fold(0.0, f64::max);
    if total <= 0.0 {
        return String::from("(no timed phases)\n");
    }
    let mut out = String::new();
    let mut legend: Vec<&'static str> = Vec::new();
    for (rank, s) in stats.iter().enumerate() {
        out.push_str(&format!("rank {rank:>2} |"));
        for r in s.records() {
            let w = ((pick(r) / total) * width as f64).round() as usize;
            if !legend.contains(&r.name) {
                legend.push(r.name);
            }
            let letter = letter_for(&legend, r.name);
            for _ in 0..w {
                out.push(letter);
            }
        }
        out.push_str("|\n");
    }
    out.push_str("legend: ");
    let entries: Vec<String> = legend
        .iter()
        .map(|n| format!("{}={}", letter_for(&legend, n), n))
        .collect();
    out.push_str(&entries.join("  "));
    out.push('\n');
    out
}

fn letter_for(legend: &[&'static str], name: &str) -> char {
    let idx = legend.iter().position(|&n| n == name).unwrap_or(0);
    (b'A' + (idx % 26) as u8) as char
}

/// Formats seconds with 3 decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a GFLOPS value.
pub fn gflops(flops: f64, seconds: f64) -> String {
    format!("{:.1}", flops / seconds / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_deterministic_and_bounded() {
        let a = signal(100, 42);
        let b = signal(100, 42);
        assert_eq!(a, b);
        let c = signal(100, 43);
        assert_ne!(a, c);
        assert!(a.iter().all(|z| z.re.abs() <= 1.0 && z.im.abs() <= 1.0));
    }

    #[test]
    fn timing_helpers() {
        let (v, s) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
        let best = best_of(3, || {
            std::thread::sleep(std::time::Duration::from_micros(100))
        });
        assert!(best > 0.0);
    }

    #[test]
    fn env_override() {
        assert_eq!(env_usize("SOIFFT_SURELY_UNSET_VAR", 7), 7);
        std::env::set_var("SOIFFT_TEST_VAR_X", "123");
        assert_eq!(env_usize("SOIFFT_TEST_VAR_X", 7), 123);
        // Whitespace-tolerant, like a value pasted from a shell.
        std::env::set_var("SOIFFT_TEST_VAR_WS", " 9 ");
        assert_eq!(env_usize("SOIFFT_TEST_VAR_WS", 7), 9);
    }

    #[test]
    fn strict_env_parse_rejects_garbage() {
        assert_eq!(try_env_usize("SOIFFT_SURELY_UNSET_VAR"), Ok(None));
        std::env::set_var("SOIFFT_TEST_VAR_BAD", "12x");
        let err = try_env_usize("SOIFFT_TEST_VAR_BAD").unwrap_err();
        assert_eq!(err.name, "SOIFFT_TEST_VAR_BAD");
        assert_eq!(err.value, "12x");
        assert_eq!(err.expected, "unsigned integer");
        let msg = err.to_string();
        assert!(msg.contains("SOIFFT_TEST_VAR_BAD"), "{msg}");
        assert!(msg.contains("12x"), "{msg}");

        std::env::set_var("SOIFFT_TEST_VAR_F", "1.5e-3");
        assert_eq!(try_env_f64("SOIFFT_TEST_VAR_F"), Ok(Some(1.5e-3)));
        std::env::set_var("SOIFFT_TEST_VAR_F", "fast");
        assert!(try_env_f64("SOIFFT_TEST_VAR_F").is_err());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.345".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(gflops(2e9, 1.0), "2.0");
    }

    #[test]
    fn gantt_draws_phases_proportionally() {
        let mut a = soifft_cluster::CommStats::default();
        let t = a.phase_start();
        a.phase_end_sim("compute", t, 3.0);
        let t = a.phase_start();
        a.phase_end_sim("exchange", t, 1.0);
        let chart = gantt(&[a], 40, |r| r.sim_seconds.unwrap_or(0.0));
        // 3:1 ratio → ~30 A's, ~10 B's.
        let a_count = chart.matches('A').count();
        let b_count = chart.matches('B').count();
        assert!((28..=32).contains(&a_count), "{chart}");
        // Legend line also contains one B; allow slack.
        assert!((9..=13).contains(&b_count), "{chart}");
        assert!(chart.contains("A=compute"));
        assert!(chart.contains("B=exchange"));
    }

    #[test]
    fn gantt_empty_ledger() {
        let s = soifft_cluster::CommStats::default();
        assert_eq!(gantt(&[s], 40, |r| r.seconds), "(no timed phases)\n");
    }
}
