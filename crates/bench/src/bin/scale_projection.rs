//! Future-work projection (paper §6.1): "the K computer result is with a
//! considerably larger number of nodes, and it remains as future work to
//! show scalability of our implementation to a similar level."
//!
//! This binary runs that projection with the calibrated model: weak
//! scaling continued from the paper's 512 nodes up to the K computer's
//! 81,944-node class, including where SOI-on-Phi would pass the K
//! computer's 206 TFLOPS HPCC G-FFT record under the (pessimistic,
//! log-degrading) interconnect model.

use soifft_bench::Table;
use soifft_model::{weak_scaling, ClusterModel};

fn main() {
    soifft_bench::check_cli(
        "Future-work projection (paper §6.1): \"the K computer result is with a",
        &[],
    );
    let per_node = (1u64 << 27) as f64;
    let nodes = [512u32, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
    println!("Future-work projection: SOI weak scaling beyond the paper's 512 nodes");
    println!("(model with the same calibrated interconnect degradation; 2^27 pts/node)\n");
    let mut t = Table::new(&[
        "nodes",
        "SOI Phi (TF)",
        "SOI Xeon (TF)",
        "eta(P)",
        "exposed MPI share",
        "vs K computer 206 TF",
    ]);
    let mut crossover: Option<u32> = None;
    for pt in weak_scaling(&nodes, per_node) {
        let model = ClusterModel::xeon_phi(pt.nodes);
        let b = model.soi_time(pt.n);
        if crossover.is_none() && pt.soi_phi > 206.0 {
            crossover = Some(pt.nodes);
        }
        t.row(&[
            pt.nodes.to_string(),
            format!("{:.1}", pt.soi_phi),
            format!("{:.1}", pt.soi_xeon),
            format!("{:.2}", model.network.efficiency(pt.nodes)),
            format!("{:.0}%", b.mpi / b.total() * 100.0),
            format!("{:.2}x", pt.soi_phi / 206.0),
        ]);
    }
    print!("{}", t.render());
    match crossover {
        Some(p) => println!(
            "\nUnder this (log-degrading) interconnect model, SOI-on-Phi passes the\nK computer's 206 TFLOPS record at ~{p} nodes — an order of magnitude\nfewer than the K computer's 81,944."
        ),
        None => println!("\nNo crossover within the swept range."),
    }
    println!("Caveats: the η(P) model is calibrated at 512 nodes and extrapolated;");
    println!("real fat-tree behaviour at 64K nodes is speculative — that is exactly");
    println!("why the paper leaves it as future work.");
}
