//! The introduction's framing claim, measured: "in-order 1D FFT is
//! distinctly more challenging than the 2D or 3D cases as these usually
//! start with each compute node possessing one or two complete dimensions
//! of data."
//!
//! Runs three distributed transforms of the SAME total size on the same
//! simulated cluster and prints each one's communication structure.

use soifft_bench::{env_usize, signal, Table};
use soifft_cluster::Cluster;
use soifft_core::{Rational, SoiFft, SoiParams};
use soifft_ct::{Distributed2dFft, DistributedCtFft};
use soifft_num::c64;

fn main() {
    soifft_bench::check_cli(
        "The introduction's framing claim, measured: \"in-order 1D FFT is",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 14);
    let x = signal(n, 77);
    let per = n / procs;
    let inputs: Vec<Vec<c64>> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    let mut t = Table::new(&["transform", "all-to-alls", "ghost msgs", "bytes sent/rank"]);

    // 1D, conventional Cooley–Tukey.
    let ct = DistributedCtFft::new(n, procs).expect("plannable");
    let s = Cluster::run(procs, |comm| {
        ct.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });
    t.row(&[
        "1D Cooley-Tukey".into(),
        s[0].count_of("all-to-all").to_string(),
        s[0].count_of("ghost").to_string(),
        s[0].total_bytes_sent().to_string(),
    ]);

    // 1D, SOI.
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let soi = SoiFft::new(params).expect("plannable");
    let s = Cluster::run(procs, |comm| {
        soi.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });
    t.row(&[
        "1D SOI".into(),
        s[0].count_of("all-to-all").to_string(),
        s[0].count_of("ghost").to_string(),
        s[0].total_bytes_sent().to_string(),
    ]);

    // 2D of the same total size (rows distributed: one dimension local).
    let rows = procs * 16;
    let cols = n / rows;
    let fft2d = Distributed2dFft::new(rows, cols, procs);
    let s = Cluster::run(procs, |comm| {
        fft2d.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });
    t.row(&[
        format!("2D ({rows}x{cols})"),
        s[0].count_of("all-to-all").to_string(),
        s[0].count_of("ghost").to_string(),
        s[0].total_bytes_sent().to_string(),
    ]);

    println!("Introduction's claim, measured (N = {n}, P = {procs}):\n");
    print!("{}", t.render());
    println!("\nA 2D transform starts with whole rows per node: one transpose");
    println!("suffices. In-order 1D needs three — unless the factorization");
    println!("itself is changed, which is exactly what SOI does (one all-to-all");
    println!("of µN plus a tens-of-KB ghost exchange).");
}
