//! Regenerates **Fig 12 / §7**: symmetric vs offload coprocessor usage
//! modes. In offload mode the input/output must cross PCIe, and since the
//! Phi's compute is faster than each PCIe leg, the transfers dominate:
//! `T_off ≈ 2·T_pci + µ·T_mpi`, predicted ~25 % slower than symmetric.

use soifft_bench::Table;
use soifft_model::ClusterModel;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 12 / §7**: symmetric vs offload coprocessor usage",
        &[],
    );
    let per_node = (1u64 << 27) as f64;
    println!("Fig 12 / Section 7: symmetric vs offload mode (model, seconds)");
    let mut t = Table::new(&[
        "nodes",
        "symmetric total",
        "offload PCIe",
        "offload MPI",
        "offload total",
        "offload penalty",
    ]);
    for &p in &[4u32, 8, 16, 32, 64, 128, 256, 512] {
        let n = per_node * p as f64;
        let phi = ClusterModel::xeon_phi(p);
        let sym = phi.soi_time(n).total();
        let off = phi.soi_offload_time(n);
        t.row(&[
            p.to_string(),
            format!("{sym:.3}"),
            format!("{:.3}", off.pci),
            format!("{:.3}", off.mpi),
            format!("{:.3}", off.total()),
            format!("{:.1}%", (off.total() / sym - 1.0) * 100.0),
        ]);
    }
    print!("{}", t.render());
    let phi = ClusterModel::xeon_phi(32);
    let n = per_node * 32.0;
    println!(
        "\nAt 32 nodes: offload/symmetric = {:.2} (paper: \"~25% slower\").",
        phi.soi_offload_time(n).total() / phi.soi_time(n).total()
    );
    println!("Both modes hide MPI-related PCIe staging by pipelining with");
    println!("InfiniBand transfers (§5.1); offload pays two *extra* PCIe sweeps");
    println!("because inputs/outputs live in host memory.");
}
