//! Regenerates **Fig 10**: the impact of the §5.2 bandwidth optimizations
//! on large local 1D FFT performance — the 4-rung ladder measured on this
//! host, with GFLOPS under the paper's `5N log₂N` convention.
//!
//! Rung mapping (see `soifft_fft::sixstep`): naive(13 sweeps) → fused
//! (4 sweeps) → +locality (dynamic-block twiddles, tiled write-back) →
//! +fine-grain (thread parallel). The paper measures 16M points on a
//! 61-core Phi; the default here is 2²⁰ points (override with
//! `SOIFFT_FIG10_N`), so compare *shapes*, not absolute GFLOPS.

use soifft_bench::{best_of, env_usize, gflops, signal, Table};
use soifft_fft::{fft_flops, SixStepFft, SixStepVariant};
use soifft_num::c64;
use soifft_par::{default_parallelism, Pool};

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 10**: the impact of the §5.2 bandwidth optimizations",
        &[
            ("SOIFFT_FIG10_N", "transform size for the ladder"),
            ("SOIFFT_REPS", "best-of repetitions"),
            ("SOIFFT_THREADS", "local-FFT worker threads"),
        ],
    );
    let n = env_usize("SOIFFT_FIG10_N", 1 << 20);
    let reps = env_usize("SOIFFT_REPS", 3);
    let threads = env_usize("SOIFFT_THREADS", default_parallelism());
    let x = signal(n, 11);

    println!("Fig 10: local FFT optimization ladder, N = {n} ({reps} reps, best)");
    println!("(paper: 16M points on Xeon Phi reaching ~120 GFLOPS at 12% efficiency)\n");
    let mut t = Table::new(&["variant", "memory sweeps", "seconds", "GFLOPS"]);
    let mut baseline = None;
    for variant in SixStepVariant::LADDER {
        let pool = if variant == SixStepVariant::FusedParallel {
            Pool::new(threads)
        } else {
            Pool::serial()
        };
        let plan = SixStepFft::with_pool(n, variant, pool);
        let mut data = x.clone();
        let mut aux = vec![c64::ZERO; n];
        let secs = best_of(reps, || plan.forward(&mut data, &mut aux));
        baseline.get_or_insert(secs);
        t.row(&[
            variant.label().into(),
            variant.memory_sweeps().to_string(),
            format!("{secs:.4}"),
            gflops(fft_flops(n), secs),
        ]);
    }
    print!("{}", t.render());
    println!("\nNote: the +fine-grain rung pays 2 extra memory sweeps for safe");
    println!("parallel write-back (sixstep module docs) and only wins with");
    println!("multiple cores ({} used here).", threads);
}
