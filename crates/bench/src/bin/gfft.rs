//! HPCC G-FFT-style measurement (the benchmark the paper's headline is
//! framed in: "the highest global FFT performance (G-FFT) is 206 TFLOPS in
//! Fujitsu K computer").
//!
//! Follows the HPC Challenge procedure: generate a random distributed
//! vector, run the distributed forward transform, run the inverse, verify
//! the residual `‖x − inv(fwd(x))‖∞ / (ε·log₂N)` is O(1), and report
//! GFLOPS under the `5N log₂N` convention. Runs both SOI and Cooley–Tukey
//! on the simulated cluster, then prints where the model places the same
//! measurement at paper scale.

use soifft_bench::{env_usize, signal, time, Table};
use soifft_cluster::Cluster;
use soifft_core::{Rational, SoiFft, SoiParams, WindowKind};
use soifft_ct::DistributedCtFft;
use soifft_model::ClusterModel;
use soifft_num::c64;

fn main() {
    soifft_bench::check_cli(
        "HPCC G-FFT-style measurement (the benchmark the paper's headline is",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 16);
    let x = signal(n, 123);
    let per = n / procs;
    let inputs: Vec<Vec<c64>> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();
    let flops = 5.0 * n as f64 * (n as f64).log2();
    let eps = f64::EPSILON;

    println!("G-FFT-style measurement, N = {n}, P = {procs} (simulated ranks)\n");
    let mut t = Table::new(&[
        "transform",
        "fwd+inv wall (s)",
        "GFLOPS (fwd)",
        "HPCC residual",
    ]);

    // SOI.
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let soi = SoiFft::with_window(params, WindowKind::ProlateSinc).expect("plannable");
    let ((fwd_s, residual), total_s) = time(|| {
        let (spec, fwd_s) = {
            let t0 = std::time::Instant::now();
            let spec = Cluster::run(procs, |comm| soi.forward(comm, &inputs[comm.rank()]));
            (spec, t0.elapsed().as_secs_f64())
        };
        let back = Cluster::run(procs, |comm| soi.inverse(comm, &spec[comm.rank()]));
        let mut worst = 0.0f64;
        for (r, piece) in back.iter().enumerate() {
            for (i, v) in piece.iter().enumerate() {
                worst = worst.max((*v - x[r * per + i]).abs());
            }
        }
        (fwd_s, worst / (eps * (n as f64).log2()))
    });
    t.row(&[
        "SOI".into(),
        format!("{total_s:.3}"),
        format!("{:.2}", flops / fwd_s / 1e9),
        format!("{residual:.1}"),
    ]);

    // Cooley–Tukey (forward only has a natural-order inverse via conj).
    let ct = DistributedCtFft::new(n, procs).expect("plannable");
    let (spec, fwd_s) = {
        let t0 = std::time::Instant::now();
        let spec = Cluster::run(procs, |comm| ct.forward(comm, &inputs[comm.rank()]));
        (spec, t0.elapsed().as_secs_f64())
    };
    // Inverse through conjugation around the forward CT.
    let conj_in: Vec<Vec<c64>> = spec
        .iter()
        .map(|p| p.iter().map(|z| z.conj()).collect())
        .collect();
    let back = Cluster::run(procs, |comm| ct.forward(comm, &conj_in[comm.rank()]));
    let mut worst = 0.0f64;
    for (r, piece) in back.iter().enumerate() {
        for (i, v) in piece.iter().enumerate() {
            let reconstructed = v.conj() / n as f64;
            worst = worst.max((reconstructed - x[r * per + i]).abs());
        }
    }
    t.row(&[
        "Cooley-Tukey".into(),
        "-".into(),
        format!("{:.2}", flops / fwd_s / 1e9),
        format!("{:.1}", worst / (eps * (n as f64).log2())),
    ]);
    print!("{}", t.render());

    println!("\nHPCC passes a run when the scaled residual is < 16; both qualify");
    println!("(SOI uses the prolate window here — the accuracy-tier design). At");
    println!("paper scale the calibrated model places SOI-on-Phi at:");
    for p in [64u32, 512] {
        let model = ClusterModel::xeon_phi(p);
        let big_n = (1u64 << 27) as f64 * p as f64;
        println!(
            "  {p:>4} nodes: {:.2} TFLOPS (K computer record: 206 TFLOPS on 81,944 nodes)",
            ClusterModel::tflops(big_n, model.soi_time(big_n).total())
        );
    }
}
