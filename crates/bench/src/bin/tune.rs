//! Auto-tuner bench: tuned plan vs the static default across a size
//! sweep, scored as `BENCH_8.json`.
//!
//! For each `N` in the sweep the tuner plans at [`Tier::Measure`]: it
//! ranks the candidate space (execution knobs × accuracy-preserving
//! shapes) with the cost-model prior, probes the top-k **plus the
//! default plan** with warm, barrier-aligned best-of-R runs, refits the
//! model's rate coefficients from the probes' trace ledgers, and adopts
//! the fastest measurement. Because the default plan is always in the
//! probe set, `tuned_s <= default_s` holds by construction on every
//! row — the headline is *how much* faster the tuned pick is, and how
//! much the per-phase prediction error shrinks after one refit.
//!
//! One tuner instance spans the sweep, so later sizes are ranked with
//! rates refit from earlier probes — the wisdom-accumulation loop the
//! planner runs in production.
//!
//! Scaling knobs: `SOIFFT_TUNE_LOG2NS` (comma-separated log2 sizes,
//! default `20,22,24`), `SOIFFT_TUNE_P` (ranks, default 4),
//! `SOIFFT_TUNE_TOPK` (candidates probed beyond the default, default 4),
//! `SOIFFT_TUNE_REPS` (best-of repetitions per probe, default 2),
//! `SOIFFT_TUNE_WISDOM` (path: persist wisdom there and reuse it on the
//! next run), `SOIFFT_TUNE_JSON` (output path, default `BENCH_8.json`),
//! `SOIFFT_TUNE_ASSERT` (nonzero: exit nonzero unless every row has
//! `tuned_s <= default_s` — the nightly tune-smoke gate).

use soifft_bench::{check_cli, env_usize, Table, BENCH_SCHEMA_VERSION};
use soifft_core::Precision;
use soifft_tune::{MeasuredProber, PlanSource, Tier, TuneRequest, Tuner};

fn log2_sizes() -> Vec<u32> {
    let raw = std::env::var("SOIFFT_TUNE_LOG2NS").unwrap_or_else(|_| "20,22,24".to_string());
    let sizes: Vec<u32> = raw
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse()
                .unwrap_or_else(|_| panic!("SOIFFT_TUNE_LOG2NS: bad log2 size {tok:?}"))
        })
        .collect();
    assert!(!sizes.is_empty(), "SOIFFT_TUNE_LOG2NS is empty");
    sizes
}

fn main() {
    check_cli(
        "Auto-tuner bench: tuned plan vs static default across a size sweep \
         (BENCH_8.json).",
        &[
            ("SOIFFT_TUNE_LOG2NS", "comma-separated log2 transform sizes"),
            ("SOIFFT_TUNE_P", "ranks"),
            ("SOIFFT_TUNE_TOPK", "candidates probed beyond the default"),
            ("SOIFFT_TUNE_REPS", "best-of repetitions per probe"),
            ("SOIFFT_TUNE_WISDOM", "wisdom file path (persist + reuse)"),
            ("SOIFFT_TUNE_JSON", "BENCH_8.json output path"),
            (
                "SOIFFT_TUNE_ASSERT",
                "nonzero: fail unless tuned <= default",
            ),
        ],
    );
    let procs = env_usize("SOIFFT_TUNE_P", 4);
    let top_k = env_usize("SOIFFT_TUNE_TOPK", 4);
    let reps = env_usize("SOIFFT_TUNE_REPS", 2);
    let assert_gate = env_usize("SOIFFT_TUNE_ASSERT", 0) != 0;

    let mut tuner = match std::env::var("SOIFFT_TUNE_WISDOM") {
        Ok(path) => {
            let t = Tuner::with_wisdom_file(&path);
            if let Some(err) = t.degraded() {
                eprintln!("wisdom at {path} unusable ({err}); starting fresh");
            }
            t
        }
        Err(_) => Tuner::in_memory(),
    };
    let mut prober = MeasuredProber::new();

    println!("Auto-tuner: measured-probe planning vs static defaults");
    println!(
        "(P = {procs}, top-k = {top_k}, best-of-{reps} probes, fingerprint {})\n",
        tuner.fingerprint()
    );
    let mut t = Table::new(&[
        "n",
        "default (s)",
        "tuned (s)",
        "speedup",
        "pred err before",
        "pred err after",
        "source",
        "chosen plan",
    ]);

    let mut points = Vec::new();
    let mut max_speedup = 0.0_f64;
    let mut error_shrunk = 0usize;
    let mut gate_ok = true;
    for log2n in log2_sizes() {
        let n = 1usize << log2n;
        let mut req = TuneRequest::new(n, procs);
        req.precision = Precision::F64;
        req.top_k = top_k;
        req.reps = reps;
        let out = tuner
            .plan(&req, Tier::Measure, &mut prober)
            .unwrap_or_else(|e| panic!("tuning n=2^{log2n} failed: {e}"));

        let tuned_s = out.measured_s.expect("measured tier reports a wall");
        // A wisdom hit (second run against a persisted file) has no
        // default measurement; score it against its recorded wall.
        let default_s = out.default_measured_s.unwrap_or(tuned_s);
        let speedup = default_s / tuned_s;
        max_speedup = max_speedup.max(speedup);
        let (before, after) = (out.prior_error, out.post_error);
        if let (Some(b), Some(a)) = (before, after) {
            if a < b {
                error_shrunk += 1;
            }
        }
        if tuned_s > default_s {
            gate_ok = false;
        }
        let source = match out.source {
            PlanSource::Wisdom => "wisdom",
            PlanSource::Measured => "measured",
            PlanSource::Estimated => "estimated",
        };
        let fmt_err = |e: Option<f64>| e.map_or("-".to_string(), |v| format!("{v:.3}"));
        t.row(&[
            format!("2^{log2n}"),
            format!("{default_s:.4}"),
            format!("{tuned_s:.4}"),
            format!("{speedup:.2}x"),
            fmt_err(before),
            fmt_err(after),
            source.to_string(),
            out.chosen.describe(),
        ]);
        points.push(format!(
            "    {{\n      \"n\": {n},\n      \"default_s\": {default_s:.6},\n      \"tuned_s\": {tuned_s:.6},\n      \"speedup\": {speedup:.4},\n      \"prediction_error_before\": {},\n      \"prediction_error_after\": {},\n      \"probes\": {},\n      \"source\": \"{source}\",\n      \"chosen\": \"{}\"\n    }}",
            before.map_or("null".to_string(), |v| format!("{v:.6}")),
            after.map_or("null".to_string(), |v| format!("{v:.6}")),
            out.probes_run,
            out.chosen.describe(),
        ));
    }
    print!("{}", t.render());
    let rates = *tuner.rates();
    println!(
        "\nRefit rates: fft {:.3e} flops/s, conv {:.3e} flops/s,",
        rates.fft_flops_per_s, rates.conv_flops_per_s
    );
    println!(
        "             net {:.3e} B/s, latency {:.3e} s",
        rates.net_bytes_per_s, rates.net_latency_s
    );
    println!("Max tuned-vs-default speedup: {max_speedup:.2}x");

    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"tune\",\n  \"procs\": {procs},\n  \"top_k\": {top_k},\n  \"reps\": {reps},\n  \"points\": [\n{}\n  ],\n  \"max_speedup\": {max_speedup:.4},\n  \"error_shrunk_points\": {error_shrunk},\n  \"rates\": {{\n    \"fft_flops_per_s\": {:.6e},\n    \"conv_flops_per_s\": {:.6e},\n    \"net_bytes_per_s\": {:.6e},\n    \"net_latency_s\": {:.6e}\n  }}\n}}\n",
        points.join(",\n"),
        rates.fft_flops_per_s,
        rates.conv_flops_per_s,
        rates.net_bytes_per_s,
        rates.net_latency_s,
    );
    let path = std::env::var("SOIFFT_TUNE_JSON").unwrap_or_else(|_| "BENCH_8.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_8 json");
    eprintln!("wrote {path}");

    if assert_gate && !gate_ok {
        eprintln!("FAIL: a tuned plan measured slower than the default");
        std::process::exit(1);
    }
}
