//! The paper's headline-claims checklist, each evaluated against this
//! reproduction (model at paper scale, functional at simulation scale).
//! This is the summary table EXPERIMENTS.md embeds.

use soifft_bench::Table;
use soifft_model::{weak_scaling, ClusterModel, MachineSpec};

fn main() {
    soifft_bench::check_cli(
        "The paper's headline-claims checklist, each evaluated against this",
        &[],
    );
    let per_node = (1u64 << 27) as f64;
    let pts = weak_scaling(&[4, 8, 16, 32, 64, 128, 256, 512], per_node);
    let at = |p: u32| pts.iter().find(|s| s.nodes == p).expect("in sweep");
    let n32 = per_node * 32.0;
    let xeon32 = ClusterModel::xeon(32);
    let phi32 = ClusterModel::xeon_phi(32);

    let mut t = Table::new(&["paper claim", "paper value", "this reproduction", "ok"]);
    let mut check = |claim: &str, paper: &str, got: String, ok: bool| {
        t.row(&[
            claim.into(),
            paper.into(),
            got,
            if ok { "yes" } else { "NO" }.into(),
        ]);
    };

    check(
        "SOI-Phi TFLOPS at 512 nodes",
        "6.7",
        format!("{:.2}", at(512).soi_phi),
        (at(512).soi_phi - 6.7).abs() < 0.2,
    );
    check(
        "tera-flop mark broken at",
        "64 nodes",
        format!("{:.2} TF @64, {:.2} TF @32", at(64).soi_phi, at(32).soi_phi),
        at(64).soi_phi > 1.0 && at(32).soi_phi < 1.0,
    );
    let s512 = at(512).soi_speedup();
    check(
        "Phi/Xeon speedup under SOI",
        "1.5-2.0x",
        format!("{s512:.2}x @512"),
        (1.4..2.0).contains(&s512),
    );
    let c512 = at(512).ct_speedup();
    check(
        "Phi/Xeon speedup under CT",
        "~1.1x",
        format!("{c512:.2}x @512"),
        (1.0..1.25).contains(&c512),
    );
    let soi_gain = xeon32.soi_time(n32).total() / phi32.soi_time(n32).total();
    check(
        "Sec 4 estimate: SOI gain from Phi",
        "~1.7x (70%)",
        format!("{soi_gain:.2}x"),
        (soi_gain - 1.7).abs() < 0.1,
    );
    let off = phi32.soi_offload_time(n32).total() / phi32.soi_time(n32).total();
    check(
        "offload vs symmetric (Sec 7)",
        "~25% slower",
        format!("{:.0}% slower", (off - 1.0) * 100.0),
        (off - 1.25).abs() < 0.05,
    );
    let host = MachineSpec::xeon_e5_2680();
    let hybrid_gain = phi32.soi_time(n32).total() / phi32.soi_hybrid_time(n32, &host).total();
    check(
        "hybrid mode gain (Sec 7)",
        "<10%",
        format!("{:.1}%", (hybrid_gain - 1.0) * 100.0),
        hybrid_gain < 1.10,
    );
    let per_node_ratio = at(512).soi_phi / 512.0 / (206.0 / 81944.0);
    check(
        "per-node vs K computer (HPCC G-FFT)",
        "~5x",
        format!("{per_node_ratio:.1}x"),
        (4.0..6.5).contains(&per_node_ratio),
    );
    check(
        "segments per Phi vs per Xeon socket",
        "6 : 1",
        format!(
            "{} : 1",
            ClusterModel::segments_per_accelerator(&host, &MachineSpec::xeon_phi_se10())
        ),
        ClusterModel::segments_per_accelerator(&host, &MachineSpec::xeon_phi_se10()) == 6,
    );

    println!("Paper headline claims vs this reproduction");
    println!("(model calibrated on ONE number — 6.7 TF @512; everything else follows)\n");
    print!("{}", t.render());
}
