//! Regenerates **Table 3**: the experiment setup — here, the constants the
//! simulation substrate and analytic model use in place of the Stampede
//! cluster, plus this reproduction's own software stack.

use soifft_bench::Table;
use soifft_model::{NetworkSpec, PcieSpec, SoiConstants};

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Table 3**: the experiment setup — here, the constants the",
        &[],
    );
    let net = NetworkSpec::default();
    let pcie = PcieSpec::default();
    let soi = SoiConstants::default();

    let mut t = Table::new(&["parameter", "paper (Stampede)", "this reproduction"]);
    t.row(&[
        "Processors".into(),
        "Xeon E5-2680 + Xeon Phi SE10".into(),
        "MachineSpec constants (Table 2)".into(),
    ]);
    t.row(&[
        "PCIe bandwidth".into(),
        "6 GB/s".into(),
        format!("{} GB/s (model)", pcie.gb_s),
    ]);
    t.row(&[
        "Interconnect".into(),
        "FDR InfiniBand, 2-level fat tree".into(),
        format!(
            "{} GiB/s/node, eta(P)=1/(1+{}*log2(P/{}))",
            net.per_node_gib_s, net.degradation_alpha, net.degradation_start
        ),
    ]);
    t.row(&[
        "MPI".into(),
        "Intel MPI v4.1, 2 proc/node (Xeon), 1 (Phi)".into(),
        "soifft-cluster (threads + channels)".into(),
    ]);
    t.row(&[
        "SOI".into(),
        "8 or 2 segments/process, mu=8/7".into(),
        format!("segments configurable, mu={}/{}, B={}", 8, 7, soi.b),
    ]);
    t.row(&[
        "Local FFT".into(),
        "Intel MKL v11.0".into(),
        "soifft-fft (6-step / mixed radix / Bluestein)".into(),
    ]);
    t.row(&[
        "Compiler".into(),
        "Intel Compiler v13.1".into(),
        format!("rustc {}", rustc_version()),
    ]);

    println!("Table 3: Experiment setup (paper vs this reproduction)\n");
    print!("{}", t.render());
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "(unknown)".into())
}
