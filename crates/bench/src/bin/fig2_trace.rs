//! Regenerates **Fig 2** structurally: runs the SOI FFT on a simulated
//! 4-rank cluster and prints each rank's phase ledger — one ghost exchange
//! plus ONE all-to-all, versus Cooley–Tukey's three (`fig1_trace`).

use soifft_bench::{env_usize, signal, Table};
use soifft_cluster::Cluster;
use soifft_core::{Rational, SoiFft, SoiParams};
use soifft_fft::Plan;
use soifft_num::error::rel_l2;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 2** structurally: runs the SOI FFT on a simulated",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 14);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    params.validate().expect("valid parameters");
    let x = signal(n, 1);
    let per = params.per_rank();
    let inputs: Vec<_> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    let fft = SoiFft::new(params).expect("plannable");
    let results = Cluster::run(procs, |comm| {
        let out = fft.forward(comm, &inputs[comm.rank()]);
        (out, comm.stats().clone())
    });

    let got: Vec<_> = results
        .iter()
        .flat_map(|(o, _)| o.iter().copied())
        .collect();
    let mut want = x.clone();
    Plan::new(n).forward(&mut want);
    let err = rel_l2(&got, &want);

    println!("Fig 2: Segment-of-Interest factorization — communication structure");
    println!(
        "N = {n}, P = {procs}, S = {}, mu = {}, B = {}, verified: rel_l2 = {err:.2e}\n",
        params.segments_per_proc, params.mu, params.conv_width
    );
    let mut t = Table::new(&[
        "rank",
        "phase sequence",
        "all-to-alls",
        "ghost bytes",
        "a2a bytes",
    ]);
    for (rank, (_, stats)) in results.iter().enumerate() {
        let seq: Vec<&str> = stats.records().iter().map(|r| r.name).collect();
        t.row(&[
            rank.to_string(),
            seq.join(" -> "),
            stats.count_of("all-to-all").to_string(),
            stats.bytes_in("ghost").to_string(),
            stats.bytes_in("all-to-all").to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nPaper: \"one all-to-all communication step suffices in this");
    println!("decomposition\", plus a latency-bound nearest-neighbour ghost");
    println!("exchange of tens of KB — confirmed by the trace above.");
    assert!(results.iter().all(|(_, s)| s.count_of("all-to-all") == 1));
    assert!(results.iter().all(|(_, s)| s.count_of("ghost") == 1));
}
