//! Segment-overlap ablation (§6.1): "using multiple segments allows
//! all-to-all communications to be overlapped with M'-point FFTs and
//! demodulation ... our evaluation uses 8 segments per MPI process for ≤128
//! nodes and 2 for ≥512 nodes".
//!
//! Sweeps segments-per-process with the event-simulated schedule and
//! prints the Fig 12-style two-lane timing diagram for the paper's two
//! operating points.

use soifft_bench::Table;
use soifft_model::ClusterModel;

fn main() {
    soifft_bench::check_cli(
        "Segment-overlap ablation (§6.1): \"using multiple segments allows",
        &[],
    );
    let per_node = (1u64 << 27) as f64;

    println!("Segment-overlap ablation (event-simulated schedule, SOI on Xeon Phi)\n");
    let mut t = Table::new(&[
        "nodes",
        "segments",
        "total (s)",
        "exposed MPI (s)",
        "vs S=1",
    ]);
    for &nodes in &[32u32, 128, 512] {
        let model = ClusterModel::xeon_phi(nodes);
        let n = per_node * nodes as f64;
        let base = model.soi_timeline(n, 1).total;
        for &s in &[1u32, 2, 4, 8, 16] {
            let tl = model.soi_timeline(n, s);
            t.row(&[
                nodes.to_string(),
                s.to_string(),
                format!("{:.3}", tl.total),
                format!("{:.3}", tl.exposed_mpi),
                format!("{:.2}x", base / tl.total),
            ]);
        }
    }
    print!("{}", t.render());

    println!("\nTiming diagrams at 128 nodes (paper uses S=8 here):");
    let model = ClusterModel::xeon_phi(128);
    let n = per_node * 128.0;
    for s in [1u32, 8] {
        println!("\nS = {s}:");
        print!("{}", model.soi_timeline(n, s).ascii(64));
    }
    println!("\nWhy the paper drops to S=2 at >=512 nodes: smaller packets —");
    println!("per-pair message size falls as 1/P in weak scaling, and splitting");
    println!("by S shrinks it further, hurting achievable MPI bandwidth. The");
    println!("model here prices bandwidth independently of packet size, so the");
    println!("table shows only the overlap side of that trade; the packet-length");
    println!("side is exercised functionally by `benches/alltoall.rs`.");
}
