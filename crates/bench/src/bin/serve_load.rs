//! Open-loop load generator for the serving front end (`soifft-serve`):
//! the latency-vs-offered-load curve that demonstrates graceful
//! degradation instead of congestion collapse.
//!
//! Methodology — the classic open-loop protocol:
//!
//! 1. **Calibrate**: a closed-loop flood (queue kept full) measures the
//!    engine's saturation service rate, `capacity` jobs/s.
//! 2. **Sweep**: for each load factor (0.25×, 0.5×, 1×, 1.5×, 2×
//!    capacity), submit jobs on a seeded Poisson arrival process for a
//!    fixed window — *without* waiting for completions (arrivals don't
//!    slow down when the server struggles; that is what makes overload
//!    overload). Every job carries the same completion deadline.
//! 3. **Score**: goodput (completions within deadline per second),
//!    typed-rejection and shed counts, and p50/p99 latency of the
//!    completions. A well-behaved server's goodput *plateaus* at
//!    saturation while rejections absorb the excess; a collapsing one
//!    buries itself in queued work it can no longer serve in time.
//!
//! Prints a table plus an ASCII latency-vs-load curve (the nightly
//! workflow captures stdout as `artifacts/example_serve_load.txt`) and
//! writes machine-readable `BENCH_6.json` (override with
//! `SOIFFT_SERVE_JSON`).
//!
//! Soak/assertion mode for CI (`SOIFFT_SOAK_ASSERT=1`): fails unless
//! (a) goodput at 2× offered load stays within 10 % of the saturation
//! plateau, and (b) **zero** successful responses violated their
//! deadline. `SOIFFT_SOAK_SECS` stretches the 2× window (nightly: 60 s).
//!
//! Scaling knobs: `SOIFFT_SERVE_N` (points, default 2¹⁴), `SOIFFT_SERVE_P`
//! (ranks, default 4), `SOIFFT_SERVE_WINDOW_SECS` (per-point window,
//! default 2.0), `SOIFFT_SERVE_DEADLINE_MS` (job deadline, default
//! 8× the calibrated mean service time, floor 50 ms), `SOIFFT_SERVE_SEED`
//! (arrival-process seed, default 1).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use soifft_bench::{env_f64, env_usize, signal, Table, BENCH_SCHEMA_VERSION};
use soifft_core::{Rational, SoiParams};
use soifft_num::c64;
use soifft_serve::{JobError, Rejected, ServeConfig, ServeEngine};

/// One load point's scorecard.
struct LoadPoint {
    factor: f64,
    offered_per_s: f64,
    window_s: f64,
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    rejected_rate_limited: u64,
    rejected_infeasible: u64,
    shed: u64,
    failed: u64,
    late_success: u64,
    p50_ms: f64,
    p99_ms: f64,
}

impl LoadPoint {
    fn goodput(&self) -> f64 {
        self.completed as f64 / self.window_s
    }

    fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_rate_limited + self.rejected_infeasible
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// What one collector thread reports per resolved ticket.
enum Outcome {
    /// Completed within deadline; latency in seconds, plus whether the
    /// *response* was observed past the deadline (must never happen).
    Done(f64, bool),
    Shed,
    Failed,
}

/// Runs one open-loop window at `rate` jobs/s and scores it.
#[allow(clippy::too_many_arguments)]
fn run_point(
    engine: &ServeEngine,
    inputs: &[Vec<c64>],
    tenants: usize,
    factor: f64,
    rate: f64,
    window: Duration,
    deadline: Duration,
    seed: u64,
) -> LoadPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    // One collector thread per tenant, fed round-robin: tickets are
    // waited off the submit thread so arrivals stay open-loop.
    let (txs, handles): (Vec<_>, Vec<_>) = (0..tenants)
        .map(|_| {
            let (tx, rx) = mpsc::channel::<(soifft_serve::JobTicket, Instant)>();
            let handle = std::thread::spawn(move || {
                let mut outcomes: Vec<Outcome> = Vec::new();
                let mut out = Vec::new();
                for (ticket, submitted) in rx {
                    let result = ticket.wait_into(&mut out);
                    let latency = submitted.elapsed();
                    outcomes.push(match result {
                        // 5 ms grace on the *observation*: the engine
                        // finalizes successes strictly before the
                        // deadline; the collector may wake a hair later.
                        Ok(()) => Outcome::Done(
                            latency.as_secs_f64(),
                            latency > deadline + Duration::from_millis(5),
                        ),
                        Err(JobError::DeadlineExpired { .. }) => Outcome::Shed,
                        Err(_) => Outcome::Failed,
                    });
                }
                outcomes
            });
            (tx, handle)
        })
        .unzip();

    let mut point = LoadPoint {
        factor,
        offered_per_s: rate,
        window_s: window.as_secs_f64(),
        submitted: 0,
        completed: 0,
        rejected_queue_full: 0,
        rejected_rate_limited: 0,
        rejected_infeasible: 0,
        shed: 0,
        failed: 0,
        late_success: 0,
        p50_ms: f64::NAN,
        p99_ms: f64::NAN,
    };

    let start = Instant::now();
    let mut next_arrival = Duration::ZERO;
    let mut k = 0usize;
    while next_arrival < window {
        if let Some(gap) = next_arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        let tenant = k % tenants;
        match engine.submit(tenant, &inputs[k % inputs.len()], Some(deadline)) {
            Ok(ticket) => {
                point.submitted += 1;
                let _ = txs[tenant].send((ticket, Instant::now()));
            }
            Err(Rejected::QueueFull { .. }) => point.rejected_queue_full += 1,
            Err(Rejected::RateLimited { .. }) => point.rejected_rate_limited += 1,
            Err(Rejected::DeadlineInfeasible { .. }) => point.rejected_infeasible += 1,
            Err(other) => panic!("unexpected rejection under load: {other}"),
        }
        k += 1;
        // Poisson process: exponential inter-arrival, -ln(U)/rate.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        next_arrival += Duration::from_secs_f64(-u.ln() / rate);
    }
    drop(txs);

    let mut latencies: Vec<f64> = Vec::new();
    for handle in handles {
        for outcome in handle.join().expect("collector thread") {
            match outcome {
                Outcome::Done(latency, late) => {
                    point.completed += 1;
                    point.late_success += u64::from(late);
                    latencies.push(latency);
                }
                Outcome::Shed => point.shed += 1,
                Outcome::Failed => point.failed += 1,
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    point.p50_ms = percentile(&latencies, 0.50) * 1e3;
    point.p99_ms = percentile(&latencies, 0.99) * 1e3;
    point
}

fn main() {
    soifft_bench::check_cli(
        "Open-loop load generator for the serving front end (`soifft-serve`)",
        &[
            ("SOIFFT_SERVE_CALIB_JOBS", "calibration job count"),
            ("SOIFFT_SERVE_DEADLINE_MS", "per-job deadline (ms)"),
            ("SOIFFT_SERVE_JSON", "BENCH_6.json output path"),
            ("SOIFFT_SERVE_N", "transform size"),
            ("SOIFFT_SERVE_P", "ranks"),
            ("SOIFFT_SERVE_SEED", "load-generator RNG seed"),
            ("SOIFFT_SERVE_WINDOW_SECS", "measurement window seconds"),
            ("SOIFFT_SOAK_ASSERT", "1 = fail on soak regression"),
            ("SOIFFT_SOAK_SECS", "optional soak duration"),
        ],
    );
    let n = env_usize("SOIFFT_SERVE_N", 1 << 14);
    let procs = env_usize("SOIFFT_SERVE_P", 4);
    let tenants = 2;
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    params.validate().expect("valid bench parameters");
    let config = ServeConfig {
        tenants,
        queue_capacity: 16,
        max_batch: 4,
        ..ServeConfig::default()
    };
    let queue_capacity = config.queue_capacity;
    let engine = ServeEngine::start(params, config).expect("plan");
    let inputs: Vec<Vec<c64>> = (0..4).map(|b| signal(n, 90 + b as u64)).collect();

    // Calibration: keep the queue full (closed loop) and measure the
    // drain rate — the engine's saturation capacity.
    let mut out = Vec::new();
    for x in inputs.iter().take(2) {
        engine
            .submit(0, x, None)
            .expect("warm")
            .wait_into(&mut out)
            .expect("warm serve");
    }
    let calib_jobs = env_usize("SOIFFT_SERVE_CALIB_JOBS", 64).max(8);
    let t = Instant::now();
    let mut pending = std::collections::VecDeque::new();
    for k in 0..calib_jobs {
        // Admission-bounded closed loop: drain one when the queue is full.
        if pending.len() >= queue_capacity {
            let early: soifft_serve::JobTicket = pending.pop_front().unwrap();
            early.wait_into(&mut out).expect("calibration serve");
        }
        pending.push_back(
            engine
                .submit(0, &inputs[k % inputs.len()], None)
                .expect("calibration admit"),
        );
    }
    for ticket in pending {
        ticket.wait_into(&mut out).expect("calibration serve");
    }
    let capacity = calib_jobs as f64 / t.elapsed().as_secs_f64();
    let mean_service_ms = 1e3 / capacity;

    let deadline = Duration::from_secs_f64(
        env_f64(
            "SOIFFT_SERVE_DEADLINE_MS",
            (8.0 * mean_service_ms).max(50.0),
        ) / 1e3,
    );
    let window = Duration::from_secs_f64(env_f64("SOIFFT_SERVE_WINDOW_SECS", 2.0));
    let soak = Duration::from_secs_f64(env_f64("SOIFFT_SOAK_SECS", window.as_secs_f64()));
    let seed = env_usize("SOIFFT_SERVE_SEED", 1) as u64;

    println!(
        "Open-loop serving load sweep: N = 2^{} = {n}, P = {procs}, tenants = {tenants}, \
         queue = {queue_capacity}, batch = 4",
        n.ilog2(),
    );
    println!(
        "calibrated capacity: {capacity:.1} jobs/s (mean service {mean_service_ms:.2} ms); \
         deadline {:.0} ms; Poisson arrivals, seed {seed}\n",
        deadline.as_secs_f64() * 1e3,
    );

    let factors = [0.25, 0.5, 1.0, 1.5, 2.0];
    let mut points: Vec<LoadPoint> = Vec::new();
    for (i, &factor) in factors.iter().enumerate() {
        // The 2× (overload) point doubles as the soak window.
        let w = if factor == 2.0 { soak } else { window };
        let point = run_point(
            &engine,
            &inputs,
            tenants,
            factor,
            factor * capacity,
            w,
            deadline,
            seed + i as u64,
        );
        points.push(point);
    }

    let mut table = Table::new(&[
        "load",
        "offered/s",
        "goodput/s",
        "rejected",
        "shed",
        "failed",
        "late",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for p in &points {
        table.row(&[
            format!("{:.2}x", p.factor),
            format!("{:.1}", p.offered_per_s),
            format!("{:.1}", p.goodput()),
            format!("{}", p.rejected()),
            format!("{}", p.shed),
            format!("{}", p.failed),
            format!("{}", p.late_success),
            format!("{:.2}", p.p50_ms),
            format!("{:.2}", p.p99_ms),
        ]);
    }
    print!("{}", table.render());

    // ASCII latency-vs-load curve: offered load on the x axis, p99 on the
    // y axis (log-ish bar of #), goodput annotated. The overload story in
    // one glance: bars stop growing once admission control bites.
    println!(
        "\nlatency vs offered load (p99, one # per {:.0} ms):",
        deadline.as_secs_f64() * 1e3 / 40.0
    );
    for p in &points {
        let unit = deadline.as_secs_f64() * 1e3 / 40.0;
        let bars = if p.p99_ms.is_nan() {
            0
        } else {
            (p.p99_ms / unit).round() as usize
        };
        println!(
            "  {:>5.2}x |{:<40}| p99 {:>7.2} ms, goodput {:>6.1}/s",
            p.factor,
            "#".repeat(bars.min(40)),
            p.p99_ms,
            p.goodput(),
        );
    }

    let plateau = points
        .iter()
        .filter(|p| p.factor >= 1.0)
        .map(LoadPoint::goodput)
        .fold(0.0f64, f64::max);
    let at_2x = points.last().expect("2x point");
    let late_total: u64 = points.iter().map(|p| p.late_success).sum();
    println!(
        "\nsaturation plateau {plateau:.1} jobs/s; goodput at 2x = {:.1} jobs/s \
         ({:.0}% of plateau); late successes: {late_total}",
        at_2x.goodput(),
        100.0 * at_2x.goodput() / plateau,
    );

    let report = engine.shutdown();
    let stats = report.stats;

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        rows.push_str(&format!(
            "    {{ \"load_factor\": {:.2}, \"offered_per_s\": {:.3}, \"window_s\": {:.3}, \
             \"submitted\": {}, \"goodput_per_s\": {:.3}, \"rejected\": {}, \"shed\": {}, \
             \"failed\": {}, \"late_success\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}{comma}\n",
            p.factor,
            p.offered_per_s,
            p.window_s,
            p.submitted,
            p.goodput(),
            p.rejected(),
            p.shed,
            p.failed,
            p.late_success,
            p.p50_ms,
            p.p99_ms,
        ));
    }
    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"serve_load\",\n  \
         \"n\": {n},\n  \"procs\": {procs},\n  \"tenants\": {tenants},\n  \
         \"queue_capacity\": {queue_capacity},\n  \"max_batch\": 4,\n  \
         \"capacity_jobs_per_s\": {capacity:.3},\n  \"deadline_ms\": {dl:.3},\n  \
         \"plateau_goodput_per_s\": {plateau:.3},\n  \"goodput_at_2x_per_s\": {g2:.3},\n  \
         \"late_successes\": {late_total},\n  \"engine\": {{\n    \"submitted\": {sub},\n    \
         \"completed\": {comp},\n    \"rejected\": {rej},\n    \"shed_queue\": {shq},\n    \
         \"shed_inflight\": {shi},\n    \"retries\": {ret},\n    \"epoch_aborts\": {ab}\n  }},\n  \
         \"points\": [\n{rows}  ]\n}}\n",
        dl = deadline.as_secs_f64() * 1e3,
        g2 = at_2x.goodput(),
        sub = stats.submitted,
        comp = stats.completed,
        rej = stats.rejected,
        shq = stats.shed_queue,
        shi = stats.shed_inflight,
        ret = stats.retries,
        ab = stats.epoch_aborts,
    );
    let path = std::env::var("SOIFFT_SERVE_JSON").unwrap_or_else(|_| "BENCH_6.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_6.json");
    eprintln!("wrote {path}");

    if std::env::var("SOIFFT_SOAK_ASSERT").as_deref() == Ok("1") {
        assert!(
            at_2x.goodput() >= 0.9 * plateau,
            "congestion collapse: goodput at 2x load ({:.1}/s) fell below 90% of the \
             saturation plateau ({plateau:.1}/s)",
            at_2x.goodput(),
        );
        assert_eq!(
            late_total, 0,
            "deadline violation: {late_total} successful responses were observed past \
             their deadline"
        );
        println!("\nsoak assertions passed: plateau held, zero late successes");
    }
}
