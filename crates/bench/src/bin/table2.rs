//! Regenerates **Table 2**: comparison of Xeon and Xeon Phi, including the
//! derived bytes-per-op row the bandwidth analysis hinges on.

use soifft_bench::Table;
use soifft_model::MachineSpec;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Table 2**: comparison of Xeon and Xeon Phi, including the",
        &[],
    );
    let xeon = MachineSpec::xeon_e5_2680();
    let phi = MachineSpec::xeon_phi_se10();

    let mut t = Table::new(&["", &xeon.name, &phi.name]);
    let cfg = |m: &MachineSpec| {
        format!(
            "{} x {} x {} x {}",
            m.sockets, m.cores_per_socket, m.smt, m.simd
        )
    };
    t.row(&["Socket x core x SMT x SIMD".into(), cfg(&xeon), cfg(&phi)]);
    t.row(&[
        "Clock (GHz)".into(),
        format!("{:.1}", xeon.clock_ghz),
        format!("{:.1}", phi.clock_ghz),
    ]);
    let caches = |m: &MachineSpec| match m.l3_kb {
        Some(l3) => format!("{}/{}/{}", m.l1_kb, m.l2_kb, l3),
        None => format!("{}/{}/-", m.l1_kb, m.l2_kb),
    };
    t.row(&["L1/L2/L3 cache (KB)".into(), caches(&xeon), caches(&phi)]);
    t.row(&[
        "Double-precision GFLOP/s".into(),
        format!("{:.0}", xeon.peak_gflops),
        format!("{:.0}", phi.peak_gflops),
    ]);
    t.row(&[
        "STREAM bandwidth (GB/s)".into(),
        format!("{:.0}", xeon.stream_gbs),
        format!("{:.0}", phi.stream_gbs),
    ]);
    t.row(&[
        "Bytes per op".into(),
        format!("{:.2}", xeon.bytes_per_op()),
        format!("{:.2}", phi.bytes_per_op()),
    ]);

    println!("Table 2: Comparison of Xeon and Xeon Phi");
    println!("(paper values: bops 0.23 vs 0.14 — the Phi is *more* bandwidth-starved,");
    println!(" which is why §5's locality optimizations carry the result)\n");
    print!("{}", t.render());
}
