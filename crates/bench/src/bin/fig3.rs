//! Regenerates **Fig 3**: model-estimated execution time of Cooley–Tukey
//! and SOI on Xeon and Xeon Phi, normalized to Cooley–Tukey on 32 Xeon
//! nodes, with the local-FFT / convolution / MPI component split.
//!
//! Also prints the §4 worked component times (`T_fft = 0.50 s`, ...).

use soifft_bench::{secs, Table};
use soifft_model::ClusterModel;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 3**: model-estimated execution time of Cooley–Tukey",
        &[],
    );
    let n = ((1u64 << 27) * 32) as f64;
    let xeon = ClusterModel::xeon(32);
    let phi = ClusterModel::xeon_phi(32);

    println!("Section 4 component times (32 nodes, N = 2^27 x 32):");
    let mut t = Table::new(&["component", "Xeon (s)", "Xeon Phi (s)", "paper (s)"]);
    t.row(&[
        "T_fft(N)".into(),
        secs(xeon.t_fft(n)),
        secs(phi.t_fft(n)),
        "0.50 / 0.16".into(),
    ]);
    t.row(&[
        "T_conv(N)".into(),
        secs(xeon.t_conv(n)),
        secs(phi.t_conv(n)),
        "0.64 / 0.21".into(),
    ]);
    t.row(&[
        "T_mpi(N)".into(),
        secs(xeon.t_mpi(n)),
        secs(phi.t_mpi(n)),
        "0.67".into(),
    ]);
    print!("{}", t.render());

    let base = xeon.ct_time(n).total();
    println!("\nFig 3: normalized execution time (CT on Xeon = 1.0):");
    let mut t = Table::new(&["config", "local FFT", "convolution", "MPI", "total"]);
    let mut add = |label: &str, b: soifft_model::Breakdown| {
        t.row(&[
            label.into(),
            format!("{:.3}", b.local_fft / base),
            format!("{:.3}", b.conv / base),
            format!("{:.3}", b.mpi / base),
            format!("{:.3}", b.total() / base),
        ]);
    };
    add("Cooley-Tukey / Xeon", xeon.ct_time(n));
    add("Cooley-Tukey / Xeon Phi", phi.ct_time(n));
    add("SOI / Xeon", xeon.soi_time(n));
    add("SOI / Xeon Phi", phi.soi_time(n));
    print!("{}", t.render());

    let soi_gain = xeon.soi_time(n).total() / phi.soi_time(n).total();
    let ct_gain = xeon.ct_time(n).total() / phi.ct_time(n).total();
    println!("\nXeon Phi speedup under SOI: {soi_gain:.2}x (paper: ~1.7x)");
    println!("Xeon Phi speedup under CT:  {ct_gain:.2}x (paper: ~1.14x)");
    println!("\n\"The additional computation introduced by SOI FFT is offset by the");
    println!("high compute capability of Xeon Phi ... with Cooley-Tukey the large");
    println!("communication time is the limiting factor.\"");
}
