//! Serving-shape throughput bench: `B` back-to-back transforms through one
//! planned workspace ([`soifft_core::SoiFft::forward_many`]) against the
//! same batch served by repeated fresh [`soifft_core::SoiFft::forward`]
//! calls — the steady-state zero-allocation claim, priced in transforms
//! per second, bytes allocated per transform (a counting global allocator
//! watches the whole process), and p50/p99 per-transform latency.
//!
//! Methodology: one cluster serves four windows in sequence — an
//! unmeasured process warmup (page tables, malloc arenas, plan cache),
//! a wall-clocked batch of fresh `forward()` calls, the same batch
//! through one `forward_many` (its internal workspace cold start is
//! charged to the batch — the serving shape owns its warmup), and
//! barrier-aligned per-call loops for the latency percentiles. Both modes
//! run the identical plan, inputs, and cluster.
//!
//! Prints a human-readable table on stdout (the nightly workflow captures
//! it as `artifacts/example_throughput.txt`) and writes machine-readable
//! `BENCH_5.json` (override the path with `SOIFFT_THROUGHPUT_JSON`).
//!
//! The default size (2²³ points) is deliberately past allocator-cache
//! territory: at tera-scale-shaped buffer sizes (tens of MB each) every
//! fresh allocation goes back to the OS on free, so the fresh-forward
//! baseline pays kernel page-zeroing on every call — exactly the cost a
//! planned workspace exists to avoid.
//!
//! Scaling knobs: `SOIFFT_THROUGHPUT_N` (points, default 2²³),
//! `SOIFFT_THROUGHPUT_P` (ranks, default 4), `SOIFFT_THROUGHPUT_B`
//! (batch size, default 5), `SOIFFT_THROUGHPUT_S` (segments per rank,
//! default 32), `SOIFFT_THROUGHPUT_W` (convolution width, default 8),
//! `SOIFFT_THROUGHPUT_REPS` (best-of repetitions per wall window,
//! default 3).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use soifft_bench::{check_cli, env_usize, signal, Table, BENCH_SCHEMA_VERSION};
use soifft_cluster::Cluster;
use soifft_core::accuracy::snr_db;
use soifft_core::pipeline::scatter_input;
use soifft_core::{Precision, Rational, SoiFft, SoiParams};
use soifft_num::c64;

/// Bytes requested from the heap, process-wide (alloc + realloc).
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] with a byte meter in front, so "bytes allocated per
/// transform" is a measurement, not an estimate.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One serving mode's scorecard.
struct Score {
    transforms_per_s: f64,
    bytes_per_transform: f64,
    p50_s: f64,
    p99_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    check_cli(
        "Serving-shape throughput bench: planned-workspace forward_many vs \
         fresh forward(), plus the mixed-precision ladder (BENCH_7).",
        &[
            ("SOIFFT_THROUGHPUT_N", "transform size (default 2^23)"),
            ("SOIFFT_THROUGHPUT_P", "ranks (default 4)"),
            ("SOIFFT_THROUGHPUT_B", "batch size (default 5)"),
            ("SOIFFT_THROUGHPUT_S", "segments per rank (default 32)"),
            ("SOIFFT_THROUGHPUT_W", "convolution width (default 8)"),
            ("SOIFFT_THROUGHPUT_REPS", "best-of repetitions (default 3)"),
            ("SOIFFT_THROUGHPUT_JSON", "BENCH_5.json output path"),
            ("SOIFFT_THROUGHPUT_JSON7", "BENCH_7.json output path"),
            ("SOIFFT_FORCE_SCALAR", "1 = disable the AVX2 kernels"),
        ],
    );
    let n = env_usize("SOIFFT_THROUGHPUT_N", 1 << 23);
    let procs = env_usize("SOIFFT_THROUGHPUT_P", 4);
    let batch = env_usize("SOIFFT_THROUGHPUT_B", 5);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: env_usize("SOIFFT_THROUGHPUT_S", 32),
        mu: Rational::new(2, 1),
        conv_width: env_usize("SOIFFT_THROUGHPUT_W", 8),
    };
    params.validate().expect("valid bench parameters");

    // One distinct input per batch slot, pre-scattered so staging stays
    // out of the timed region. The fused front end is the serving
    // configuration (one sweep fewer over the data, §5.3) and both modes
    // run it identically.
    let scattered: Vec<Vec<Vec<c64>>> = (0..batch)
        .map(|b| scatter_input(&signal(n, 42 + b as u64), procs))
        .collect();
    let fft = SoiFft::new(params).expect("plan").with_fused_segment_fft();

    // Baseline mode (internal): the parent process re-execs itself with
    // SOIFFT_FORCE_SCALAR=1 + this flag to measure the pre-SIMD f64
    // configuration — the seed this PR's BENCH_7 ladder is scored
    // against — inside a process whose kernel dispatch never saw AVX2.
    if std::env::var_os("SOIFFT_THROUGHPUT_BASELINE").is_some() {
        let reps = env_usize("SOIFFT_THROUGHPUT_REPS", 3);
        let walls = Cluster::run(procs, |comm| {
            let mine: Vec<&Vec<c64>> = scattered.iter().map(|s| &s[comm.rank()]).collect();
            let owned: Vec<Vec<c64>> = mine.iter().map(|x| (*x).clone()).collect();
            let mut ws = fft.make_workspace();
            let mut outs = vec![Vec::new(); owned.len()];
            fft.forward_many_into(comm, &owned, &mut ws, &mut outs);
            let mut wall = f64::INFINITY;
            for _ in 0..reps {
                comm.barrier();
                let t = Instant::now();
                fft.forward_many_into(comm, &owned, &mut ws, &mut outs);
                comm.barrier();
                wall = wall.min(t.elapsed().as_secs_f64());
            }
            std::hint::black_box(&outs);
            wall
        });
        let wall = walls.into_iter().next().expect("rank 0");
        println!("baseline_transforms_per_s={:.6}", batch as f64 / wall);
        return;
    }
    // The mixed-precision ladder shares the plan but swaps the back half:
    // half-width all-to-all payloads plus an f32 (or f32-transport /
    // f64-accumulate) recovery stage — ROADMAP item 2, scored as BENCH_7.
    let fft32 = SoiFft::new(params)
        .expect("plan")
        .with_fused_segment_fft()
        .with_precision(Precision::F32);
    let fft_split = SoiFft::new(params)
        .expect("plan")
        .with_fused_segment_fft()
        .with_precision(Precision::Split);

    let measured = Cluster::run(procs, |comm| {
        let mine: Vec<&Vec<c64>> = scattered.iter().map(|s| &s[comm.rank()]).collect();

        // Process warmup, unmeasured: faults in the malloc arenas and
        // page tables both modes will reuse, so neither measured window
        // pays one-time process costs.
        for x in mine.iter().take(2) {
            std::hint::black_box(fft.forward(comm, x));
        }

        // Wall windows, alternating and best-of-R so a transient noise
        // burst on a shared machine cannot sink one mode selectively.
        //
        // Fresh mode: every transform allocates its own workspace and
        // output. Throughput mode: the whole batch through
        // `forward_many_into` with a planned workspace and output ring
        // (the serving steady state: one warm batch has already sized
        // everything, subsequent batches recycle it all). Each window is
        // wall-clocked cluster-wide — the closing barrier puts every
        // rank's completion inside the clock.
        let owned: Vec<Vec<c64>> = mine.iter().map(|x| (*x).clone()).collect();
        let mut ws = fft.make_workspace();
        let mut outs = vec![Vec::new(); owned.len()];
        fft.forward_many_into(comm, &owned, &mut ws, &mut outs);

        let reps = env_usize("SOIFFT_THROUGHPUT_REPS", 3);
        let mut fresh_wall = f64::INFINITY;
        let mut many_wall = f64::INFINITY;
        let mut fresh_bytes = u64::MAX;
        let mut many_bytes = u64::MAX;
        for _ in 0..reps {
            comm.barrier();
            let bytes0 = HEAP_BYTES.load(Ordering::SeqCst);
            let t = Instant::now();
            for x in &mine {
                std::hint::black_box(fft.forward(comm, x));
            }
            comm.barrier();
            fresh_wall = fresh_wall.min(t.elapsed().as_secs_f64());
            fresh_bytes = fresh_bytes.min(HEAP_BYTES.load(Ordering::SeqCst) - bytes0);

            comm.barrier();
            let bytes1 = HEAP_BYTES.load(Ordering::SeqCst);
            let t = Instant::now();
            fft.forward_many_into(comm, &owned, &mut ws, &mut outs);
            comm.barrier();
            many_wall = many_wall.min(t.elapsed().as_secs_f64());
            many_bytes = many_bytes.min(HEAP_BYTES.load(Ordering::SeqCst) - bytes1);
        }
        std::hint::black_box(&outs);

        // Window 3 — per-call latencies, barrier-aligned so each sample
        // covers exactly one cluster-wide superstep: fresh first, then a
        // warm workspace.
        let mut fresh_lat = Vec::with_capacity(batch);
        for x in &mine {
            comm.barrier();
            let t = Instant::now();
            std::hint::black_box(fft.forward(comm, x));
            fresh_lat.push(t.elapsed().as_secs_f64());
        }
        // Reuse the already-warm workspace from window 2.
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        fft.forward_into(comm, mine[0], &mut ws, &mut y);
        let mut warm_lat = Vec::with_capacity(batch);
        for x in &mine {
            comm.barrier();
            let t = Instant::now();
            fft.forward_into(comm, x, &mut ws, &mut y);
            warm_lat.push(t.elapsed().as_secs_f64());
        }
        // Window 4 — the precision ladder (BENCH_7): the same batch
        // through the half-width exchange paths, against the f64 run
        // already timed in window 2. Each precision gets its own warmed
        // workspace; the f64 `outs` double as the accuracy oracle.
        let mut ladder = Vec::with_capacity(2);
        for low in [&fft32, &fft_split] {
            let mut ws_low = low.make_workspace();
            let mut outs_low = vec![Vec::new(); owned.len()];
            low.forward_many_into(comm, &owned, &mut ws_low, &mut outs_low);
            let mut wall = f64::INFINITY;
            for _ in 0..reps {
                comm.barrier();
                let t = Instant::now();
                low.forward_many_into(comm, &owned, &mut ws_low, &mut outs_low);
                comm.barrier();
                wall = wall.min(t.elapsed().as_secs_f64());
            }
            ladder.push((wall, snr_db(&outs_low[0], &outs[0])));
        }

        comm.barrier();
        (
            fresh_wall,
            fresh_bytes,
            many_wall,
            many_bytes,
            fresh_lat,
            warm_lat,
            ladder,
        )
    });

    let (fresh_wall, fresh_bytes, many_wall, many_bytes, mut fresh_lat, mut warm_lat, ladder) =
        measured.into_iter().next().expect("rank 0");
    let (f32_wall, f32_snr) = ladder[0];
    let (split_wall, split_snr) = ladder[1];
    fresh_lat.sort_by(f64::total_cmp);
    warm_lat.sort_by(f64::total_cmp);

    let fresh = Score {
        transforms_per_s: batch as f64 / fresh_wall,
        bytes_per_transform: fresh_bytes as f64 / batch as f64,
        p50_s: percentile(&fresh_lat, 0.50),
        p99_s: percentile(&fresh_lat, 0.99),
    };
    let many = Score {
        transforms_per_s: batch as f64 / many_wall,
        bytes_per_transform: many_bytes as f64 / batch as f64,
        p50_s: percentile(&warm_lat, 0.50),
        p99_s: percentile(&warm_lat, 0.99),
    };
    let speedup = many.transforms_per_s / fresh.transforms_per_s;

    let mut table = Table::new(&[
        "mode",
        "transforms/s",
        "bytes/transform",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let row = |t: &mut Table, name: &str, s: &Score| {
        t.row(&[
            name.into(),
            format!("{:.3}", s.transforms_per_s),
            format!("{:.0}", s.bytes_per_transform),
            format!("{:.2}", s.p50_s * 1e3),
            format!("{:.2}", s.p99_s * 1e3),
        ]);
    };
    row(&mut table, "fresh forward()", &fresh);
    row(&mut table, "forward_many", &many);

    println!(
        "Throughput (serving) mode: N = 2^{} = {n}, P = {procs}, batch = {batch}, \
         S = {s}, B = {w}, fused front end",
        n.ilog2(),
        s = params.segments_per_proc,
        w = params.conv_width,
    );
    println!("forward_many runs the batch through ONE planned workspace; fresh");
    println!("forward() re-allocates the working set per transform.\n");
    print!("{}", table.render());
    println!("\nforward_many speedup over fresh forward(): {speedup:.2}x");

    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"throughput\",\n  \"n\": {n},\n  \"procs\": {procs},\n  \"batch\": {batch},\n  \"segments_per_proc\": {s},\n  \"conv_width\": {w},\n  \"fresh_forward\": {{\n    \"transforms_per_s\": {ft:.6},\n    \"bytes_allocated_per_transform\": {fb:.0},\n    \"p50_latency_s\": {fp50:.6},\n    \"p99_latency_s\": {fp99:.6}\n  }},\n  \"forward_many\": {{\n    \"transforms_per_s\": {mt:.6},\n    \"bytes_allocated_per_transform\": {mb:.0},\n    \"p50_latency_s\": {mp50:.6},\n    \"p99_latency_s\": {mp99:.6}\n  }},\n  \"speedup\": {speedup:.4}\n}}\n",
        s = params.segments_per_proc,
        w = params.conv_width,
        ft = fresh.transforms_per_s,
        fb = fresh.bytes_per_transform,
        fp50 = fresh.p50_s,
        fp99 = fresh.p99_s,
        mt = many.transforms_per_s,
        mb = many.bytes_per_transform,
        mp50 = many.p50_s,
        mp99 = many.p99_s,
    );
    let path =
        std::env::var("SOIFFT_THROUGHPUT_JSON").unwrap_or_else(|_| "BENCH_5.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_5.json");
    eprintln!("wrote {path}");

    // BENCH_7 — the mixed-precision ladder against the f64 warm path,
    // with the accuracy each point paid for its speed (SNR vs the f64
    // oracle on the same inputs) and the kernel backend that served it.
    let f64_tps = batch as f64 / many_wall;
    let f32_tps = batch as f64 / f32_wall;
    let split_tps = batch as f64 / split_wall;

    // The seed-relative baseline: this repository before the SIMD +
    // mixed-precision work was scalar f64 end to end, so the ladder is
    // also scored against a child process running exactly that (scalar
    // dispatch is cached per process, hence the re-exec).
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("SOIFFT_THROUGHPUT_BASELINE", "1")
        .env("SOIFFT_FORCE_SCALAR", "1")
        .output()
        .expect("spawn scalar-f64 baseline run");
    assert!(
        out.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let scalar_f64_tps: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("baseline_transforms_per_s="))
        .expect("baseline_transforms_per_s in child output")
        .trim()
        .parse()
        .expect("parse baseline throughput");
    let mut ladder_table = Table::new(&[
        "precision",
        "transforms/s",
        "vs f64",
        "vs scalar f64",
        "SNR (dB)",
    ]);
    for (name, tps, snr) in [
        ("f64 scalar (seed)", scalar_f64_tps, f64::INFINITY),
        ("f64", f64_tps, f64::INFINITY),
        ("split (f32 wire)", split_tps, split_snr),
        ("f32", f32_tps, f32_snr),
    ] {
        ladder_table.row(&[
            name.into(),
            format!("{tps:.3}"),
            format!("{:.2}x", tps / f64_tps),
            format!("{:.2}x", tps / scalar_f64_tps),
            if snr.is_finite() {
                format!("{snr:.1}")
            } else {
                "oracle".into()
            },
        ]);
    }
    println!(
        "\nPrecision ladder (warm forward_many, {} kernels):",
        soifft_num::simd::kernel_backend()
    );
    print!("{}", ladder_table.render());

    let json7 = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"throughput_precision\",\n  \"n\": {n},\n  \"procs\": {procs},\n  \"batch\": {batch},\n  \"segments_per_proc\": {s},\n  \"conv_width\": {w},\n  \"kernel_backend\": \"{kb}\",\n  \"f64_scalar_baseline\": {{ \"transforms_per_s\": {scalar_f64_tps:.6} }},\n  \"f64\": {{ \"transforms_per_s\": {f64_tps:.6}, \"speedup_vs_scalar_f64\": {sf64b:.4} }},\n  \"f32\": {{ \"transforms_per_s\": {f32_tps:.6}, \"speedup_vs_f64\": {sf32:.4}, \"speedup_vs_scalar_f64\": {sf32b:.4}, \"snr_db_vs_f64\": {f32_snr:.2} }},\n  \"split\": {{ \"transforms_per_s\": {split_tps:.6}, \"speedup_vs_f64\": {ssplit:.4}, \"speedup_vs_scalar_f64\": {ssplitb:.4}, \"snr_db_vs_f64\": {split_snr:.2} }}\n}}\n",
        s = params.segments_per_proc,
        w = params.conv_width,
        kb = soifft_num::simd::kernel_backend(),
        sf64b = f64_tps / scalar_f64_tps,
        sf32 = f32_tps / f64_tps,
        sf32b = f32_tps / scalar_f64_tps,
        ssplit = split_tps / f64_tps,
        ssplitb = split_tps / scalar_f64_tps,
    );
    let path7 =
        std::env::var("SOIFFT_THROUGHPUT_JSON7").unwrap_or_else(|_| "BENCH_7.json".to_string());
    std::fs::write(&path7, json7).expect("write BENCH_7.json");
    eprintln!("wrote {path7}");
}
