//! Serving-shape throughput bench: `B` back-to-back transforms through one
//! planned workspace ([`soifft_core::SoiFft::forward_many`]) against the
//! same batch served by repeated fresh [`soifft_core::SoiFft::forward`]
//! calls — the steady-state zero-allocation claim, priced in transforms
//! per second, bytes allocated per transform (a counting global allocator
//! watches the whole process), and p50/p99 per-transform latency.
//!
//! Methodology: one cluster serves four windows in sequence — an
//! unmeasured process warmup (page tables, malloc arenas, plan cache),
//! a wall-clocked batch of fresh `forward()` calls, the same batch
//! through one `forward_many` (its internal workspace cold start is
//! charged to the batch — the serving shape owns its warmup), and
//! barrier-aligned per-call loops for the latency percentiles. Both modes
//! run the identical plan, inputs, and cluster.
//!
//! Prints a human-readable table on stdout (the nightly workflow captures
//! it as `artifacts/example_throughput.txt`) and writes machine-readable
//! `BENCH_5.json` (override the path with `SOIFFT_THROUGHPUT_JSON`).
//!
//! The default size (2²³ points) is deliberately past allocator-cache
//! territory: at tera-scale-shaped buffer sizes (tens of MB each) every
//! fresh allocation goes back to the OS on free, so the fresh-forward
//! baseline pays kernel page-zeroing on every call — exactly the cost a
//! planned workspace exists to avoid.
//!
//! Scaling knobs: `SOIFFT_THROUGHPUT_N` (points, default 2²³),
//! `SOIFFT_THROUGHPUT_P` (ranks, default 4), `SOIFFT_THROUGHPUT_B`
//! (batch size, default 5), `SOIFFT_THROUGHPUT_S` (segments per rank,
//! default 32), `SOIFFT_THROUGHPUT_W` (convolution width, default 8),
//! `SOIFFT_THROUGHPUT_REPS` (best-of repetitions per wall window,
//! default 3).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use soifft_bench::{env_usize, signal, Table, BENCH_SCHEMA_VERSION};
use soifft_cluster::Cluster;
use soifft_core::pipeline::scatter_input;
use soifft_core::{Rational, SoiFft, SoiParams};
use soifft_num::c64;

/// Bytes requested from the heap, process-wide (alloc + realloc).
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] with a byte meter in front, so "bytes allocated per
/// transform" is a measurement, not an estimate.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One serving mode's scorecard.
struct Score {
    transforms_per_s: f64,
    bytes_per_transform: f64,
    p50_s: f64,
    p99_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let n = env_usize("SOIFFT_THROUGHPUT_N", 1 << 23);
    let procs = env_usize("SOIFFT_THROUGHPUT_P", 4);
    let batch = env_usize("SOIFFT_THROUGHPUT_B", 5);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: env_usize("SOIFFT_THROUGHPUT_S", 32),
        mu: Rational::new(2, 1),
        conv_width: env_usize("SOIFFT_THROUGHPUT_W", 8),
    };
    params.validate().expect("valid bench parameters");

    // One distinct input per batch slot, pre-scattered so staging stays
    // out of the timed region. The fused front end is the serving
    // configuration (one sweep fewer over the data, §5.3) and both modes
    // run it identically.
    let scattered: Vec<Vec<Vec<c64>>> = (0..batch)
        .map(|b| scatter_input(&signal(n, 42 + b as u64), procs))
        .collect();
    let fft = SoiFft::new(params).expect("plan").with_fused_segment_fft();

    let measured = Cluster::run(procs, |comm| {
        let mine: Vec<&Vec<c64>> = scattered.iter().map(|s| &s[comm.rank()]).collect();

        // Process warmup, unmeasured: faults in the malloc arenas and
        // page tables both modes will reuse, so neither measured window
        // pays one-time process costs.
        for x in mine.iter().take(2) {
            std::hint::black_box(fft.forward(comm, x));
        }

        // Wall windows, alternating and best-of-R so a transient noise
        // burst on a shared machine cannot sink one mode selectively.
        //
        // Fresh mode: every transform allocates its own workspace and
        // output. Throughput mode: the whole batch through
        // `forward_many_into` with a planned workspace and output ring
        // (the serving steady state: one warm batch has already sized
        // everything, subsequent batches recycle it all). Each window is
        // wall-clocked cluster-wide — the closing barrier puts every
        // rank's completion inside the clock.
        let owned: Vec<Vec<c64>> = mine.iter().map(|x| (*x).clone()).collect();
        let mut ws = fft.make_workspace();
        let mut outs = vec![Vec::new(); owned.len()];
        fft.forward_many_into(comm, &owned, &mut ws, &mut outs);

        let reps = env_usize("SOIFFT_THROUGHPUT_REPS", 3);
        let mut fresh_wall = f64::INFINITY;
        let mut many_wall = f64::INFINITY;
        let mut fresh_bytes = u64::MAX;
        let mut many_bytes = u64::MAX;
        for _ in 0..reps {
            comm.barrier();
            let bytes0 = HEAP_BYTES.load(Ordering::SeqCst);
            let t = Instant::now();
            for x in &mine {
                std::hint::black_box(fft.forward(comm, x));
            }
            comm.barrier();
            fresh_wall = fresh_wall.min(t.elapsed().as_secs_f64());
            fresh_bytes = fresh_bytes.min(HEAP_BYTES.load(Ordering::SeqCst) - bytes0);

            comm.barrier();
            let bytes1 = HEAP_BYTES.load(Ordering::SeqCst);
            let t = Instant::now();
            fft.forward_many_into(comm, &owned, &mut ws, &mut outs);
            comm.barrier();
            many_wall = many_wall.min(t.elapsed().as_secs_f64());
            many_bytes = many_bytes.min(HEAP_BYTES.load(Ordering::SeqCst) - bytes1);
        }
        std::hint::black_box(&outs);

        // Window 3 — per-call latencies, barrier-aligned so each sample
        // covers exactly one cluster-wide superstep: fresh first, then a
        // warm workspace.
        let mut fresh_lat = Vec::with_capacity(batch);
        for x in &mine {
            comm.barrier();
            let t = Instant::now();
            std::hint::black_box(fft.forward(comm, x));
            fresh_lat.push(t.elapsed().as_secs_f64());
        }
        // Reuse the already-warm workspace from window 2.
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        fft.forward_into(comm, mine[0], &mut ws, &mut y);
        let mut warm_lat = Vec::with_capacity(batch);
        for x in &mine {
            comm.barrier();
            let t = Instant::now();
            fft.forward_into(comm, x, &mut ws, &mut y);
            warm_lat.push(t.elapsed().as_secs_f64());
        }
        comm.barrier();
        (
            fresh_wall,
            fresh_bytes,
            many_wall,
            many_bytes,
            fresh_lat,
            warm_lat,
        )
    });

    let (fresh_wall, fresh_bytes, many_wall, many_bytes, mut fresh_lat, mut warm_lat) =
        measured.into_iter().next().expect("rank 0");
    fresh_lat.sort_by(f64::total_cmp);
    warm_lat.sort_by(f64::total_cmp);

    let fresh = Score {
        transforms_per_s: batch as f64 / fresh_wall,
        bytes_per_transform: fresh_bytes as f64 / batch as f64,
        p50_s: percentile(&fresh_lat, 0.50),
        p99_s: percentile(&fresh_lat, 0.99),
    };
    let many = Score {
        transforms_per_s: batch as f64 / many_wall,
        bytes_per_transform: many_bytes as f64 / batch as f64,
        p50_s: percentile(&warm_lat, 0.50),
        p99_s: percentile(&warm_lat, 0.99),
    };
    let speedup = many.transforms_per_s / fresh.transforms_per_s;

    let mut table = Table::new(&[
        "mode",
        "transforms/s",
        "bytes/transform",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let row = |t: &mut Table, name: &str, s: &Score| {
        t.row(&[
            name.into(),
            format!("{:.3}", s.transforms_per_s),
            format!("{:.0}", s.bytes_per_transform),
            format!("{:.2}", s.p50_s * 1e3),
            format!("{:.2}", s.p99_s * 1e3),
        ]);
    };
    row(&mut table, "fresh forward()", &fresh);
    row(&mut table, "forward_many", &many);

    println!(
        "Throughput (serving) mode: N = 2^{} = {n}, P = {procs}, batch = {batch}, \
         S = {s}, B = {w}, fused front end",
        n.ilog2(),
        s = params.segments_per_proc,
        w = params.conv_width,
    );
    println!("forward_many runs the batch through ONE planned workspace; fresh");
    println!("forward() re-allocates the working set per transform.\n");
    print!("{}", table.render());
    println!("\nforward_many speedup over fresh forward(): {speedup:.2}x");

    let json = format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"throughput\",\n  \"n\": {n},\n  \"procs\": {procs},\n  \"batch\": {batch},\n  \"segments_per_proc\": {s},\n  \"conv_width\": {w},\n  \"fresh_forward\": {{\n    \"transforms_per_s\": {ft:.6},\n    \"bytes_allocated_per_transform\": {fb:.0},\n    \"p50_latency_s\": {fp50:.6},\n    \"p99_latency_s\": {fp99:.6}\n  }},\n  \"forward_many\": {{\n    \"transforms_per_s\": {mt:.6},\n    \"bytes_allocated_per_transform\": {mb:.0},\n    \"p50_latency_s\": {mp50:.6},\n    \"p99_latency_s\": {mp99:.6}\n  }},\n  \"speedup\": {speedup:.4}\n}}\n",
        s = params.segments_per_proc,
        w = params.conv_width,
        ft = fresh.transforms_per_s,
        fb = fresh.bytes_per_transform,
        fp50 = fresh.p50_s,
        fp99 = fresh.p99_s,
        mt = many.transforms_per_s,
        mb = many.bytes_per_transform,
        mp50 = many.p50_s,
        mp99 = many.p99_s,
    );
    let path =
        std::env::var("SOIFFT_THROUGHPUT_JSON").unwrap_or_else(|_| "BENCH_5.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_5.json");
    eprintln!("wrote {path}");
}
