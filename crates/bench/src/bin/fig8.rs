//! Regenerates **Fig 8**: weak-scaling performance (TFLOPS, ~2²⁷ points
//! per node) of CT-Xeon, CT-Phi (projected), SOI-Xeon and SOI-Phi at 4-512
//! nodes, plus the Phi/Xeon speedup lines — from the calibrated analytic
//! model (paper scale), followed by a *functional* cross-check on the
//! simulated cluster at reduced scale.

use soifft_bench::{env_usize, signal, time, Table};
use soifft_cluster::Cluster;
use soifft_core::{Rational, SoiFft, SoiParams};
use soifft_ct::DistributedCtFft;
use soifft_model::{weak_scaling, ClusterModel};
use soifft_num::error::rel_l2;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 8**: weak-scaling performance (TFLOPS, ~2²⁷ points",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    model_sweep();
    functional_crosscheck();
}

fn model_sweep() {
    let per_node = (1u64 << 27) as f64;
    let nodes = [4u32, 8, 16, 32, 64, 128, 256, 512];
    println!("Fig 8 (model, paper scale): weak scaling, 2^27 points/node");
    let mut t = Table::new(&[
        "nodes",
        "CT Xeon (TF)",
        "CT Phi (TF)",
        "SOI Xeon (TF)",
        "SOI Phi (TF)",
        "CT speedup",
        "SOI speedup",
    ]);
    for pt in weak_scaling(&nodes, per_node) {
        t.row(&[
            pt.nodes.to_string(),
            format!("{:.2}", pt.ct_xeon),
            format!("{:.2}", pt.ct_phi),
            format!("{:.2}", pt.soi_xeon),
            format!("{:.2}", pt.soi_phi),
            format!("{:.2}", pt.ct_speedup()),
            format!("{:.2}", pt.soi_speedup()),
        ]);
    }
    print!("{}", t.render());
    println!("\nPaper landmarks: >1 TFLOPS at 64 nodes; 6.7 TFLOPS at 512 nodes;");
    println!("SOI speedup 1.5-2.0x, CT speedup ~1.1x; ~5x per-node vs K computer.");
    let at512 = weak_scaling(&[512], per_node)[0].soi_phi;
    let k_per_node = 206.0 / 81944.0;
    println!(
        "Model at 512: {:.2} TFLOPS -> {:.1}x K-computer per-node performance\n",
        at512,
        at512 / 512.0 / k_per_node
    );
}

/// Small-scale functional run: both algorithms on the simulated cluster,
/// verified against the reference FFT, with their wall-clock and
/// communication volumes (bytes are what the model's T_mpi consumes).
fn functional_crosscheck() {
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 16);
    let x = signal(n, 7);
    let per = n / procs;
    let inputs: Vec<_> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();
    let mut want = x.clone();
    soifft_fft::Plan::new(n).forward(&mut want);

    println!("Functional cross-check (simulated cluster, N = {n}, P = {procs}):");
    let mut t = Table::new(&["algorithm", "wall (s)", "bytes/rank (a2a)", "rel_l2 error"]);

    let ct = DistributedCtFft::new(n, procs).expect("plannable");
    let (ct_out, ct_s) = time(|| {
        Cluster::run(procs, |comm| {
            let y = ct.forward(comm, &inputs[comm.rank()]);
            (y, comm.stats().bytes_in("all-to-all"))
        })
    });
    let got: Vec<_> = ct_out.iter().flat_map(|(y, _)| y.iter().copied()).collect();
    t.row(&[
        "Cooley-Tukey".into(),
        format!("{ct_s:.3}"),
        ct_out[0].1.to_string(),
        format!("{:.2e}", rel_l2(&got, &want)),
    ]);

    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let soi = SoiFft::new(params).expect("plannable");
    let (soi_out, soi_s) = time(|| {
        Cluster::run(procs, |comm| {
            let y = soi.forward(comm, &inputs[comm.rank()]);
            (y, comm.stats().bytes_in("all-to-all"))
        })
    });
    let got: Vec<_> = soi_out
        .iter()
        .flat_map(|(y, _)| y.iter().copied())
        .collect();
    t.row(&[
        "SOI".into(),
        format!("{soi_s:.3}"),
        soi_out[0].1.to_string(),
        format!("{:.2e}", rel_l2(&got, &want)),
    ]);
    print!("{}", t.render());

    let ct_bytes = ct_out[0].1 as f64;
    let soi_bytes = soi_out[0].1 as f64;
    println!(
        "\nAll-to-all volume ratio CT/SOI = {:.2} (ideal 3/mu = {:.2}: three\nexchanges of N vs one exchange of muN)",
        ct_bytes / soi_bytes,
        3.0 / 2.0 // mu = 2 in this small config
    );
    let _ = ClusterModel::xeon(procs as u32); // model available for deeper comparisons
}
