//! Regenerates **Fig 1** structurally: runs the distributed Cooley–Tukey
//! FFT on a simulated 4-rank cluster and prints each rank's phase ledger,
//! showing the three all-to-all exchanges of the conventional
//! factorization.

use soifft_bench::{env_usize, signal, Table};
use soifft_cluster::Cluster;
use soifft_ct::DistributedCtFft;
use soifft_fft::Plan;
use soifft_num::error::rel_linf;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 1** structurally: runs the distributed Cooley–Tukey",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 14);
    let x = signal(n, 1);
    let per = n / procs;
    let inputs: Vec<_> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    let fft = DistributedCtFft::new(n, procs).expect("plannable size");
    let results = Cluster::run(procs, |comm| {
        let out = fft.forward(comm, &inputs[comm.rank()]);
        (out, comm.stats().clone())
    });

    // Verify against the node-local library.
    let got: Vec<_> = results
        .iter()
        .flat_map(|(o, _)| o.iter().copied())
        .collect();
    let mut want = x.clone();
    Plan::new(n).forward(&mut want);
    let err = rel_linf(&got, &want);

    println!("Fig 1: Cooley-Tukey factorization — communication structure");
    println!("N = {n}, P = {procs}, verified vs reference FFT: rel_linf = {err:.2e}\n");
    let mut t = Table::new(&["rank", "phase sequence", "all-to-alls", "bytes sent"]);
    for (rank, (_, stats)) in results.iter().enumerate() {
        let seq: Vec<&str> = stats.records().iter().map(|r| r.name).collect();
        t.row(&[
            rank.to_string(),
            seq.join(" -> "),
            stats.count_of("all-to-all").to_string(),
            stats.total_bytes_sent().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nPaper: \"this method fundamentally requires three all-to-all");
    println!("communication steps\" — confirmed by the trace above.");
    assert!(results.iter().all(|(_, s)| s.count_of("all-to-all") == 3));
}
