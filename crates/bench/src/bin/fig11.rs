//! Regenerates **Fig 11**: the impact of the §5.3 convolution optimizations
//! (baseline → loop interchange → circular-buffer staging) on
//! convolution-and-oversampling time as the node count grows.
//!
//! The scaling mechanism being tested: the baseline's working set is the
//! whole `n_µ·B·L` tap matrix, which grows with the total segment count `L`
//! (∝ nodes) until it overflows the cache; the interchanged form touches
//! `n_µ·B` taps per column regardless of scale; buffering additionally
//! converts the interchanged form's stride-`L` input walks (pathological
//! when `L` is a power of two) into contiguous ones.
//!
//! We run ONE rank's worth of convolution for simulated cluster sizes 4-64
//! at fixed per-rank input (weak scaling, like the paper's x-axis).

use soifft_bench::{best_of, env_usize, signal, Table};
use soifft_core::{conv, ConvStrategy, Rational, SoiParams, Window, WindowKind};
use soifft_num::c64;
use soifft_par::Pool;
use soifft_tune::{Candidate, TuneRequest, Tuner};

/// The strategy the tuner's Estimate tier would rank first for this
/// shape, holding everything but [`ConvStrategy`] fixed. Also the grid
/// drift check: the tuner's candidate space must cover exactly the
/// strategies this figure sweeps — if [`ConvStrategy::ALL`] grows a
/// variant the tuner's enumeration (or this figure) doesn't know, the
/// regenerator fails loudly instead of silently under-reporting.
fn tuner_pick(params: SoiParams) -> ConvStrategy {
    let tuner = Tuner::in_memory();
    let mut req = TuneRequest::new(params.n, params.procs);
    req.base = Some(params);
    req.explore_shapes = false;
    let candidates = tuner.enumerate(&req).expect("fig11 shape enumerates");
    let tuner_grid: std::collections::BTreeSet<&str> = candidates
        .iter()
        .filter(|c| !c.exec.fused)
        .map(|c| c.exec.strategy.label())
        .collect();
    let figure_grid: std::collections::BTreeSet<&str> = ConvStrategy::ALL
        .into_iter()
        .map(ConvStrategy::label)
        .collect();
    assert_eq!(
        tuner_grid, figure_grid,
        "strategy grid drift: tuner enumerates {tuner_grid:?} but Fig 11 sweeps {figure_grid:?}"
    );
    let pick: &Candidate = candidates
        .iter()
        .filter(|c| !c.exec.fused)
        .min_by(|a, b| {
            let (sa, sb) = (
                tuner.prior_seconds(a).expect("prior"),
                tuner.prior_seconds(b).expect("prior"),
            );
            sa.total_cmp(&sb)
        })
        .expect("non-empty candidate space");
    pick.exec.strategy
}

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 11**: the impact of the §5.3 convolution optimizations",
        &[
            ("SOIFFT_B", "convolution width"),
            ("SOIFFT_FIG11_MAX_NODES", "largest node count swept"),
            ("SOIFFT_FIG11_PER_RANK", "points per rank"),
            ("SOIFFT_REPS", "best-of repetitions"),
        ],
    );
    // Default divisible by 7 so the paper's µ = 8/7 validates.
    let per_rank = env_usize("SOIFFT_FIG11_PER_RANK", 7 * (1 << 13));
    let reps = env_usize("SOIFFT_REPS", 3);
    let b = env_usize("SOIFFT_B", 72);

    println!("Fig 11: convolution optimization impact vs simulated node count");
    println!("(per-rank input = {per_rank} elements, B = {b}, mu = 8/7, 1 segment/rank)\n");
    let mut t = Table::new(&[
        "nodes",
        "baseline (s)",
        "interchange (s)",
        "buffering (s)",
        "baseline WS",
        "interchange WS",
        "tuner pick",
        "measured best",
    ]);

    let max_nodes = env_usize("SOIFFT_FIG11_MAX_NODES", 64);
    for nodes in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        if nodes > max_nodes {
            break;
        }
        // One segment per rank: L = nodes, the paper's Fig 11 setting.
        let params = SoiParams {
            n: per_rank * nodes,
            procs: nodes,
            segments_per_proc: 1,
            mu: Rational::new(8, 7),
            conv_width: b,
        };
        params
            .validate()
            .unwrap_or_else(|e| panic!("nodes={nodes}: {e} (adjust SOIFFT_FIG11_PER_RANK)"));
        let window = Window::new(WindowKind::GaussianSinc, &params);
        let input = signal(params.per_rank() + params.ghost_len(), nodes as u64);
        let mut out = vec![c64::ZERO; params.blocks_per_rank() * params.total_segments()];
        let pool = Pool::serial();
        let mut row = vec![nodes.to_string()];
        let mut measured: Vec<(f64, ConvStrategy)> = Vec::new();
        for strategy in ConvStrategy::ALL {
            let secs = best_of(reps, || {
                conv::convolve(&params, &window, strategy, &input, &mut out, &pool)
            });
            measured.push((secs, strategy));
            row.push(format!("{secs:.4}"));
        }
        // Tap working set per chunk: the paper's Fig 6 argument. Baseline
        // touches all n_µ·B·L distinct taps every chunk; interchange only
        // one column's n_µ·B.
        let n_mu = params.mu.num();
        let ws_base = n_mu * b * params.total_segments() * 16;
        let ws_inter = n_mu * b * 16;
        row.push(format!("{} KB", ws_base / 1024));
        row.push(format!("{} KB", ws_inter.max(1024) / 1024));
        row.push(tuner_pick(params).label().to_string());
        row.push(
            measured
                .iter()
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three strategies measured")
                .1
                .label()
                .to_string(),
        );
        t.row(&row);
    }
    print!("{}", t.render());
    println!("\nShapes to compare with the paper's Fig 11:");
    println!("* baseline working set grows ∝ nodes and eventually spills the");
    println!("  LLC (on the paper's Phi: 512 KB private L2 ⇒ spill at ~8 nodes");
    println!("  with B=72); interchange's stays constant,");
    println!("* buffering converts the interchange's stride-L input walks to");
    println!("  contiguous ones (matters when L is a large power of two).");
    println!("On hosts whose LLC exceeds the baseline working set at every node");
    println!("count (the WS columns above tell you), the wall-clock separation");
    println!("does not manifest — the working-set mechanism is what scales.");
}
