//! Accuracy characterization (DESIGN.md ablation §6.4): measured SOI
//! transform error and the a-priori alias bound across window families,
//! convolution widths `B` and oversampling factors `µ`.
//!
//! The paper keeps accuracy implicit ("comparable to MKL", via the SC'12
//! framework); this bench makes the reproduction's accuracy story explicit
//! and testable: Gaussian/Kaiser tapers reach ~1e−5 at the paper's
//! `(µ = 8/7, B = 72)` point, the optimal prolate taper ~1e−9.

use soifft_bench::{signal, Table};
use soifft_core::accuracy::alias_bound;
use soifft_core::{Rational, SoiFftLocal, SoiParams, Window, WindowKind};
use soifft_fft::Plan;
use soifft_num::error::rel_l2;

fn main() {
    soifft_bench::check_cli(
        "Accuracy characterization (DESIGN.md ablation §6.4): measured SOI",
        &[],
    );
    let l = 8usize;

    println!("SOI accuracy characterization (single node, L = {l}, N per config below)");
    let mut t = Table::new(&["window", "mu", "B", "N", "alias bound", "measured rel_l2"]);

    let configs: Vec<(Rational, usize, usize)> = vec![
        // (µ, B, M) — M chosen divisible by d_µ.
        (Rational::new(8, 7), 36, 7 * (1 << 7)),
        (Rational::new(8, 7), 72, 7 * (1 << 7)),
        (Rational::new(5, 4), 72, 1 << 9),
        (Rational::new(2, 1), 16, 1 << 9),
        (Rational::new(2, 1), 24, 1 << 9),
    ];

    for kind in [
        WindowKind::GaussianSinc,
        WindowKind::KaiserSinc,
        WindowKind::ProlateSinc,
    ] {
        for &(mu, b, m) in &configs {
            let n = m * l;
            let params = SoiParams {
                n,
                procs: 1,
                segments_per_proc: l,
                mu,
                conv_width: b,
            };
            if params.validate().is_err() {
                continue;
            }
            let window = Window::new(kind, &params);
            let bound = alias_bound(&window, &params, 9, 2);
            let soi = SoiFftLocal::from_params(params, kind).expect("valid");
            let x = signal(n, 99);
            let got = soi.forward(&x);
            let mut want = x;
            Plan::new(n).forward(&mut want);
            let measured = rel_l2(&got, &want);
            t.row(&[
                format!("{kind:?}"),
                mu.to_string(),
                b.to_string(),
                n.to_string(),
                format!("{bound:.2e}"),
                format!("{measured:.2e}"),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nReading guide: measured error tracks the alias bound (within ~1");
    println!("order); widening B or µ buys exponential accuracy; the prolate");
    println!("taper is the strongest at every design point.");
}
