//! Regenerates **Fig 9**: execution-time breakdown of the SOI algorithm
//! (local FFT / convolution / exposed MPI) versus node count, on Xeon and
//! Xeon Phi — from the calibrated model with the paper's 8-or-2
//! segments-per-process overlap rule — plus the functional per-phase
//! ledger from a simulated-cluster run.

use soifft_bench::{env_usize, signal, Table};
use soifft_cluster::Cluster;
use soifft_core::{Rational, SimSpec, SoiFft, SoiParams};
use soifft_model::ClusterModel;

fn main() {
    soifft_bench::check_cli(
        "Regenerates **Fig 9**: execution-time breakdown of the SOI algorithm",
        &[
            ("SOIFFT_N", "transform size"),
            ("SOIFFT_PROCS", "simulated ranks"),
        ],
    );
    model_breakdown();
    functional_breakdown();
    virtual_time_breakdown();
}

/// Converts a [`ClusterModel`] into per-rank virtual-time rates.
fn sim_spec_for(model: &ClusterModel) -> SimSpec {
    SimSpec {
        fft_flops_per_s: model.eff.fft * model.machine.peak_gflops * 1e9,
        conv_flops_per_s: model.eff.conv * model.machine.peak_gflops * 1e9,
        net_bytes_per_s: model.network.per_node_gib_s
            * (1u64 << 30) as f64
            * model.network.efficiency(model.nodes),
        net_latency_s: 0.0,
    }
}

fn model_breakdown() {
    let per_node = (1u64 << 27) as f64;
    println!("Fig 9 (model, paper scale): SOI execution-time breakdown (seconds)");
    let mut t = Table::new(&[
        "nodes",
        "machine",
        "local FFT",
        "convolution",
        "exposed MPI",
        "total",
    ]);
    for &p in &[4u32, 8, 16, 32, 64, 128, 256, 512] {
        let n = per_node * p as f64;
        // Paper §6.1: 8 segments/process for <=128 nodes, 2 for >=512.
        let segments = if p <= 128 { 8 } else { 2 };
        for (label, model) in [
            ("Xeon", ClusterModel::xeon(p)),
            ("Phi", ClusterModel::xeon_phi(p)),
        ] {
            let b = model.soi_time_overlapped(n, segments);
            t.row(&[
                p.to_string(),
                label.into(),
                format!("{:.3}", b.local_fft),
                format!("{:.3}", b.conv),
                format!("{:.3}", b.mpi),
                format!("{:.3}", b.total()),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nShapes to compare with the paper's Fig 9:");
    println!("* convolution time flat across node counts (loop-interchange keeps");
    println!("  the working set constant),");
    println!("* exposed MPI slowly grows with node count (interconnect eta(P)),");
    println!("* Phi compute bars ~3x shorter; exposed MPI larger on Phi because");
    println!("  faster compute hides less of it.\n");
}

fn functional_breakdown() {
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 16);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let x = signal(n, 3);
    let per = params.per_rank();
    let inputs: Vec<_> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();
    let fft = SoiFft::new(params).expect("plannable");
    let stats = Cluster::run(procs, |comm| {
        fft.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });

    println!("Functional per-phase ledger (N = {n}, P = {procs}, seconds):");
    let mut t = Table::new(&[
        "rank",
        "ghost",
        "convolution",
        "segment-fft",
        "all-to-all",
        "local-fft",
    ]);
    for (rank, s) in stats.iter().enumerate() {
        t.row(&[
            rank.to_string(),
            format!("{:.4}", s.seconds_in("ghost")),
            format!("{:.4}", s.seconds_in("convolution")),
            format!("{:.4}", s.seconds_in("segment-fft")),
            format!("{:.4}", s.seconds_in("all-to-all")),
            format!("{:.4}", s.seconds_in("local-fft")),
        ]);
    }
    print!("{}", t.render());
}

/// The functional/model bridge: run the REAL pipeline (small N) with
/// virtual-time rates for the paper's machines, and print the breakdown in
/// *simulated* seconds — this is where Fig 9's shape appears from an
/// actual execution rather than closed-form totals.
fn virtual_time_breakdown() {
    let procs = env_usize("SOIFFT_PROCS", 4);
    let n = env_usize("SOIFFT_N", 1 << 16);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let x = signal(n, 5);
    let per = params.per_rank();
    let inputs: Vec<_> = (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect();

    println!("\nVirtual-time breakdown of the functional run (simulated seconds,");
    println!("rank 0, at each machine's §4 rates — compare component ratios with");
    println!("the model table above):");
    let mut t = Table::new(&["machine", "convolution", "segment+local FFT", "all-to-all"]);
    for (label, model) in [
        ("Xeon", ClusterModel::xeon(procs as u32)),
        ("Xeon Phi", ClusterModel::xeon_phi(procs as u32)),
    ] {
        let fft = SoiFft::new(params)
            .expect("plannable")
            .with_sim(sim_spec_for(&model));
        let stats = Cluster::run(procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        });
        let s = &stats[0];
        t.row(&[
            label.into(),
            format!("{:.2e}", s.sim_seconds_in("convolution")),
            format!(
                "{:.2e}",
                s.sim_seconds_in("segment-fft") + s.sim_seconds_in("local-fft")
            ),
            format!("{:.2e}", s.sim_seconds_in("all-to-all")),
        ]);
        println!("\n{label} virtual-time Gantt (Fig 12 style):");
        print!(
            "{}",
            soifft_bench::gantt(&stats, 64, |r| r.sim_seconds.unwrap_or(0.0))
        );
    }
    print!("{}", t.render());
    println!("\nPhi compute components ~3.1x smaller, communication identical —");
    println!("the Fig 9 contrast, emerging from the functional pipeline.");
}
