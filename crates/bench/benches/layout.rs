//! Criterion bench behind §5.2.4: data-layout and transposition kernels —
//! AoS↔SoA conversion (blocked vs simple) and the cache-blocked transpose
//! vs the naive one.

use criterion::{criterion_group, criterion_main, Criterion};
use soifft_bench::signal;
use soifft_fft::{Plan, PlanarFft};
use soifft_num::c64;
use soifft_num::soa::{deinterleave_blocked, SoaComplex};
use soifft_num::transpose::{transpose, transpose_naive};

fn bench_layout(c: &mut Criterion) {
    let n = 1 << 16;
    let aos = signal(n, 31);
    let mut g = c.benchmark_group("layout");
    g.sample_size(20);

    let mut re = vec![0.0; n];
    let mut im = vec![0.0; n];
    g.bench_function("deinterleave_simple", |b| {
        b.iter(|| {
            let s = SoaComplex::from_aos(&aos);
            criterion::black_box(s.len())
        });
    });
    g.bench_function("deinterleave_blocked", |b| {
        b.iter(|| deinterleave_blocked(&aos, &mut re, &mut im, 512));
    });
    g.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let (rows, cols) = (512usize, 512usize);
    let src = signal(rows * cols, 41);
    let mut dst = vec![c64::ZERO; rows * cols];
    let mut g = c.benchmark_group("transpose");
    g.sample_size(20);
    g.bench_function("naive", |b| {
        b.iter(|| transpose_naive(&src, &mut dst, rows, cols));
    });
    g.bench_function("blocked_8x8", |b| {
        b.iter(|| transpose(&src, &mut dst, rows, cols));
    });
    g.finish();
}

/// §5.2.4's actual claim: butterflies on planar (SoA) data vectorize
/// without shuffles. Compare the same radix-2-class transform in both
/// layouts.
fn bench_fft_layouts(c: &mut Criterion) {
    let n = 1 << 14;
    let aos = signal(n, 51);
    let mut g = c.benchmark_group("fft_layout");
    g.sample_size(10);

    let plan = Plan::new(n);
    let mut data = aos.clone();
    let mut scratch = plan.make_scratch();
    g.bench_function("interleaved_aos", |b| {
        b.iter(|| {
            data.copy_from_slice(&aos);
            plan.forward_with_scratch(&mut data, &mut scratch);
        });
    });

    let planar = PlanarFft::new(n);
    let soa0 = SoaComplex::from_aos(&aos);
    let mut soa = soa0.clone();
    let mut sre = vec![0.0; n];
    let mut sim = vec![0.0; n];
    g.bench_function("planar_soa", |b| {
        b.iter(|| {
            soa.clone_from(&soa0);
            let (re, im) = soa.parts_mut();
            planar.forward(re, im, &mut sre, &mut sim);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_layout, bench_transpose, bench_fft_layouts);
criterion_main!(benches);
