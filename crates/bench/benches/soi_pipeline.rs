//! Criterion bench behind Figs 8/9 (functional side): end-to-end SOI vs
//! Cooley–Tukey on the simulated cluster, plus the ablation of the §6.1
//! segment-overlap exchange plans.

use criterion::{criterion_group, criterion_main, Criterion};
use soifft_bench::signal;
use soifft_cluster::Cluster;
use soifft_core::pipeline::ExchangePlan;
use soifft_core::{Rational, SoiFft, SoiParams};
use soifft_ct::DistributedCtFft;
use soifft_num::c64;

const N: usize = 1 << 14;
const PROCS: usize = 4;

fn inputs() -> Vec<Vec<c64>> {
    let x = signal(N, 23);
    let per = N / PROCS;
    (0..PROCS)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect()
}

fn params() -> SoiParams {
    SoiParams {
        n: N,
        procs: PROCS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 24,
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let ins = inputs();
    let mut g = c.benchmark_group("distributed");
    g.sample_size(10);

    let soi = SoiFft::new(params()).expect("plannable");
    g.bench_function("soi", |b| {
        b.iter(|| Cluster::run(PROCS, |comm| soi.forward(comm, &ins[comm.rank()])));
    });

    let ct = DistributedCtFft::new(N, PROCS).expect("plannable");
    g.bench_function("cooley_tukey", |b| {
        b.iter(|| Cluster::run(PROCS, |comm| ct.forward(comm, &ins[comm.rank()])));
    });
    g.finish();
}

fn bench_exchange_plans(c: &mut Criterion) {
    let ins = inputs();
    let mut g = c.benchmark_group("exchange_plan");
    g.sample_size(10);
    for (label, plan) in [
        ("monolithic", ExchangePlan::Monolithic),
        ("chunked_1k", ExchangePlan::Chunked(1024)),
        ("per_segment", ExchangePlan::PerSegment),
    ] {
        let soi = SoiFft::new(params())
            .expect("plannable")
            .with_exchange(plan);
        g.bench_function(label, |b| {
            b.iter(|| Cluster::run(PROCS, |comm| soi.forward(comm, &ins[comm.rank()])));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_exchange_plans);
criterion_main!(benches);
