//! Plan-time cost: window construction across taper families and demod
//! modes (Gaussian's closed-form demod vs the numeric transform the
//! Kaiser/prolate tapers require, plus the prolate's eigensolve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soifft_core::window::DemodMode;
use soifft_core::{Rational, SoiParams, Window, WindowKind};

fn params() -> SoiParams {
    SoiParams {
        n: 7 * (1 << 12) * 8,
        procs: 8,
        segments_per_proc: 1,
        mu: Rational::new(8, 7),
        conv_width: 72,
    }
}

fn bench_window_build(c: &mut Criterion) {
    let p = params();
    p.validate().expect("valid");
    let mut g = c.benchmark_group("window_build");
    g.sample_size(10);
    for kind in [
        WindowKind::GaussianSinc,
        WindowKind::KaiserSinc,
        WindowKind::ProlateSinc,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &k| {
                b.iter(|| Window::new(k, &p));
            },
        );
    }
    g.bench_function("Gaussian_analytic_demod", |b| {
        b.iter(|| Window::with_demod_mode(WindowKind::GaussianSinc, &p, DemodMode::Analytic));
    });
    g.finish();
}

criterion_group!(benches, bench_window_build);
criterion_main!(benches);
