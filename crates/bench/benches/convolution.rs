//! Criterion bench behind Fig 11: convolution-and-oversampling strategies,
//! at two simulated scales so the baseline's working-set growth is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soifft_bench::signal;
use soifft_core::{conv, ConvStrategy, Rational, SoiParams, Window, WindowKind};
use soifft_num::c64;
use soifft_par::Pool;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("convolution");
    g.sample_size(10);
    for nodes in [8usize, 64] {
        let params = SoiParams {
            // Per-rank size 7·2^11 so µ = 8/7 divides cleanly.
            n: 7 * (1 << 11) * nodes,
            procs: nodes,
            segments_per_proc: 1,
            mu: Rational::new(8, 7),
            conv_width: 72,
        };
        params.validate().expect("valid");
        let window = Window::new(WindowKind::GaussianSinc, &params);
        let input = signal(params.per_rank() + params.ghost_len(), 17);
        let mut out = vec![c64::ZERO; params.blocks_per_rank() * params.total_segments()];
        let pool = Pool::serial();
        g.throughput(Throughput::Elements(params.per_rank() as u64));
        for strategy in ConvStrategy::ALL {
            g.bench_with_input(BenchmarkId::new(strategy.label(), nodes), &nodes, |b, _| {
                b.iter(|| conv::convolve(&params, &window, strategy, &input, &mut out, &pool));
            });
        }
    }
    g.finish();
}

/// §5.3's loop fusion: convolution + block DFTs in one pass vs two.
fn bench_fused_fft(c: &mut Criterion) {
    let params = SoiParams {
        n: 7 * (1 << 11) * 16,
        procs: 16,
        segments_per_proc: 1,
        mu: Rational::new(8, 7),
        conv_width: 72,
    };
    params.validate().expect("valid");
    let window = Window::new(WindowKind::GaussianSinc, &params);
    let input = signal(params.per_rank() + params.ghost_len(), 19);
    let mut out = vec![c64::ZERO; params.blocks_per_rank() * params.total_segments()];
    let pool = Pool::serial();
    let plan = soifft_fft::Plan::new(params.total_segments());

    let mut g = c.benchmark_group("conv_fft_fusion");
    g.sample_size(10);
    g.bench_function("separate", |b| {
        b.iter(|| {
            conv::convolve(
                &params,
                &window,
                ConvStrategy::RowMajor,
                &input,
                &mut out,
                &pool,
            );
            soifft_fft::batch::forward_rows(&plan, &mut out);
        });
    });
    g.bench_function("fused", |b| {
        b.iter(|| conv::convolve_fused_fft(&params, &window, &input, &mut out, &plan, &pool));
    });
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_fused_fft);
criterion_main!(benches);
