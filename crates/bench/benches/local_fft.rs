//! Criterion bench behind Fig 10: node-local FFT performance.
//!
//! Groups:
//! * `plan` — the general plan across size classes (pow2 / smooth /
//!   Bluestein),
//! * `sixstep_ladder` — the four Fig 10 rungs at a fixed large size,
//! * `fused_demod` — §5.2.4's fused demodulation vs a separate sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soifft_bench::signal;
use soifft_fft::{fft_flops, Plan, SixStepFft, SixStepVariant};
use soifft_num::c64;
use soifft_par::Pool;

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    g.sample_size(10);
    for &n in &[1usize << 10, 1 << 14, 3 * (1 << 12), 1009 * 16] {
        let plan = Plan::new(n);
        let x = signal(n, 5);
        let mut data = x.clone();
        let mut scratch = plan.make_scratch();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                data.copy_from_slice(&x);
                plan.forward_with_scratch(&mut data, &mut scratch);
            });
        });
    }
    g.finish();
}

fn bench_sixstep_ladder(c: &mut Criterion) {
    let n = 1 << 18;
    let x = signal(n, 6);
    let mut g = c.benchmark_group("sixstep_ladder");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    for variant in SixStepVariant::LADDER {
        let plan = SixStepFft::with_pool(n, variant, Pool::default());
        let mut data = x.clone();
        let mut aux = vec![c64::ZERO; n];
        g.bench_function(variant.label(), |b| {
            b.iter(|| {
                data.copy_from_slice(&x);
                plan.forward(&mut data, &mut aux);
            });
        });
    }
    g.finish();
    eprintln!(
        "(fig10 note: {} flops per transform at n = {n})",
        fft_flops(n)
    );
}

fn bench_fused_demod(c: &mut Criterion) {
    let n = 1 << 16;
    let x = signal(n, 8);
    let scale: Vec<c64> = (0..n)
        .map(|k| c64::new(1.0 / (1.0 + k as f64), 0.0))
        .collect();
    let plan = SixStepFft::new(n, SixStepVariant::FusedDynamic);
    let mut g = c.benchmark_group("fused_demod");
    g.sample_size(10);
    let mut data = x.clone();
    let mut aux = vec![c64::ZERO; n];
    g.bench_function("fused", |b| {
        b.iter(|| {
            data.copy_from_slice(&x);
            plan.forward_scaled(&mut data, &mut aux, &scale);
        });
    });
    g.bench_function("separate_sweep", |b| {
        b.iter(|| {
            data.copy_from_slice(&x);
            plan.forward(&mut data, &mut aux);
            for (v, &m) in data.iter_mut().zip(&scale) {
                *v *= m;
            }
        });
    });
    g.finish();
}

/// Engine comparison: scratch-free iterative vs depth-first recursive at
/// small (cache-resident) and larger sizes.
fn bench_engines(c: &mut Criterion) {
    use soifft_fft::IterativeFft;
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for &n in &[1usize << 9, 1 << 14, 1 << 17] {
        let x = signal(n, 9);
        let plan = Plan::new(n);
        let mut data = x.clone();
        let mut scratch = plan.make_scratch();
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| {
                data.copy_from_slice(&x);
                plan.forward_with_scratch(&mut data, &mut scratch);
            });
        });
        let it = IterativeFft::new(n);
        g.bench_with_input(BenchmarkId::new("iterative", n), &n, |b, _| {
            b.iter(|| {
                data.copy_from_slice(&x);
                it.forward(&mut data);
            });
        });
        let st = soifft_fft::StockhamFft::new(n);
        let mut st_scratch = vec![soifft_num::c64::ZERO; n];
        g.bench_with_input(BenchmarkId::new("stockham", n), &n, |b, _| {
            b.iter(|| {
                data.copy_from_slice(&x);
                st.forward(&mut data, &mut st_scratch);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_plan,
    bench_sixstep_ladder,
    bench_fused_demod,
    bench_engines
);
criterion_main!(benches);
