//! Criterion bench behind §5.1: all-to-all exchange, blocking vs chunked
//! pipelining at several chunk sizes (the latency/throughput trade the
//! paper tunes for PCIe↔InfiniBand overlap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soifft_bench::signal;
use soifft_cluster::Cluster;
use soifft_num::c64;

fn make_outgoing(rank: usize, procs: usize, per_dest: usize) -> Vec<Vec<c64>> {
    (0..procs)
        .map(|d| signal(per_dest, (rank * procs + d) as u64 + 1))
        .collect()
}

fn bench_alltoall(c: &mut Criterion) {
    let procs = 4;
    let per_dest = 1 << 12;
    let mut g = c.benchmark_group("alltoall");
    g.sample_size(10);
    g.bench_function("blocking", |b| {
        b.iter(|| {
            Cluster::run(procs, |comm| {
                comm.all_to_all(make_outgoing(comm.rank(), procs, per_dest))
            })
        });
    });
    for chunk in [256usize, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("chunked", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                Cluster::run(procs, |comm| {
                    comm.all_to_all_chunked(make_outgoing(comm.rank(), procs, per_dest), chunk)
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall);
criterion_main!(benches);
