//! Special functions used by the SOI window design.
//!
//! The Gaussian-windowed-sinc window (the default SOI convolution kernel)
//! needs `erf` to evaluate its frequency response in closed form, and the
//! Kaiser variant needs the modified Bessel function `I₀`. Neither is in
//! `std`, so we implement them here from scratch:
//!
//! * [`erf`]/[`erfc`] — W. J. Cody's rational minimax approximations
//!   (the classic SPECFUN `CALERF` scheme), accurate to ~1 ulp ·10 over the
//!   whole real line,
//! * [`bessel_i0`] — Abramowitz & Stegun 9.8.1/9.8.2 polynomial fits,
//! * [`sinc`] — the normalized sinc `sin(πx)/(πx)` with a Taylor fallback
//!   near zero.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// Cody's three-region rational approximation; absolute error below
/// `1.2e-16` on the primary region and relative error below `1e-15`
/// elsewhere, which is ample for window design (the window's own truncation
/// error dominates).
pub fn erf(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 0.5 {
        // Region 1: rational approximation of erf itself.
        erf_small(x)
    } else {
        let ec = erfc_core(ax);
        if x >= 0.0 {
            1.0 - ec
        } else {
            ec - 1.0
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed directly in the tail regions so that `erfc(10) ≈ 2.1e-45` is
/// fully accurate rather than cancelling to zero.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 0.5 {
        1.0 - erf_small(x)
    } else if x >= 0.0 {
        erfc_core(ax)
    } else {
        2.0 - erfc_core(ax)
    }
}

/// erf on |x| < 0.5 (Cody region 1).
fn erf_small(x: f64) -> f64 {
    // Coefficients from Cody (1969), "Rational Chebyshev approximation for
    // the error function".
    const A: [f64; 5] = [
        3.209_377_589_138_469_4e3,
        3.774_852_376_853_02e2,
        1.138_641_541_510_501_6e2,
        3.161_123_743_870_565_6,
        1.857_777_061_846_031_5e-1,
    ];
    const B: [f64; 4] = [
        2.844_236_833_439_171e3,
        1.282_616_526_077_372_3e3,
        2.440_246_379_344_441_6e2,
        2.360_129_095_234_412_1e1,
    ];
    let z = x * x;
    let num = ((((A[4] * z + A[3]) * z + A[2]) * z + A[1]) * z) + A[0];
    let den = ((((z + B[3]) * z + B[2]) * z + B[1]) * z) + B[0];
    x * num / den
}

/// erfc on x ≥ 0.5 (Cody regions 2 and 3; SPECFUN `CALERF` evaluation
/// order).
fn erfc_core(ax: f64) -> f64 {
    if ax <= 4.0 {
        // Region 2: erfc(x) = e^{−x²}·P(x)/Q(x).
        const C: [f64; 9] = [
            5.641_884_969_886_701e-1,
            8.883_149_794_388_375,
            6.611_919_063_714_163e1,
            2.986_351_381_974_001e2,
            8.819_522_212_417_69e2,
            1.712_047_612_634_070_7e3,
            2.051_078_377_826_071_6e3,
            1.230_339_354_797_997_2e3,
            2.153_115_354_744_038_3e-8,
        ];
        const D: [f64; 8] = [
            1.574_492_611_070_983_3e1,
            1.176_939_508_913_124_6e2,
            5.371_811_018_620_099e2,
            1.621_389_574_566_690_3e3,
            3.290_799_235_733_459_7e3,
            4.362_619_090_143_247e3,
            3.439_367_674_143_721_6e3,
            1.230_339_354_803_749_5e3,
        ];
        let mut num = C[8] * ax;
        let mut den = ax;
        for i in 0..7 {
            num = (num + C[i]) * ax;
            den = (den + D[i]) * ax;
        }
        (-ax * ax).exp() * (num + C[7]) / (den + D[7])
    } else if ax < 26.5 {
        // Region 3: erfc(x) = e^{−x²}/x · (1/√π − R(1/x²)).
        const P: [f64; 6] = [
            3.053_266_349_612_323_4e-1,
            3.603_448_999_498_044_4e-1,
            1.257_817_261_112_292_4e-1,
            1.608_378_514_874_228e-2,
            6.587_491_615_298_378e-4,
            1.631_538_713_730_209_8e-2,
        ];
        const Q: [f64; 5] = [
            2.568_520_192_289_822,
            1.872_952_849_923_460_4,
            5.279_051_029_514_285e-1,
            6.051_834_131_244_132e-2,
            2.335_204_976_268_691_8e-3,
        ];
        const ONE_OVER_SQRT_PI: f64 = 5.641_895_835_477_563e-1;
        let z = 1.0 / (ax * ax);
        let mut num = P[5] * z;
        let mut den = z;
        for i in 0..4 {
            num = (num + P[i]) * z;
            den = (den + Q[i]) * z;
        }
        let r = z * (num + P[4]) / (den + Q[4]);
        ((-ax * ax).exp() / ax) * (ONE_OVER_SQRT_PI - r)
    } else {
        // Underflows to zero in double precision (erfc(26.5) ≈ 1e-306).
        0.0
    }
}

/// The modified Bessel function of the first kind, order zero.
///
/// Abramowitz & Stegun 9.8.1 (|x| ≤ 3.75) and 9.8.2 (|x| > 3.75); relative
/// error below 2e-7 in the polynomial regime which is sufficient for Kaiser
/// window *shapes* (the demodulation constants for Kaiser windows are always
/// computed numerically, never from this value).
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (ax / 3.75) * (ax / 3.75);
        1.0 + t
            * (3.515_622_9
                + t * (3.089_942_4
                    + t * (1.206_749_2 + t * (0.265_973_2 + t * (0.036_076_8 + t * 0.004_581_3)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.398_942_28
                + t * (0.013_285_92
                    + t * (0.002_253_19
                        + t * (-0.001_575_65
                            + t * (0.009_162_81
                                + t * (-0.020_577_06
                                    + t * (0.026_355_37
                                        + t * (-0.016_476_33 + t * 0.003_923_77))))))))
    }
}

/// The normalized sinc function `sin(πx)/(πx)`, with `sinc(0) = 1`.
///
/// Near zero a 3-term Taylor expansion avoids the 0/0; the switch point is
/// chosen so both branches agree to machine precision.
pub fn sinc(x: f64) -> f64 {
    let px = std::f64::consts::PI * x;
    if px.abs() < 1e-4 {
        let p2 = px * px;
        1.0 - p2 / 6.0 * (1.0 - p2 / 20.0)
    } else {
        px.sin() / px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference erf via adaptive Simpson integration of the defining
    /// integral (slow but independent of the rational fits).
    fn erf_ref(x: f64) -> f64 {
        fn simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, n: usize) -> f64 {
            let h = (b - a) / n as f64;
            let mut s = f(a) + f(b);
            for i in 1..n {
                let w = if i % 2 == 1 { 4.0 } else { 2.0 };
                s += w * f(a + i as f64 * h);
            }
            s * h / 3.0
        }
        let f = |t: f64| (-t * t).exp();
        2.0 / std::f64::consts::PI.sqrt() * simpson(&f, 0.0, x, 2000)
    }

    #[test]
    fn erf_matches_integral_reference() {
        for &x in &[0.01, 0.1, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0] {
            let got = erf(x);
            let want = erf_ref(x);
            assert!(
                (got - want).abs() < 1e-12,
                "erf({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for &x in &[0.0, 0.2, 0.9, 1.7, 4.0, 8.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-15);
            assert!(erf(x).abs() <= 1.0);
        }
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 2.5, 3.9] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "erf+erfc at {x}");
        }
    }

    #[test]
    fn erfc_tail_is_accurate_not_zero() {
        // erfc(5) ≈ 1.5374597944280349e-12 (known value).
        let got = erfc(5.0);
        assert!(
            (got / 1.537_459_794_428_035e-12 - 1.0).abs() < 1e-6,
            "erfc(5) = {got}"
        );
        // erfc(10) ≈ 2.0884875837625447e-45.
        let got = erfc(10.0);
        assert!(
            (got / 2.088_487_583_762_544_7e-45 - 1.0).abs() < 1e-6,
            "erfc(10) = {got}"
        );
    }

    #[test]
    fn bessel_i0_known_values() {
        // I0(0)=1, I0(1)=1.2660658..., I0(5)=27.239871...
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-7);
        assert!((bessel_i0(1.0) - 1.266_065_877_752_008_3).abs() < 1e-6);
        assert!((bessel_i0(5.0) / 27.239_871_823_604_45 - 1.0).abs() < 1e-6);
        // Even function.
        assert_eq!(bessel_i0(2.5), bessel_i0(-2.5));
    }

    #[test]
    fn sinc_values_and_continuity() {
        assert_eq!(sinc(0.0), 1.0);
        // Zeros at nonzero integers (up to rounding of k·π).
        for k in 1..6 {
            assert!(sinc(k as f64).abs() < 1e-14);
        }
        // Continuity across the Taylor/direct switch (the true function
        // changes by ~7e-13 over this interval; allow that plus slack).
        let a = sinc(9.999e-5);
        let b = sinc(1.0001e-4);
        assert!((a - b).abs() < 1e-11);
        // Even function.
        assert!((sinc(0.3) - sinc(-0.3)).abs() < 1e-16);
    }
}
