//! Error norms for validating transforms.
//!
//! SOI is an *approximate* factorization of the DFT whose error is
//! controlled by the window's stopband (DESIGN.md §2), so every test and the
//! accuracy benches need consistent, scale-free error measures. We follow
//! the HPCC G-FFT convention of normalizing by the input magnitude.

use crate::c64;

/// Maximum absolute difference `max_i |a_i − b_i|`.
pub fn linf(a: &[c64], b: &[c64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// ℓ₂ norm of the difference.
pub fn l2(a: &[c64], b: &[c64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// Relative ℓ₂ error `‖a − b‖₂ / ‖b‖₂` (`b` is the reference). Returns the
/// absolute ℓ₂ error when the reference is the zero vector.
pub fn rel_l2(a: &[c64], b: &[c64]) -> f64 {
    let denom = b.iter().map(|&y| y.norm_sqr()).sum::<f64>().sqrt();
    let num = l2(a, b);
    if denom == 0.0 {
        num
    } else {
        num / denom
    }
}

/// Relative ℓ∞ error `max|a−b| / max|b|`, falling back to absolute when the
/// reference is zero.
pub fn rel_linf(a: &[c64], b: &[c64]) -> f64 {
    let denom = b.iter().map(|&y| y.abs()).fold(0.0, f64::max);
    let num = linf(a, b);
    if denom == 0.0 {
        num
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_on_identical() {
        let a = vec![c64::new(1.0, -2.0); 5];
        assert_eq!(linf(&a, &a), 0.0);
        assert_eq!(l2(&a, &a), 0.0);
        assert_eq!(rel_l2(&a, &a), 0.0);
        assert_eq!(rel_linf(&a, &a), 0.0);
    }

    #[test]
    fn known_difference() {
        let a = vec![c64::new(1.0, 0.0), c64::new(0.0, 0.0)];
        let b = vec![c64::new(0.0, 0.0), c64::new(0.0, 0.0)];
        assert_eq!(linf(&a, &b), 1.0);
        assert_eq!(l2(&a, &b), 1.0);
        // Zero reference falls back to absolute norms.
        assert_eq!(rel_l2(&a, &b), 1.0);
        assert_eq!(rel_linf(&a, &b), 1.0);
    }

    #[test]
    fn relative_is_scale_invariant() {
        let a: Vec<c64> = (0..8).map(|i| c64::new(i as f64, 1.0)).collect();
        let b: Vec<c64> = a.iter().map(|&z| z * 1.001).collect();
        let r1 = rel_l2(&a, &b);
        let a10: Vec<c64> = a.iter().map(|&z| z * 10.0).collect();
        let b10: Vec<c64> = b.iter().map(|&z| z * 10.0).collect();
        let r2 = rel_l2(&a10, &b10);
        assert!((r1 - r2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = vec![c64::ZERO; 2];
        let b = vec![c64::ZERO; 3];
        linf(&a, &b);
    }
}
