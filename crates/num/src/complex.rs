//! Complex arithmetic, generic over the precision parameter.
//!
//! The workspace computes on [`Complex<T>`] values where `T` is a
//! [`Real`] scalar: [`c64`] (16 bytes, matching the paper's
//! "double-precision complex numbers, i.e. 16 bytes per element") is the
//! default everywhere, and [`c32`] (8 bytes) is the half-payload path.
//! The type is deliberately minimal and `#[repr(C)]` so that a slice of
//! `Complex<T>` is bit-compatible with the interleaved (AoS) layout used
//! at MPI boundaries.
//!
//! Trig-derived values ([`Complex::cis`], [`Complex::root_of_unity`]) are
//! evaluated in `f64` and demoted once, so `c32` tables carry ≤ ½ ulp of
//! demotion error instead of compounded single-precision trig error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::real::Real;

/// A complex number `re + i·im` over the precision parameter `T`.
///
/// The lower-case aliases [`c64`] and [`c32`] mirror common HPC style (by
/// analogy with `f64`/`f32`). All arithmetic is implemented inline; a
/// complex multiply is the usual 4 multiplies + 2 adds (6 flops), an
/// addition 2 flops — the counts the paper's `8B` convolution flop model
/// assumes.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Double-precision complex number (the workspace default).
#[allow(non_camel_case_types)]
pub type c64 = Complex<f64>;

/// Single-precision complex number (the half-payload path).
#[allow(non_camel_case_types)]
pub type c32 = Complex<f32>;

impl<T: Real> Complex<T> {
    /// Zero.
    pub const ZERO: Self = Complex {
        re: T::ZERO,
        im: T::ZERO,
    };
    /// Multiplicative identity.
    pub const ONE: Self = Complex {
        re: T::ONE,
        im: T::ZERO,
    };
    /// The imaginary unit.
    pub const I: Self = Complex {
        re: T::ZERO,
        im: T::ONE,
    };

    /// Creates `re + i·im`.
    #[inline(always)]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real value.
    #[inline(always)]
    pub const fn real(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }

    /// `e^{iθ} = cos θ + i sin θ`. The angle is always an `f64`; the
    /// result is demoted to `T` after the trig evaluation.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex {
            re: T::from_f64(c),
            im: T::from_f64(s),
        }
    }

    /// The primitive root of unity `e^{-2πi k / n}` used by the forward DFT
    /// (negative-exponent convention, matching FFTW/MKL).
    ///
    /// `k` is reduced modulo `n` before the argument is formed so that large
    /// indices do not lose precision in the multiply; the trig runs in
    /// `f64` regardless of `T`.
    #[inline]
    pub fn root_of_unity(n: usize, k: i64) -> Self {
        let n_i = n as i64;
        let k = ((k % n_i) + n_i) % n_i;
        Self::cis(-2.0 * std::f64::consts::PI * (k as f64) / (n as f64))
    }

    /// Demotes (or passes through) a double-precision value to `T`
    /// component-wise.
    #[inline(always)]
    pub fn from_c64(z: Complex<f64>) -> Self {
        Complex {
            re: T::from_f64(z.re),
            im: T::from_f64(z.im),
        }
    }

    /// Promotes (or passes through) to double precision component-wise.
    #[inline(always)]
    pub fn to_c64(self) -> Complex<f64> {
        Complex {
            re: self.re.to_f64(),
            im: self.im.to_f64(),
        }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|` (hypot, safe against overflow).
    #[inline]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-accumulate `self + a*b` written so the optimizer can
    /// emit FMA instructions where available (paper §5.2.4 notes ~12 % of
    /// Xeon Phi FFT operations become FMAs).
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Complex {
            re: a.re.mul_add(b.re, (-a.im).mul_add(b.im, self.re)),
            im: a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
        }
    }

    /// Multiplication by `i` (a rotation — no multiplies needed; the radix-4
    /// butterfly exploits this).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplication by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Complex {
            re: self.im,
            im: -self.re,
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn add(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn sub(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn mul(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex<T>) -> Complex<T> {
        self * rhs.inv()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn neg(self) -> Complex<T> {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn mul(self, rhs: T) -> Complex<T> {
        self.scale(rhs)
    }
}

// `scalar * complex` cannot be written generically (the scalar would be an
// uncovered type parameter), so each precision gets a concrete impl.
impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline(always)]
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        rhs.scale(self)
    }
}

impl Mul<Complex<f32>> for f32 {
    type Output = Complex<f32>;
    #[inline(always)]
    fn mul(self, rhs: Complex<f32>) -> Complex<f32> {
        rhs.scale(self)
    }
}

impl<T: Real> Div<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn div(self, rhs: T) -> Complex<T> {
        self.scale(T::ONE / rhs)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex<T>) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex<T>) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex<T>) {
        *self = *self * rhs;
    }
}

impl<T: Real> DivAssign for Complex<T> {
    #[inline]
    fn div_assign(&mut self, rhs: Complex<T>) {
        *self = *self / rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Complex<T>>>(iter: I) -> Complex<T> {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<T: Real> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Complex<T> {
        Complex::real(re)
    }
}

impl<T: Real> From<(T, T)> for Complex<T> {
    #[inline]
    fn from((re, im): (T, T)) -> Complex<T> {
        Complex::new(re, im)
    }
}

impl<T: Real> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= T::ZERO {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl<T: Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: c64, b: c64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(c64::new(1.0, 2.0).re, 1.0);
        assert_eq!(c64::new(1.0, 2.0).im, 2.0);
        assert_eq!(c64::ZERO + c64::ONE, c64::ONE);
        assert_eq!(c64::I * c64::I, -c64::ONE);
        assert_eq!(c64::from(3.0), c64::new(3.0, 0.0));
        assert_eq!(c64::from((3.0, 4.0)), c64::new(3.0, 4.0));
    }

    #[test]
    fn field_arithmetic() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(-3.0, 0.5);
        assert_eq!(a + b, c64::new(-2.0, 2.5));
        assert_eq!(a - b, c64::new(4.0, 1.5));
        assert_eq!(
            a * b,
            c64::new(1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0)
        );
        assert!(close(a / b * b, a));
        assert!(close(a * a.inv(), c64::ONE));
        assert_eq!(-a, c64::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = c64::new(0.3, -0.7);
        let b = c64::new(1.5, 2.5);
        let mut x = a;
        x += b;
        assert_eq!(x, a + b);
        x = a;
        x -= b;
        assert_eq!(x, a - b);
        x = a;
        x *= b;
        assert_eq!(x, a * b);
        x = a;
        x /= b;
        assert_eq!(x, a / b);
    }

    #[test]
    fn scalar_ops() {
        let a = c64::new(2.0, -4.0);
        assert_eq!(a * 0.5, c64::new(1.0, -2.0));
        assert_eq!(0.5 * a, c64::new(1.0, -2.0));
        assert_eq!(a / 2.0, c64::new(1.0, -2.0));
        assert_eq!(a.scale(0.0), c64::ZERO);
    }

    #[test]
    fn conj_abs_arg() {
        let a = c64::new(3.0, 4.0);
        assert_eq!(a.conj(), c64::new(3.0, -4.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((c64::I.arg() - PI / 2.0).abs() < 1e-15);
        assert!((a * a.conj()).im == 0.0);
    }

    #[test]
    fn cis_and_roots_of_unity() {
        assert!(close(c64::cis(0.0), c64::ONE));
        assert!(close(c64::cis(PI), -c64::ONE));
        // Forward-DFT convention: root_of_unity(4, 1) = e^{-iπ/2} = -i.
        assert!(close(c64::root_of_unity(4, 1), -c64::I));
        // k is reduced mod n, including negative k.
        assert!(close(c64::root_of_unity(8, 9), c64::root_of_unity(8, 1)));
        assert!(close(c64::root_of_unity(8, -1), c64::root_of_unity(8, 7)));
        // n-th root to the n-th power is 1.
        let w = c64::root_of_unity(7, 1);
        let mut p = c64::ONE;
        for _ in 0..7 {
            p *= w;
        }
        assert!(close(p, c64::ONE));
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64::new(1.25, -2.5);
        assert_eq!(a.mul_i(), a * c64::I);
        assert_eq!(a.mul_neg_i(), a * -c64::I);
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = c64::new(0.1, 0.2);
        let a = c64::new(-1.0, 3.0);
        let b = c64::new(2.0, -0.5);
        let fused = acc.mul_add(a, b);
        let plain = acc + a * b;
        assert!((fused - plain).abs() < 1e-14);
    }

    #[test]
    fn sum_iterator() {
        let v = [c64::new(1.0, 1.0); 10];
        let s: c64 = v.iter().copied().sum();
        assert_eq!(s, c64::new(10.0, 10.0));
    }

    #[test]
    fn nan_and_finite() {
        assert!(c64::new(f64::NAN, 0.0).is_nan());
        assert!(!c64::ONE.is_nan());
        assert!(c64::ONE.is_finite());
        assert!(!c64::new(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn c32_arithmetic_mirrors_c64() {
        let a = c32::new(1.5, -2.25);
        let b = c32::new(-0.5, 4.0);
        let (wa, wb) = (a.to_c64(), b.to_c64());
        // Exactly-representable operands: single-precision arithmetic on
        // them agrees with demoted double-precision arithmetic.
        assert_eq!((a + b).to_c64(), wa + wb);
        assert_eq!((a * b).to_c64(), wa * wb);
        assert_eq!(a.conj().to_c64(), wa.conj());
        assert_eq!(c32::from_c64(wa), a);
    }

    #[test]
    fn demotion_is_round_to_nearest() {
        // π is not representable in f32; from_c64 must round, not
        // truncate, so the table-demotion contract (≤ ½ ulp) holds.
        let z = c32::from_c64(c64::new(PI, -PI));
        assert_eq!(z.re, std::f64::consts::PI as f32);
        assert_eq!(z.im, -(std::f64::consts::PI as f32));
        let w = c32::root_of_unity(3, 1);
        let exact = c64::root_of_unity(3, 1);
        assert!((w.re as f64 - exact.re).abs() <= f32::EPSILON as f64);
        assert!((w.im as f64 - exact.im).abs() <= f32::EPSILON as f64);
    }
}
