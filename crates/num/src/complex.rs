//! Double-precision complex arithmetic.
//!
//! The whole workspace computes on `c64` values (16 bytes, matching the
//! paper's "double-precision complex numbers, i.e. 16 bytes per element").
//! The type is deliberately minimal and `#[repr(C)]` so that a slice of
//! `c64` is bit-compatible with the interleaved (AoS) layout used at MPI
//! boundaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// The lower-case name mirrors common HPC style (`c64`, by analogy with
/// `f64`). All arithmetic is implemented inline; a complex multiply is the
/// usual 4 multiplies + 2 adds (6 flops), an addition 2 flops — the counts
/// the paper's `8B` convolution flop model assumes.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
#[allow(non_camel_case_types)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl c64 {
    /// Zero.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Creates a purely real value.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64 { re: c, im: s }
    }

    /// The primitive root of unity `e^{-2πi k / n}` used by the forward DFT
    /// (negative-exponent convention, matching FFTW/MKL).
    ///
    /// `k` is reduced modulo `n` before the argument is formed so that large
    /// indices do not lose precision in the multiply.
    #[inline]
    pub fn root_of_unity(n: usize, k: i64) -> Self {
        let n_i = n as i64;
        let k = ((k % n_i) + n_i) % n_i;
        c64::cis(-2.0 * std::f64::consts::PI * (k as f64) / (n as f64))
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|` (hypot, safe against overflow).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-accumulate `self + a*b` written so the optimizer can
    /// emit FMA instructions where available (paper §5.2.4 notes ~12 % of
    /// Xeon Phi FFT operations become FMAs).
    #[inline(always)]
    pub fn mul_add(self, a: c64, b: c64) -> Self {
        c64 {
            re: a.re.mul_add(b.re, (-a.im).mul_add(b.im, self.re)),
            im: a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
        }
    }

    /// Multiplication by `i` (a rotation — no multiplies needed; the radix-4
    /// butterfly exploits this).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        c64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplication by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        c64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline(always)]
    fn add(self, rhs: c64) -> c64 {
        c64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for c64 {
    type Output = c64;
    #[inline(always)]
    fn sub(self, rhs: c64) -> c64 {
        c64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, rhs: c64) -> c64 {
        c64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for c64 {
    type Output = c64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: c64) -> c64 {
        self * rhs.inv()
    }
}

impl Neg for c64 {
    type Output = c64;
    #[inline(always)]
    fn neg(self) -> c64 {
        c64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> c64 {
        self.scale(rhs)
    }
}

impl Mul<c64> for f64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, rhs: c64) -> c64 {
        rhs.scale(self)
    }
}

impl Div<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn div(self, rhs: f64) -> c64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for c64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: c64) {
        *self = *self + rhs;
    }
}

impl SubAssign for c64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: c64) {
        *self = *self - rhs;
    }
}

impl MulAssign for c64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: c64) {
        *self = *self * rhs;
    }
}

impl DivAssign for c64 {
    #[inline]
    fn div_assign(&mut self, rhs: c64) {
        *self = *self / rhs;
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for c64 {
    #[inline]
    fn from(re: f64) -> c64 {
        c64::real(re)
    }
}

impl From<(f64, f64)> for c64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> c64 {
        c64::new(re, im)
    }
}

impl fmt::Debug for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: c64, b: c64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(c64::new(1.0, 2.0).re, 1.0);
        assert_eq!(c64::new(1.0, 2.0).im, 2.0);
        assert_eq!(c64::ZERO + c64::ONE, c64::ONE);
        assert_eq!(c64::I * c64::I, -c64::ONE);
        assert_eq!(c64::from(3.0), c64::new(3.0, 0.0));
        assert_eq!(c64::from((3.0, 4.0)), c64::new(3.0, 4.0));
    }

    #[test]
    fn field_arithmetic() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(-3.0, 0.5);
        assert_eq!(a + b, c64::new(-2.0, 2.5));
        assert_eq!(a - b, c64::new(4.0, 1.5));
        assert_eq!(
            a * b,
            c64::new(1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0)
        );
        assert!(close(a / b * b, a));
        assert!(close(a * a.inv(), c64::ONE));
        assert_eq!(-a, c64::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = c64::new(0.3, -0.7);
        let b = c64::new(1.5, 2.5);
        let mut x = a;
        x += b;
        assert_eq!(x, a + b);
        x = a;
        x -= b;
        assert_eq!(x, a - b);
        x = a;
        x *= b;
        assert_eq!(x, a * b);
        x = a;
        x /= b;
        assert_eq!(x, a / b);
    }

    #[test]
    fn scalar_ops() {
        let a = c64::new(2.0, -4.0);
        assert_eq!(a * 0.5, c64::new(1.0, -2.0));
        assert_eq!(0.5 * a, c64::new(1.0, -2.0));
        assert_eq!(a / 2.0, c64::new(1.0, -2.0));
        assert_eq!(a.scale(0.0), c64::ZERO);
    }

    #[test]
    fn conj_abs_arg() {
        let a = c64::new(3.0, 4.0);
        assert_eq!(a.conj(), c64::new(3.0, -4.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!((c64::I.arg() - PI / 2.0).abs() < 1e-15);
        assert!((a * a.conj()).im == 0.0);
    }

    #[test]
    fn cis_and_roots_of_unity() {
        assert!(close(c64::cis(0.0), c64::ONE));
        assert!(close(c64::cis(PI), -c64::ONE));
        // Forward-DFT convention: root_of_unity(4, 1) = e^{-iπ/2} = -i.
        assert!(close(c64::root_of_unity(4, 1), -c64::I));
        // k is reduced mod n, including negative k.
        assert!(close(c64::root_of_unity(8, 9), c64::root_of_unity(8, 1)));
        assert!(close(c64::root_of_unity(8, -1), c64::root_of_unity(8, 7)));
        // n-th root to the n-th power is 1.
        let w = c64::root_of_unity(7, 1);
        let mut p = c64::ONE;
        for _ in 0..7 {
            p *= w;
        }
        assert!(close(p, c64::ONE));
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64::new(1.25, -2.5);
        assert_eq!(a.mul_i(), a * c64::I);
        assert_eq!(a.mul_neg_i(), a * -c64::I);
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = c64::new(0.1, 0.2);
        let a = c64::new(-1.0, 3.0);
        let b = c64::new(2.0, -0.5);
        let fused = acc.mul_add(a, b);
        let plain = acc + a * b;
        assert!((fused - plain).abs() < 1e-14);
    }

    #[test]
    fn sum_iterator() {
        let v = [c64::new(1.0, 1.0); 10];
        let s: c64 = v.iter().copied().sum();
        assert_eq!(s, c64::new(10.0, 10.0));
    }

    #[test]
    fn nan_and_finite() {
        assert!(c64::new(f64::NAN, 0.0).is_nan());
        assert!(!c64::ONE.is_nan());
        assert!(c64::ONE.is_finite());
        assert!(!c64::new(f64::INFINITY, 0.0).is_finite());
    }
}
