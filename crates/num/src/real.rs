//! The precision parameter of the numeric substrate.
//!
//! Every layer above this crate — complex arithmetic, the micro-kernels,
//! FFT plans, the SOI pipeline — is generic over one scalar type
//! implementing [`Real`]. Two implementations exist: `f64` (the default,
//! matching the paper's double-precision arithmetic) and `f32` (the
//! half-payload path: the paper's Section 5 gains are bandwidth gains, and
//! a 4-byte scalar literally halves the bytes moved by the convolution,
//! the local FFTs and the all-to-all).
//!
//! The trait is deliberately *sealed* to those two types: the kernel
//! dispatch hooks (`kdot`, `kaxpy_pointwise`, …) pick a runtime-detected
//! AVX2 implementation per concrete type (see [`crate::simd`]), and the
//! accuracy contracts in the workspace (SNR floors, scalar/SIMD bit
//! parity) are only characterized for these two.
//!
//! Precision-sensitive *constants* (twiddles, window taps, chirps) are
//! always computed in `f64` and then demoted through [`Real::from_f64`],
//! so an `f32` table entry is within half an ulp of the mathematical
//! value rather than compounding single-precision trig error.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::complex::Complex;
use crate::{kernels, transpose};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A real scalar type the numeric substrate can compute in.
///
/// Implemented for `f64` and `f32` only (the trait is sealed). All
/// methods mirror the corresponding `std` float methods; the `k*` hooks
/// are the per-type kernel dispatchers — callers go through the free
/// functions in [`crate::kernels`] / [`crate::transpose`] and never call
/// these directly.
pub trait Real:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one scalar in bytes (payload accounting: a complex element
    /// is `2 * BYTES` on the wire).
    const BYTES: usize;

    /// Demotes (or passes through) an `f64` value.
    fn from_f64(x: f64) -> Self;
    /// Promotes (or passes through) to `f64`.
    fn to_f64(self) -> f64;
    /// `self * a + b` with a single rounding where the target supports it.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `sqrt(self² + other²)` without intermediate overflow.
    fn hypot(self, other: Self) -> Self;
    /// Four-quadrant arctangent `atan2(self, other)`.
    fn atan2(self, other: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum.
    fn max(self, other: Self) -> Self;
    /// True when NaN.
    fn is_nan(self) -> bool;
    /// True when neither NaN nor infinite.
    fn is_finite(self) -> bool;

    /// Kernel hook: inner product `Σ t[i]·x[i]` (see [`kernels::dot`]).
    #[doc(hidden)]
    fn kdot(t: &[Complex<Self>], x: &[Complex<Self>]) -> Complex<Self> {
        kernels::dot_scalar(t, x)
    }

    /// Kernel hook: `acc[i] += t[i]·x[i]` (see [`kernels::axpy_pointwise`]).
    #[doc(hidden)]
    fn kaxpy_pointwise(acc: &mut [Complex<Self>], t: &[Complex<Self>], x: &[Complex<Self>]) {
        kernels::axpy_pointwise_scalar(acc, t, x);
    }

    /// Kernel hook: `data[i] *= scale[i]` (see [`kernels::mul_pointwise`]).
    #[doc(hidden)]
    fn kmul_pointwise(data: &mut [Complex<Self>], scale: &[Complex<Self>]) {
        kernels::mul_pointwise_scalar(data, scale);
    }

    /// Kernel hook: strided-tile transpose (see
    /// [`transpose::transpose_tile`]).
    #[doc(hidden)]
    fn ktranspose_tile(
        src: &[Complex<Self>],
        src_stride: usize,
        dst: &mut [Complex<Self>],
        dst_stride: usize,
        rows: usize,
        cols: usize,
    ) {
        transpose::transpose_tile_scalar(src, src_stride, dst, dst_stride, rows, cols);
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn hypot(self, other: Self) -> Self {
        f64::hypot(self, other)
    }
    #[inline(always)]
    fn atan2(self, other: Self) -> Self {
        f64::atan2(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn kdot(t: &[Complex<f64>], x: &[Complex<f64>]) -> Complex<f64> {
        crate::simd::dot_c64(t, x)
    }
    #[inline]
    fn kaxpy_pointwise(acc: &mut [Complex<f64>], t: &[Complex<f64>], x: &[Complex<f64>]) {
        crate::simd::axpy_pointwise_c64(acc, t, x);
    }
    #[inline]
    fn kmul_pointwise(data: &mut [Complex<f64>], scale: &[Complex<f64>]) {
        crate::simd::mul_pointwise_c64(data, scale);
    }
    #[inline]
    fn ktranspose_tile(
        src: &[Complex<f64>],
        src_stride: usize,
        dst: &mut [Complex<f64>],
        dst_stride: usize,
        rows: usize,
        cols: usize,
    ) {
        crate::simd::transpose_tile_c64(src, src_stride, dst, dst_stride, rows, cols);
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn hypot(self, other: Self) -> Self {
        f32::hypot(self, other)
    }
    #[inline(always)]
    fn atan2(self, other: Self) -> Self {
        f32::atan2(self, other)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn kdot(t: &[Complex<f32>], x: &[Complex<f32>]) -> Complex<f32> {
        crate::simd::dot_c32(t, x)
    }
    #[inline]
    fn kaxpy_pointwise(acc: &mut [Complex<f32>], t: &[Complex<f32>], x: &[Complex<f32>]) {
        crate::simd::axpy_pointwise_c32(acc, t, x);
    }
    #[inline]
    fn kmul_pointwise(data: &mut [Complex<f32>], scale: &[Complex<f32>]) {
        crate::simd::mul_pointwise_c32(data, scale);
    }
    #[inline]
    fn ktranspose_tile(
        src: &[Complex<f32>],
        src_stride: usize,
        dst: &mut [Complex<f32>],
        dst_stride: usize,
        rows: usize,
        cols: usize,
    ) {
        crate::simd::transpose_tile_c32(src, src_stride, dst, dst_stride, rows, cols);
    }
}
