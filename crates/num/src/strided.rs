//! Strided gather/scatter copies.
//!
//! Long-stride access is the recurring villain of the paper (§5.2.1: "the
//! memory accesses will be in larger strides, sometimes greater than a page
//! size"; §5.3: "conflict misses from long-stride access to input"). The
//! standard cure, used by both the 6-step FFT and the buffered convolution,
//! is to *stage* strided data through a small contiguous buffer and run the
//! compute kernel on the buffer. These helpers are those staging copies,
//! generic over the precision parameter [`Real`].

use crate::complex::Complex;
use crate::real::Real;

/// Gathers `count` elements from `src` starting at `offset` with the given
/// `stride` into the contiguous `dst`.
///
/// `dst.len()` must be at least `count`.
pub fn gather<T: Real>(
    src: &[Complex<T>],
    offset: usize,
    stride: usize,
    count: usize,
    dst: &mut [Complex<T>],
) {
    assert!(stride >= 1, "stride must be >= 1");
    assert!(dst.len() >= count, "dst too small");
    let mut idx = offset;
    for d in dst.iter_mut().take(count) {
        *d = src[idx];
        idx += stride;
    }
}

/// Scatters the first `count` elements of the contiguous `src` into `dst`
/// starting at `offset` with the given `stride`.
pub fn scatter<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    offset: usize,
    stride: usize,
    count: usize,
) {
    assert!(stride >= 1, "stride must be >= 1");
    assert!(src.len() >= count, "src too small");
    let mut idx = offset;
    for s in src.iter().take(count) {
        dst[idx] = *s;
        idx += stride;
    }
}

/// Gathers a `rows × cols` sub-matrix laid out with `row_stride` in `src`
/// into a dense row-major `dst` (the "copy P × 8 columns to a contiguous
/// buffer" move from Fig 4(b) step 1).
pub fn gather_matrix<T: Real>(
    src: &[Complex<T>],
    base: usize,
    row_stride: usize,
    rows: usize,
    cols: usize,
    dst: &mut [Complex<T>],
) {
    assert!(dst.len() >= rows * cols, "dst too small");
    for r in 0..rows {
        let row = base + r * row_stride;
        dst[r * cols..r * cols + cols].copy_from_slice(&src[row..row + cols]);
    }
}

/// Scatters a dense row-major `rows × cols` matrix from `src` back into a
/// strided region of `dst` (Fig 4(b) step 4 "permute and write back").
pub fn scatter_matrix<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    base: usize,
    row_stride: usize,
    rows: usize,
    cols: usize,
) {
    assert!(src.len() >= rows * cols, "src too small");
    for r in 0..rows {
        let row = base + r * row_stride;
        dst[row..row + cols].copy_from_slice(&src[r * cols..r * cols + cols]);
    }
}

/// A fixed-capacity circular staging buffer over a strided input stream.
///
/// This is the §5.3 "Avoiding Cache Conflict Misses by Buffering" structure:
/// the convolution reads `B` window-width elements at stride `L`; instead of
/// touching the strided input `n_µ` times per chunk, `B` elements are held
/// contiguously and only `d_µ` new elements are copied in per chunk
/// ("translate B non-contiguous loads to ... d_µ non-contiguous loads and
/// d_µ contiguous stores").
#[derive(Clone, Debug)]
pub struct CircularBuffer<T: Real = f64> {
    buf: Vec<Complex<T>>,
    head: usize,
}

impl<T: Real> CircularBuffer<T> {
    /// Creates a buffer of capacity `cap` filled with zeros.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        CircularBuffer {
            buf: vec![Complex::<T>::ZERO; cap],
            head: 0,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Overwrites the whole buffer from a strided gather (initial fill).
    pub fn fill_strided(&mut self, src: &[Complex<T>], offset: usize, stride: usize) {
        let cap = self.buf.len();
        gather(src, offset, stride, cap, &mut self.buf);
        self.head = 0;
    }

    /// Advances the window by `n` elements, gathering the `n` new elements
    /// from `src` (strided) and overwriting the `n` oldest.
    pub fn advance_strided(&mut self, src: &[Complex<T>], offset: usize, stride: usize, n: usize) {
        let cap = self.buf.len();
        assert!(n <= cap, "advance larger than capacity");
        let mut idx = offset;
        for k in 0..n {
            self.buf[(self.head + k) % cap] = src[idx];
            idx += stride;
        }
        self.head = (self.head + n) % cap;
    }

    /// Logical element `i` (0 = oldest element of the window).
    #[inline]
    pub fn get(&self, i: usize) -> Complex<T> {
        let cap = self.buf.len();
        debug_assert!(i < cap);
        self.buf[(self.head + i) % cap]
    }

    /// Copies the logical window into a dense slice (used when a kernel
    /// wants a straight contiguous view instead of modular indexing).
    pub fn snapshot(&self, out: &mut [Complex<T>]) {
        let cap = self.buf.len();
        assert_eq!(out.len(), cap, "snapshot length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn data(n: usize) -> Vec<c64> {
        (0..n).map(|i| c64::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn gather_then_scatter_round_trips() {
        let src = data(64);
        let mut buf = vec![c64::ZERO; 8];
        gather(&src, 3, 7, 8, &mut buf);
        for (k, &b) in buf.iter().enumerate() {
            assert_eq!(b, src[3 + 7 * k]);
        }
        let mut dst = vec![c64::ZERO; 64];
        scatter(&buf, &mut dst, 3, 7, 8);
        for k in 0..8 {
            assert_eq!(dst[3 + 7 * k], src[3 + 7 * k]);
        }
    }

    #[test]
    fn gather_unit_stride_is_memcpy() {
        let src = data(16);
        let mut buf = vec![c64::ZERO; 16];
        gather(&src, 0, 1, 16, &mut buf);
        assert_eq!(buf, src);
    }

    #[test]
    fn matrix_gather_scatter_round_trip() {
        let stride = 13;
        let src = data(stride * 6);
        let mut dense = vec![c64::ZERO; 4 * 5];
        gather_matrix(&src, 2, stride, 4, 5, &mut dense);
        for r in 0..4 {
            for c in 0..5 {
                assert_eq!(dense[r * 5 + c], src[2 + r * stride + c]);
            }
        }
        let mut dst = vec![c64::ZERO; stride * 6];
        scatter_matrix(&dense, &mut dst, 2, stride, 4, 5);
        for r in 0..4 {
            for c in 0..5 {
                assert_eq!(dst[2 + r * stride + c], dense[r * 5 + c]);
            }
        }
    }

    #[test]
    fn circular_buffer_sliding_window_matches_direct_gather() {
        // Window of B=6 over stride-4 data, advancing d=2 at a time:
        // exactly the convolution staging pattern.
        let src = data(200);
        let (b, d, stride) = (6usize, 2usize, 4usize);
        let mut cb = CircularBuffer::<f64>::new(b);
        cb.fill_strided(&src, 0, stride);
        let mut direct = vec![c64::ZERO; b];
        for step in 0..10 {
            let base = step * d; // element offset of window start
            gather(&src, base * stride, stride, b, &mut direct);
            let mut snap = vec![c64::ZERO; b];
            cb.snapshot(&mut snap);
            assert_eq!(snap, direct, "step {step}");
            for (i, want) in direct.iter().enumerate() {
                assert_eq!(cb.get(i), *want, "step {step} i {i}");
            }
            // Advance: new elements are at window positions b..b+d.
            cb.advance_strided(&src, (base + b) * stride, stride, d);
        }
    }

    #[test]
    fn circular_buffer_works_in_f32() {
        let src: Vec<crate::complex::c32> = (0..32)
            .map(|i| crate::complex::c32::new(i as f32, -(i as f32)))
            .collect();
        let mut cb = CircularBuffer::<f32>::new(4);
        cb.fill_strided(&src, 0, 2);
        assert_eq!(cb.get(3), src[6]);
        cb.advance_strided(&src, 8, 2, 2);
        assert_eq!(cb.get(3), src[10]);
    }

    #[test]
    fn circular_buffer_full_advance_replaces_everything() {
        let src = data(64);
        let mut cb = CircularBuffer::<f64>::new(4);
        cb.fill_strided(&src, 0, 1);
        cb.advance_strided(&src, 10, 1, 4);
        let mut snap = vec![c64::ZERO; 4];
        cb.snapshot(&mut snap);
        assert_eq!(snap, &src[10..14]);
    }

    #[test]
    #[should_panic(expected = "advance larger than capacity")]
    fn circular_buffer_overadvance_panics() {
        let src = data(8);
        let mut cb = CircularBuffer::<f64>::new(2);
        cb.advance_strided(&src, 0, 1, 3);
    }
}
