//! Numerics substrate for the `soifft` workspace.
//!
//! This crate hosts the building blocks that every other crate leans on:
//!
//! * [`Complex`] — a complex number generic over the precision parameter
//!   [`Real`], with the concrete aliases [`c64`] (double precision, the
//!   paper's native format, 16 bytes per element) and [`c32`] (single
//!   precision, 8 bytes per element — the half-payload data path),
//! * [`real`] — the sealed [`Real`] trait (`f64` and `f32`) that threads
//!   precision through every layer above,
//! * [`simd`] — runtime-detected AVX2 kernels for the hot loops, with
//!   bit-identical scalar fallbacks,
//! * [`SoaComplex`] — "Struct of Arrays" complex storage plus conversions to
//!   and from the interleaved "Array of Structs" layout (paper §5.2.4),
//! * [`special`] — the special functions needed by the SOI window design
//!   (`erf`, `erfc`, the modified Bessel function `I₀`, `sinc`),
//! * [`transpose`] — cache-blocked matrix transposition kernels (the
//!   workhorse of the 6-step local FFT and of the local permutation that
//!   precedes the all-to-all),
//! * [`strided`] — strided gather/scatter copies,
//! * [`factor`] — small integer factorization utilities used by FFT
//!   planning,
//! * [`error`] — error norms used by tests and the accuracy benches.
//!
//! # Safety posture
//!
//! The crate is `#![deny(unsafe_code)]` with exactly one audited carve-out:
//! the [`simd`] module, which holds the `std::arch` AVX2 kernels behind
//! runtime feature detection. Every `unsafe` block in the workspace's
//! numerical core lives in that one file, each kernel is a leaf function
//! whose bounds are asserted by a safe dispatcher before it runs, and each
//! is property-tested bit-identical to the safe scalar fallback that the
//! same dispatcher uses on hosts without AVX2 (or when
//! `SOIFFT_FORCE_SCALAR=1`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod dpss;
pub mod error;
pub mod factor;
pub mod kernels;
pub mod real;
#[allow(unsafe_code)]
pub mod simd;
pub mod soa;
pub mod special;
pub mod strided;
pub mod transpose;
pub mod tridiag;

pub use complex::{c32, c64, Complex};
pub use real::Real;
pub use soa::SoaComplex;
