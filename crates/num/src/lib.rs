//! Numerics substrate for the `soifft` workspace.
//!
//! This crate hosts the building blocks that every other crate leans on:
//!
//! * [`c64`] — a double-precision complex number (the paper works
//!   exclusively in double-precision complex, 16 bytes per element),
//! * [`SoaComplex`] — "Struct of Arrays" complex storage plus conversions to
//!   and from the interleaved "Array of Structs" layout (paper §5.2.4),
//! * [`special`] — the special functions needed by the SOI window design
//!   (`erf`, `erfc`, the modified Bessel function `I₀`, `sinc`),
//! * [`transpose`] — cache-blocked matrix transposition kernels (the
//!   workhorse of the 6-step local FFT and of the local permutation that
//!   precedes the all-to-all),
//! * [`strided`] — strided gather/scatter copies,
//! * [`factor`] — small integer factorization utilities used by FFT
//!   planning,
//! * [`error`] — error norms used by tests and the accuracy benches.
//!
//! Everything is safe Rust; there is no `unsafe` anywhere in the workspace's
//! numerical core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod dpss;
pub mod error;
pub mod factor;
pub mod kernels;
pub mod soa;
pub mod special;
pub mod strided;
pub mod transpose;
pub mod tridiag;

pub use complex::c64;
pub use soa::SoaComplex;
