//! Cache-blocked matrix transposition.
//!
//! The 6-step local FFT (paper §5.2.2, Fig 4) is built around explicit
//! transposes of the data viewed as a `rows × cols` matrix: steps 1, 4 and 6
//! of the naive variant are full transposes, and the optimized variant still
//! permutes 8×8 tiles when writing results back (§5.2.4 "Step 6 performs
//! global permutation ... transpositions of 8×8 arrays"). The paper reduces
//! the per-tile memory-instruction count with Xeon Phi cross-lane
//! loads/stores; here the same trick is applied with AVX2 in-register
//! shuffles (see [`crate::simd`]) under a cache-blocked walk in
//! `TILE × TILE` tiles, with a scalar tile kernel as the bit-identical
//! fallback. All entry points are generic over the precision parameter
//! [`Real`].

use crate::complex::Complex;
use crate::real::Real;

/// Tile edge used by the blocked kernels. 8 complex doubles = 128 B = two
/// cache lines per row of a tile, matching the paper's 8×8 transposition
/// unit (a 512-bit vector holds 8 doubles).
pub const TILE: usize = 8;

/// Out-of-place transpose: `dst[c * rows + r] = src[r * cols + c]`.
///
/// `src` is `rows × cols` row-major; `dst` becomes `cols × rows` row-major.
///
/// # Panics
/// Panics if the slice lengths are not `rows * cols`.
pub fn transpose<T: Real>(src: &[Complex<T>], dst: &mut [Complex<T>], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "dst shape mismatch");
    // Blocked loop: process TILE×TILE tiles so both the source rows and the
    // destination rows touched by one tile fit in L1; each tile goes
    // through the dispatching tile kernel (AVX2 in-register shuffles when
    // available).
    let mut rb = 0;
    while rb < rows {
        let re = (rb + TILE).min(rows);
        let mut cb = 0;
        while cb < cols {
            let ce = (cb + TILE).min(cols);
            transpose_tile(
                &src[rb * cols + cb..],
                cols,
                &mut dst[cb * rows + rb..],
                rows,
                re - rb,
                ce - cb,
            );
            cb = ce;
        }
        rb = re;
    }
}

/// Naive (unblocked) transpose; kept as the reference implementation for
/// tests and as the "no locality optimization" point in ablation benches.
pub fn transpose_naive<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    rows: usize,
    cols: usize,
) {
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "dst shape mismatch");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// In-place transpose of a square `n × n` matrix, tile-blocked.
pub fn transpose_square_in_place<T: Real>(a: &mut [Complex<T>], n: usize) {
    assert_eq!(a.len(), n * n, "shape mismatch");
    let mut rb = 0;
    while rb < n {
        let re = (rb + TILE).min(n);
        // Diagonal tile: swap the upper triangle within the tile.
        for r in rb..re {
            for c in (r + 1)..re {
                a.swap(r * n + c, c * n + r);
            }
        }
        // Off-diagonal tiles: swap tile (rb,cb) with tile (cb,rb).
        let mut cb = re;
        while cb < n {
            let ce = (cb + TILE).min(n);
            for r in rb..re {
                for c in cb..ce {
                    a.swap(r * n + c, c * n + r);
                }
            }
            cb = ce;
        }
        rb = re;
    }
}

/// Transposes one `TILE × TILE` tile between two buffers with explicit
/// source/destination strides. This is the portable stand-in for the paper's
/// cross-lane 8×8 transposition kernel; the 6-step FFT's write-back
/// permutation is assembled from calls to this. Dispatches to the AVX2
/// in-register shuffle kernel when the host supports it (bit-identical to
/// the scalar path — a transpose is pure data movement).
///
/// Copies `min(TILE, rows_left) × min(TILE, cols_left)` elements.
#[inline]
pub fn transpose_tile<T: Real>(
    src: &[Complex<T>],
    src_stride: usize,
    dst: &mut [Complex<T>],
    dst_stride: usize,
    rows: usize,
    cols: usize,
) {
    T::ktranspose_tile(src, src_stride, dst, dst_stride, rows, cols);
}

/// Scalar reference tile kernel (public so the parity suite and the
/// SIMD module's edge handling can share it).
#[inline]
pub fn transpose_tile_scalar<T: Real>(
    src: &[Complex<T>],
    src_stride: usize,
    dst: &mut [Complex<T>],
    dst_stride: usize,
    rows: usize,
    cols: usize,
) {
    debug_assert!(rows <= TILE && cols <= TILE);
    for r in 0..rows {
        for c in 0..cols {
            dst[c * dst_stride + r] = src[r * src_stride + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c32, c64};

    fn mat(rows: usize, cols: usize) -> Vec<c64> {
        (0..rows * cols)
            .map(|i| c64::new(i as f64, (i * i % 97) as f64))
            .collect()
    }

    #[test]
    fn blocked_matches_naive_various_shapes() {
        for &(r, c) in &[
            (1, 1),
            (1, 17),
            (17, 1),
            (8, 8),
            (16, 32),
            (13, 7),
            (40, 24),
            (9, 64),
        ] {
            let src = mat(r, c);
            let mut a = vec![c64::ZERO; r * c];
            let mut b = vec![c64::ZERO; r * c];
            transpose(&src, &mut a, r, c);
            transpose_naive(&src, &mut b, r, c);
            assert_eq!(a, b, "shape {r}x{c}");
        }
    }

    #[test]
    fn blocked_matches_naive_f32() {
        for &(r, c) in &[(1, 1), (8, 8), (16, 32), (13, 7), (9, 64)] {
            let src: Vec<c32> = mat(r, c).iter().map(|&z| c32::from_c64(z)).collect();
            let mut a = vec![c32::ZERO; r * c];
            let mut b = vec![c32::ZERO; r * c];
            transpose(&src, &mut a, r, c);
            transpose_naive(&src, &mut b, r, c);
            assert_eq!(a, b, "shape {r}x{c}");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let (r, c) = (12, 20);
        let src = mat(r, c);
        let mut t = vec![c64::ZERO; r * c];
        let mut back = vec![c64::ZERO; r * c];
        transpose(&src, &mut t, r, c);
        transpose(&t, &mut back, c, r);
        assert_eq!(back, src);
    }

    #[test]
    fn square_in_place_matches_out_of_place() {
        for n in [1, 4, 8, 9, 16, 24, 33] {
            let src = mat(n, n);
            let mut inplace = src.clone();
            transpose_square_in_place(&mut inplace, n);
            let mut expect = vec![c64::ZERO; n * n];
            transpose_naive(&src, &mut expect, n, n);
            assert_eq!(inplace, expect, "n={n}");
        }
    }

    #[test]
    fn tile_kernel_moves_correct_elements() {
        let src = mat(TILE, TILE);
        let mut dst = vec![c64::ZERO; TILE * TILE];
        transpose_tile(&src, TILE, &mut dst, TILE, TILE, TILE);
        let mut expect = vec![c64::ZERO; TILE * TILE];
        transpose_naive(&src, &mut expect, TILE, TILE);
        assert_eq!(dst, expect);
    }

    #[test]
    fn tile_kernel_partial_tile() {
        // 3×5 corner of a larger matrix, strides differ from tile size.
        let rows = 3;
        let cols = 5;
        let src_stride = 11;
        let dst_stride = 9;
        let src: Vec<c64> = (0..src_stride * rows)
            .map(|i| c64::real(i as f64))
            .collect();
        let mut dst = vec![c64::ZERO; dst_stride * cols];
        transpose_tile(&src, src_stride, &mut dst, dst_stride, rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[c * dst_stride + r], src[r * src_stride + c]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let src = mat(4, 4);
        let mut dst = vec![c64::ZERO; 15];
        transpose(&src, &mut dst, 4, 4);
    }
}
