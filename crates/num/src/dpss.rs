//! Discrete prolate spheroidal (Slepian) sequences.
//!
//! `dpss0(n, w)` is the unit-energy length-`n` sequence maximally
//! concentrated in the frequency band `[−w, w]` (w in cycles per sample) —
//! the optimal taper for a given time-bandwidth product, which Kaiser and
//! Gaussian windows only approximate. Slepian's classic commuting-operator
//! trick makes it cheap: the DPSS is the *largest*-eigenvalue eigenvector
//! of the symmetric tridiagonal matrix
//!
//! ```text
//! T[i][i]   = ((n−1−2i)/2)² · cos(2πw)
//! T[i][i+1] = (i+1)(n−1−i)/2
//! ```
//!
//! solved by [`crate::tridiag::max_eigenpair`] in O(n) per iteration.

use crate::tridiag::max_eigenpair;

/// The zeroth-order DPSS of length `n` with half-bandwidth `w` ∈ (0, 0.5).
///
/// Returned unit-norm and positive (the ground sequence has no sign
/// changes).
pub fn dpss0(n: usize, w: f64) -> Vec<f64> {
    assert!(n >= 1, "empty sequence");
    assert!(w > 0.0 && w < 0.5, "half-bandwidth must be in (0, 0.5)");
    let c = (2.0 * std::f64::consts::PI * w).cos();
    let nf = n as f64;
    let diag: Vec<f64> = (0..n)
        .map(|i| {
            let h = (nf - 1.0 - 2.0 * i as f64) / 2.0;
            h * h * c
        })
        .collect();
    let off: Vec<f64> = (0..n.saturating_sub(1))
        .map(|i| (i as f64 + 1.0) * (nf - 1.0 - i as f64) / 2.0)
        .collect();
    let (_, v) = max_eigenpair(&diag, &off);
    v
}

/// Fraction of the sequence's energy inside `[−w, w]`, evaluated by
/// numerical integration of its squared DTFT (`grid` frequency samples of
/// the band). Close to 1 for the DPSS — used by tests and by window
/// diagnostics.
pub fn band_concentration(seq: &[f64], w: f64, grid: usize) -> f64 {
    assert!(grid >= 2);
    // Total energy (Parseval): ∫|Ŝ|²df over [−1/2,1/2] = Σ s².
    let total: f64 = seq.iter().map(|x| x * x).sum();
    // In-band energy by Simpson over [−w, w].
    let mut acc = 0.0;
    let steps = grid | 1; // odd for Simpson
    let h = 2.0 * w / (steps - 1) as f64;
    for k in 0..steps {
        let f = -w + k as f64 * h;
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (t, &s) in seq.iter().enumerate() {
            let ph = -2.0 * std::f64::consts::PI * f * t as f64;
            re += s * ph.cos();
            im += s * ph.sin();
        }
        let mag2 = re * re + im * im;
        let wgt = if k == 0 || k == steps - 1 {
            1.0
        } else if k % 2 == 1 {
            4.0
        } else {
            2.0
        };
        acc += wgt * mag2;
    }
    acc * h / 3.0 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpss_is_symmetric_positive_unit_norm() {
        let v = dpss0(65, 0.08);
        let norm: f64 = v.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        for i in 0..v.len() / 2 {
            assert!((v[i] - v[v.len() - 1 - i]).abs() < 1e-9, "asymmetry at {i}");
        }
        assert!(
            v.iter().all(|&x| x > -1e-12),
            "ground DPSS must be nonnegative"
        );
        // Peak in the middle.
        let mid = v.len() / 2;
        assert!(v[mid] >= *v.first().unwrap());
    }

    #[test]
    fn dpss_concentration_grows_with_nw() {
        // NW = 2 → ~0.9999.., NW = 4 → even closer to 1.
        let c2 = band_concentration(&dpss0(128, 2.0 / 128.0), 2.0 / 128.0, 129);
        let c4 = band_concentration(&dpss0(128, 4.0 / 128.0), 4.0 / 128.0, 129);
        assert!(c2 > 0.999, "NW=2: {c2}");
        assert!(c4 > c2, "NW=4 ({c4}) must beat NW=2 ({c2})");
        assert!(c4 > 0.999_999, "NW=4: {c4}");
    }

    #[test]
    fn dpss_beats_rectangular_taper() {
        let n = 96;
        let w = 3.0 / n as f64;
        let rect = vec![(1.0 / (n as f64)).sqrt(); n];
        let c_rect = band_concentration(&rect, w, 97);
        let c_dpss = band_concentration(&dpss0(n, w), w, 97);
        assert!(c_dpss > c_rect, "{c_dpss} vs {c_rect}");
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(dpss0(1, 0.1), vec![1.0]);
        let v2 = dpss0(2, 0.1);
        assert!((v2[0] - v2[1]).abs() < 1e-12); // symmetric pair
    }

    #[test]
    #[should_panic(expected = "half-bandwidth")]
    fn bad_bandwidth_rejected() {
        dpss0(16, 0.6);
    }
}
