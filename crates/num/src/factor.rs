//! Integer factorization utilities for FFT planning.
//!
//! FFT plans choose kernels by the factor structure of the transform length:
//! powers of two go to radix-8/4/2 ladders, smooth composites to mixed-radix
//! Cooley–Tukey, and everything else to Bluestein. The SOI plan additionally
//! validates divisibility constraints (`L | N`, `d_µ | M`, `n_µ·L | M'`).

/// Returns the prime factorization of `n` as `(prime, multiplicity)` pairs
/// in increasing prime order. `factorize(1)` is empty; `n = 0` panics.
pub fn factorize(mut n: usize) -> Vec<(usize, u32)> {
    assert!(n > 0, "cannot factorize zero");
    let mut out = Vec::new();
    let mut push = |p: usize, m: &mut u32| {
        if *m > 0 {
            out.push((p, *m));
            *m = 0;
        }
    };
    let mut m = 0u32;
    while n.is_multiple_of(2) {
        n /= 2;
        m += 1;
    }
    push(2, &mut m);
    let mut p = 3;
    while p * p <= n {
        while n.is_multiple_of(p) {
            n /= p;
            m += 1;
        }
        push(p, &mut m);
        p += 2;
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// True when `n` is a power of two (0 is not).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// ⌈log₂ n⌉ for n ≥ 1.
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1);
    if n == 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// True when every prime factor of `n` is ≤ `limit` ("`limit`-smooth").
pub fn is_smooth(n: usize, limit: usize) -> bool {
    factorize(n).iter().all(|&(p, _)| p <= limit)
}

/// Greatest common divisor.
pub fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple (panics on overflow in debug builds).
pub fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Pads a buffer stride to dodge cache-set conflicts (paper §5.2.3: "the
/// contiguous buffer is padded to avoid cache conflict misses").
///
/// Large power-of-two strides map successive rows onto the same cache
/// sets; adding one 64-byte line's worth of elements (`line_elems`)
/// de-aliases them. Strides that are not multiples of 512 elements are
/// returned unchanged.
pub fn padded_stride(len: usize, line_elems: usize) -> usize {
    assert!(line_elems > 0);
    if len >= 512 && len.is_multiple_of(512) {
        len + line_elems
    } else {
        len
    }
}

/// Splits `n` into `(a, b)` with `a * b == n` and `a` as close to `√n` as
/// possible (`a ≤ b`). Used by the 6-step FFT to pick its 2D decomposition.
pub fn balanced_split(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut best = (1, n);
    let mut a = 1;
    while a * a <= n {
        if n.is_multiple_of(a) {
            best = (a, n / a);
        }
        a += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_basics() {
        assert_eq!(factorize(1), vec![]);
        assert_eq!(factorize(2), vec![(2, 1)]);
        assert_eq!(factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
        assert_eq!(factorize(1 << 20), vec![(2, 20)]);
    }

    #[test]
    fn factorize_reconstructs() {
        for n in 1..500usize {
            let prod: usize = factorize(n).iter().map(|&(p, m)| p.pow(m)).product();
            assert_eq!(prod, n);
        }
    }

    #[test]
    fn pow2_predicates() {
        assert!(is_pow2(1));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(1023));
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn smoothness() {
        assert!(is_smooth(2 * 2 * 3 * 5, 5));
        assert!(!is_smooth(2 * 7, 5));
        assert!(is_smooth(1, 2));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn padded_stride_behaviour() {
        // Small or odd strides untouched.
        assert_eq!(padded_stride(100, 4), 100);
        assert_eq!(padded_stride(511, 4), 511);
        assert_eq!(padded_stride(768, 4), 768); // multiple of 256, not 512
                                                // Conflict-prone strides padded by one line.
        assert_eq!(padded_stride(512, 4), 516);
        assert_eq!(padded_stride(1 << 15, 4), (1 << 15) + 4);
        assert_eq!(padded_stride(1024, 8), 1032);
    }

    #[test]
    fn balanced_split_properties() {
        for n in [1usize, 2, 12, 64, 97, 4096, 1 << 15, 360] {
            let (a, b) = balanced_split(n);
            assert_eq!(a * b, n);
            assert!(a <= b);
        }
        assert_eq!(balanced_split(1 << 14), (1 << 7, 1 << 7));
        assert_eq!(balanced_split(1 << 15), (128, 256));
        assert_eq!(balanced_split(97), (1, 97));
    }
}
