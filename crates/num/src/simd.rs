//! Explicit AVX2 kernels with runtime detection and bit-identical scalar
//! fallbacks.
//!
//! This is the **only** module in the workspace that contains `unsafe`
//! code (the crate root is `#![deny(unsafe_code)]`; this module opts back
//! in via `#[allow(unsafe_code)]` on its declaration). The unsafe surface
//! is kept auditable by construction:
//!
//! * every `unsafe fn` is a leaf `#[target_feature(enable = "avx2,fma")]`
//!   kernel that only dereferences pointers derived from the slices it was
//!   handed, with bounds established by the safe dispatcher above it;
//! * loads and stores are unaligned (`loadu`/`storeu`), so no alignment
//!   precondition exists beyond the slice's own;
//! * `Complex<T>` is `#[repr(C)]` with exactly two `T` fields, so a
//!   `&[Complex<f64>]` reinterpreted as `*const f64` is a plain
//!   interleaved scalar view.
//!
//! **Bit parity.** Each SIMD kernel is bit-identical to its scalar
//! fallback on the same inputs (property-tested in
//! `tests/simd_parity.rs`): the vector lanes apply exactly the scalar
//! formula's operations (the complex multiply is built from `mul` +
//! `addsub`, never a fused contraction the scalar path lacks), the
//! accumulator *count* of the scalar fallback matches the vector lane
//! count (2 complex lanes for `c64`, 4 for `c32`), and the final
//! cross-lane combine is the same sequential expression in both paths.
//! The split-precision kernels widen `f32` operands to `f64` before any
//! arithmetic; products of widened `f32` values are exact in `f64`, so
//! there too every rounding happens at the same point in both paths.
//!
//! **Dispatch.** [`simd_active`] caches `is_x86_feature_detected!("avx2")
//! && ("fma")` once per process; setting `SOIFFT_FORCE_SCALAR=1` in the
//! environment pins the scalar fallback (used by the CI fallback job and
//! for A/B debugging). On non-x86_64 targets the dispatchers always take
//! the scalar path and no intrinsics are compiled at all.

use std::sync::OnceLock;

use crate::complex::{c32, c64};
use crate::kernels;

/// True when the process dispatches to the AVX2 kernels: x86_64 with
/// AVX2+FMA detected at runtime and `SOIFFT_FORCE_SCALAR` unset (≠ "1").
/// Decided once per process and cached.
pub fn simd_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if std::env::var_os("SOIFFT_FORCE_SCALAR").is_some_and(|v| v == "1") {
            return false;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Human-readable name of the active kernel set (for bench metadata).
pub fn kernel_backend() -> &'static str {
    if simd_active() {
        "avx2"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// Safe dispatchers. Each pairs one AVX2 kernel with its bit-identical
// scalar fallback; slice-length preconditions are asserted here, before
// any unsafe code runs.
// ---------------------------------------------------------------------------

/// `Σ t[i]·x[i]` over `c64` (two accumulator lanes).
#[inline]
pub fn dot_c64(t: &[c64], x: &[c64]) -> c64 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        return unsafe { avx2::dot_c64(t, x) };
    }
    kernels::dot_scalar(t, x)
}

/// `Σ t[i]·x[i]` over `c32` (four accumulator lanes).
#[inline]
pub fn dot_c32(t: &[c32], x: &[c32]) -> c32 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        return unsafe { avx2::dot_c32(t, x) };
    }
    dot_c32_scalar(t, x)
}

/// Split-precision inner product: `f32` operands, `f64` accumulation.
/// Operands are widened before any arithmetic, so the products are exact
/// and only the accumulation rounds.
#[inline]
pub fn dot_split(t: &[c32], x: &[c32]) -> c64 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        return unsafe { avx2::dot_split(t, x) };
    }
    dot_split_scalar(t, x)
}

/// `acc[i] += t[i]·x[i]` over `c64`.
#[inline]
pub fn axpy_pointwise_c64(acc: &mut [c64], t: &[c64], x: &[c64]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::axpy_c64(acc, t, x) };
        return;
    }
    kernels::axpy_pointwise_scalar(acc, t, x);
}

/// `acc[i] += t[i]·x[i]` over `c32`.
#[inline]
pub fn axpy_pointwise_c32(acc: &mut [c32], t: &[c32], x: &[c32]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::axpy_c32(acc, t, x) };
        return;
    }
    kernels::axpy_pointwise_scalar(acc, t, x);
}

/// Split-precision AXPY: `f64` accumulator, `f32` operands.
#[inline]
pub fn axpy_split(acc: &mut [c64], t: &[c32], x: &[c32]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::axpy_split(acc, t, x) };
        return;
    }
    axpy_split_scalar(acc, t, x);
}

/// `data[i] *= scale[i]` over `c64`.
#[inline]
pub fn mul_pointwise_c64(data: &mut [c64], scale: &[c64]) {
    assert_eq!(data.len(), scale.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::mul_c64(data, scale) };
        return;
    }
    kernels::mul_pointwise_scalar(data, scale);
}

/// `data[i] *= scale[i]` over `c32`.
#[inline]
pub fn mul_pointwise_c32(data: &mut [c32], scale: &[c32]) {
    assert_eq!(data.len(), scale.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::mul_c32(data, scale) };
        return;
    }
    kernels::mul_pointwise_scalar(data, scale);
}

/// Planar (SoA) pointwise multiply: `(a_re, a_im) *= (b_re, b_im)`
/// element-wise, operating on split real/imaginary arrays. The planar
/// layout needs no shuffles at all — each vector op is 4 (f64) or 8
/// (f32) independent lanes — which is why [`crate::soa::SoaComplex`]
/// exists.
#[inline]
pub fn mul_pointwise_planar_f64(are: &mut [f64], aim: &mut [f64], bre: &[f64], bim: &[f64]) {
    let n = are.len();
    assert!(
        aim.len() == n && bre.len() == n && bim.len() == n,
        "length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::mul_planar_f64(are, aim, bre, bim) };
        return;
    }
    mul_pointwise_planar_scalar(are, aim, bre, bim);
}

/// Scalar reference for [`mul_pointwise_planar_f64`] (public for parity
/// tests).
pub fn mul_pointwise_planar_scalar(are: &mut [f64], aim: &mut [f64], bre: &[f64], bim: &[f64]) {
    for i in 0..are.len() {
        let re = are[i] * bre[i] - aim[i] * bim[i];
        let im = are[i] * bim[i] + aim[i] * bre[i];
        are[i] = re;
        aim[i] = im;
    }
}

/// Tile transpose over `c64` (≤ 8×8, explicit strides).
#[inline]
pub fn transpose_tile_c64(
    src: &[c64],
    src_stride: usize,
    dst: &mut [c64],
    dst_stride: usize,
    rows: usize,
    cols: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() && rows >= 2 && cols >= 2 {
        // SAFETY: avx2+fma verified by `simd_active`; index bounds are
        // identical to the scalar path's (checked slice indexing is used
        // for edge elements, vector spans are subsets of those bounds,
        // re-checked inside the kernel).
        unsafe { avx2::transpose_tile_c64(src, src_stride, dst, dst_stride, rows, cols) };
        return;
    }
    crate::transpose::transpose_tile_scalar(src, src_stride, dst, dst_stride, rows, cols);
}

/// Tile transpose over `c32` (≤ 8×8, explicit strides).
#[inline]
pub fn transpose_tile_c32(
    src: &[c32],
    src_stride: usize,
    dst: &mut [c32],
    dst_stride: usize,
    rows: usize,
    cols: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() && rows >= 4 && cols >= 4 {
        // SAFETY: as for `transpose_tile_c64`.
        unsafe { avx2::transpose_tile_c32(src, src_stride, dst, dst_stride, rows, cols) };
        return;
    }
    crate::transpose::transpose_tile_scalar(src, src_stride, dst, dst_stride, rows, cols);
}

/// Element-wise promotion `c32` → `c64` (`dst.len() == src.len()`).
/// Widening is exact, so SIMD/scalar bit-parity is trivial; the vector
/// path exists for bandwidth (the mixed-precision pipeline promotes the
/// whole received frontier).
#[inline]
pub fn promote_c32_c64(src: &[c32], dst: &mut [c64]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; equal lengths above.
        unsafe { avx2::promote_c32_c64(src, dst) };
        return;
    }
    promote_c32_c64_scalar(src, dst);
}

/// Unpacks half-width wire data: each `c64` carries two bit-packed `c32`
/// (one per `f64` field, high 32 bits = real). Fills all of `dst`,
/// dropping the pad `c32` of the final element when `dst.len()` is odd;
/// requires `src.len() == dst.len().div_ceil(2)`. Pure bit movement —
/// SIMD and scalar are identical by construction.
#[inline]
pub fn unpack_c32_pairs(src: &[c64], dst: &mut [c32]) {
    assert_eq!(src.len(), dst.len().div_ceil(2), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: avx2+fma verified by `simd_active`; lengths above.
        unsafe { avx2::unpack_c32_pairs(src, dst) };
        return;
    }
    unpack_c32_pairs_scalar(src, dst);
}

// ---------------------------------------------------------------------------
// Scalar fallbacks whose accumulator structure mirrors the vector lanes
// (the generic fallbacks in `kernels` cover the order-insensitive
// element-wise kernels). Public so the parity suite can pin SIMD == scalar
// without toggling process-global dispatch state.
// ---------------------------------------------------------------------------

/// Scalar reference for [`promote_c32_c64`].
pub fn promote_c32_c64_scalar(src: &[c32], dst: &mut [c64]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_c64();
    }
}

/// Scalar reference for [`unpack_c32_pairs`].
pub fn unpack_c32_pairs_scalar(src: &[c64], dst: &mut [c32]) {
    assert_eq!(src.len(), dst.len().div_ceil(2), "length mismatch");
    for (pair, v) in dst.chunks_mut(2).zip(src) {
        let re = v.re.to_bits();
        pair[0] = c32::new(f32::from_bits((re >> 32) as u32), f32::from_bits(re as u32));
        if let Some(slot) = pair.get_mut(1) {
            let im = v.im.to_bits();
            *slot = c32::new(f32::from_bits((im >> 32) as u32), f32::from_bits(im as u32));
        }
    }
}

/// Scalar `c32` dot with the four-lane accumulator structure of the AVX2
/// kernel (a `__m256` holds 4 complex singles).
pub fn dot_c32_scalar(t: &[c32], x: &[c32]) -> c32 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    let mut acc = [c32::ZERO; 4];
    let n4 = t.len() / 4 * 4;
    let mut i = 0;
    while i < n4 {
        acc[0] += t[i] * x[i];
        acc[1] += t[i + 1] * x[i + 1];
        acc[2] += t[i + 2] * x[i + 2];
        acc[3] += t[i + 3] * x[i + 3];
        i += 4;
    }
    for (lane, j) in (n4..t.len()).enumerate() {
        acc[lane] += t[j] * x[j];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Scalar split-precision dot with the two-lane accumulator structure of
/// the AVX2 kernel (a `__m256d` holds 2 complex doubles).
pub fn dot_split_scalar(t: &[c32], x: &[c32]) -> c64 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    let mut acc0 = c64::ZERO;
    let mut acc1 = c64::ZERO;
    let n2 = t.len() / 2 * 2;
    let mut i = 0;
    while i < n2 {
        acc0 += t[i].to_c64() * x[i].to_c64();
        acc1 += t[i + 1].to_c64() * x[i + 1].to_c64();
        i += 2;
    }
    if t.len() % 2 == 1 {
        let j = t.len() - 1;
        acc0 += t[j].to_c64() * x[j].to_c64();
    }
    acc0 + acc1
}

/// Scalar split-precision AXPY (element-wise, order-insensitive).
pub fn axpy_split_scalar(acc: &mut [c64], t: &[c32], x: &[c32]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    for ((a, &tv), &xv) in acc.iter_mut().zip(t).zip(x) {
        *a += tv.to_c64() * xv.to_c64();
    }
}

// ---------------------------------------------------------------------------
// The AVX2 kernels themselves.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// Interleaved complex multiply, two `c64` per vector. Bit-identical
    /// to the scalar formula `(a.re·b.re − a.im·b.im, a.re·b.im +
    /// a.im·b.re)`: products commute bitwise, `addsub` performs the same
    /// subtract/add, and FP addition commutes bitwise.
    #[inline(always)]
    unsafe fn cmul_pd(a: __m256d, b: __m256d) -> __m256d {
        let b_re = _mm256_movedup_pd(b); // [b.re, b.re]×2
        let b_im = _mm256_permute_pd(b, 0xF); // [b.im, b.im]×2
        let t1 = _mm256_mul_pd(a, b_re); // [a.re·b.re, a.im·b.re]
        let a_sw = _mm256_permute_pd(a, 0x5); // [a.im, a.re]×2
        let t2 = _mm256_mul_pd(a_sw, b_im); // [a.im·b.im, a.re·b.im]
        _mm256_addsub_pd(t1, t2)
    }

    /// Interleaved complex multiply, four `c32` per vector.
    #[inline(always)]
    unsafe fn cmul_ps(a: __m256, b: __m256) -> __m256 {
        let b_re = _mm256_moveldup_ps(b);
        let b_im = _mm256_movehdup_ps(b);
        let t1 = _mm256_mul_ps(a, b_re);
        let a_sw = _mm256_permute_ps(a, 0xB1);
        let t2 = _mm256_mul_ps(a_sw, b_im);
        _mm256_addsub_ps(t1, t2)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_c64(t: &[c64], x: &[c64]) -> c64 {
        let n = t.len();
        let n2 = n / 2 * 2;
        let tp = t.as_ptr() as *const f64;
        let xp = x.as_ptr() as *const f64;
        let mut vacc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n2 {
            let a = _mm256_loadu_pd(tp.add(2 * i));
            let b = _mm256_loadu_pd(xp.add(2 * i));
            vacc = _mm256_add_pd(vacc, cmul_pd(a, b));
            i += 2;
        }
        let mut acc = [c64::ZERO; 2];
        _mm256_storeu_pd(acc.as_mut_ptr() as *mut f64, vacc);
        if n % 2 == 1 {
            acc[0] += t[n - 1] * x[n - 1];
        }
        acc[0] + acc[1]
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_c32(t: &[c32], x: &[c32]) -> c32 {
        let n = t.len();
        let n4 = n / 4 * 4;
        let tp = t.as_ptr() as *const f32;
        let xp = x.as_ptr() as *const f32;
        let mut vacc = _mm256_setzero_ps();
        let mut i = 0;
        while i < n4 {
            let a = _mm256_loadu_ps(tp.add(2 * i));
            let b = _mm256_loadu_ps(xp.add(2 * i));
            vacc = _mm256_add_ps(vacc, cmul_ps(a, b));
            i += 4;
        }
        let mut acc = [c32::ZERO; 4];
        _mm256_storeu_ps(acc.as_mut_ptr() as *mut f32, vacc);
        for (lane, j) in (n4..n).enumerate() {
            acc[lane] += t[j] * x[j];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_split(t: &[c32], x: &[c32]) -> c64 {
        let n = t.len();
        let n2 = n / 2 * 2;
        let tp = t.as_ptr() as *const f32;
        let xp = x.as_ptr() as *const f32;
        let mut vacc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n2 {
            // Two c32 = one __m128 of f32, widened to a __m256d of f64.
            let a = _mm256_cvtps_pd(_mm_loadu_ps(tp.add(2 * i)));
            let b = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(2 * i)));
            vacc = _mm256_add_pd(vacc, cmul_pd(a, b));
            i += 2;
        }
        let mut acc = [c64::ZERO; 2];
        _mm256_storeu_pd(acc.as_mut_ptr() as *mut f64, vacc);
        if n % 2 == 1 {
            acc[0] += t[n - 1].to_c64() * x[n - 1].to_c64();
        }
        acc[0] + acc[1]
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_c64(acc: &mut [c64], t: &[c64], x: &[c64]) {
        let n = acc.len();
        let n2 = n / 2 * 2;
        let ap = acc.as_mut_ptr() as *mut f64;
        let tp = t.as_ptr() as *const f64;
        let xp = x.as_ptr() as *const f64;
        let mut i = 0;
        while i < n2 {
            let a = _mm256_loadu_pd(tp.add(2 * i));
            let b = _mm256_loadu_pd(xp.add(2 * i));
            let c = _mm256_loadu_pd(ap.add(2 * i));
            _mm256_storeu_pd(ap.add(2 * i), _mm256_add_pd(c, cmul_pd(a, b)));
            i += 2;
        }
        if n % 2 == 1 {
            acc[n - 1] += t[n - 1] * x[n - 1];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_c32(acc: &mut [c32], t: &[c32], x: &[c32]) {
        let n = acc.len();
        let n4 = n / 4 * 4;
        let ap = acc.as_mut_ptr() as *mut f32;
        let tp = t.as_ptr() as *const f32;
        let xp = x.as_ptr() as *const f32;
        let mut i = 0;
        while i < n4 {
            let a = _mm256_loadu_ps(tp.add(2 * i));
            let b = _mm256_loadu_ps(xp.add(2 * i));
            let c = _mm256_loadu_ps(ap.add(2 * i));
            _mm256_storeu_ps(ap.add(2 * i), _mm256_add_ps(c, cmul_ps(a, b)));
            i += 4;
        }
        for j in n4..n {
            acc[j] += t[j] * x[j];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_split(acc: &mut [c64], t: &[c32], x: &[c32]) {
        let n = acc.len();
        let n2 = n / 2 * 2;
        let ap = acc.as_mut_ptr() as *mut f64;
        let tp = t.as_ptr() as *const f32;
        let xp = x.as_ptr() as *const f32;
        let mut i = 0;
        while i < n2 {
            let a = _mm256_cvtps_pd(_mm_loadu_ps(tp.add(2 * i)));
            let b = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(2 * i)));
            let c = _mm256_loadu_pd(ap.add(2 * i));
            _mm256_storeu_pd(ap.add(2 * i), _mm256_add_pd(c, cmul_pd(a, b)));
            i += 2;
        }
        if n % 2 == 1 {
            acc[n - 1] += t[n - 1].to_c64() * x[n - 1].to_c64();
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mul_c64(data: &mut [c64], scale: &[c64]) {
        let n = data.len();
        let n2 = n / 2 * 2;
        let dp = data.as_mut_ptr() as *mut f64;
        let sp = scale.as_ptr() as *const f64;
        let mut i = 0;
        while i < n2 {
            let d = _mm256_loadu_pd(dp.add(2 * i));
            let s = _mm256_loadu_pd(sp.add(2 * i));
            _mm256_storeu_pd(dp.add(2 * i), cmul_pd(d, s));
            i += 2;
        }
        if n % 2 == 1 {
            data[n - 1] *= scale[n - 1];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mul_c32(data: &mut [c32], scale: &[c32]) {
        let n = data.len();
        let n4 = n / 4 * 4;
        let dp = data.as_mut_ptr() as *mut f32;
        let sp = scale.as_ptr() as *const f32;
        let mut i = 0;
        while i < n4 {
            let d = _mm256_loadu_ps(dp.add(2 * i));
            let s = _mm256_loadu_ps(sp.add(2 * i));
            _mm256_storeu_ps(dp.add(2 * i), cmul_ps(d, s));
            i += 4;
        }
        for j in n4..n {
            data[j] *= scale[j];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mul_planar_f64(
        are: &mut [f64],
        aim: &mut [f64],
        bre: &[f64],
        bim: &[f64],
    ) {
        let n = are.len();
        let n4 = n / 4 * 4;
        let arp = are.as_mut_ptr();
        let aip = aim.as_mut_ptr();
        let brp = bre.as_ptr();
        let bip = bim.as_ptr();
        let mut i = 0;
        while i < n4 {
            let ar = _mm256_loadu_pd(arp.add(i));
            let ai = _mm256_loadu_pd(aip.add(i));
            let br = _mm256_loadu_pd(brp.add(i));
            let bi = _mm256_loadu_pd(bip.add(i));
            // Same op sequence as the scalar path: two products, one
            // subtract / one add — no contraction.
            let re = _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi));
            let im = _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br));
            _mm256_storeu_pd(arp.add(i), re);
            _mm256_storeu_pd(aip.add(i), im);
            i += 4;
        }
        for j in n4..n {
            let re = are[j] * bre[j] - aim[j] * bim[j];
            let im = are[j] * bim[j] + aim[j] * bre[j];
            are[j] = re;
            aim[j] = im;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn transpose_tile_c64(
        src: &[c64],
        src_stride: usize,
        dst: &mut [c64],
        dst_stride: usize,
        rows: usize,
        cols: usize,
    ) {
        debug_assert!(rows <= crate::transpose::TILE && cols <= crate::transpose::TILE);
        let r2 = rows / 2 * 2;
        let c2 = cols / 2 * 2;
        let sp = src.as_ptr() as *const f64;
        let dp = dst.as_mut_ptr() as *mut f64;
        // Bounds: the scalar reference reads src[r*ss + c] and writes
        // dst[c*ds + r] for r < rows, c < cols; assert the extreme
        // indices once so the raw pointer arithmetic below stays inside
        // the same envelope.
        if rows > 0 && cols > 0 {
            assert!((rows - 1) * src_stride + cols <= src.len(), "src too short");
            assert!((cols - 1) * dst_stride + rows <= dst.len(), "dst too short");
        }
        let mut r = 0;
        while r < r2 {
            let mut c = 0;
            while c < c2 {
                // 2×2 complex tile: pure 128-bit lane moves, bit-exact.
                let v0 = _mm256_loadu_pd(sp.add(2 * (r * src_stride + c)));
                let v1 = _mm256_loadu_pd(sp.add(2 * ((r + 1) * src_stride + c)));
                let lo = _mm256_permute2f128_pd(v0, v1, 0x20);
                let hi = _mm256_permute2f128_pd(v0, v1, 0x31);
                _mm256_storeu_pd(dp.add(2 * (c * dst_stride + r)), lo);
                _mm256_storeu_pd(dp.add(2 * ((c + 1) * dst_stride + r)), hi);
                c += 2;
            }
            for c in c2..cols {
                dst[c * dst_stride + r] = src[r * src_stride + c];
                dst[c * dst_stride + r + 1] = src[(r + 1) * src_stride + c];
            }
            r += 2;
        }
        for r in r2..rows {
            for c in 0..cols {
                dst[c * dst_stride + r] = src[r * src_stride + c];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn transpose_tile_c32(
        src: &[c32],
        src_stride: usize,
        dst: &mut [c32],
        dst_stride: usize,
        rows: usize,
        cols: usize,
    ) {
        debug_assert!(rows <= crate::transpose::TILE && cols <= crate::transpose::TILE);
        let r4 = rows / 4 * 4;
        let c4 = cols / 4 * 4;
        // One c32 is 8 bytes — exactly one f64 lane — so a 4×4 complex
        // tile transposes with the classic 4×4 __m256d shuffle network
        // (pure moves, never arithmetic on the reinterpreted bits).
        let sp = src.as_ptr() as *const f64;
        let dp = dst.as_mut_ptr() as *mut f64;
        if rows > 0 && cols > 0 {
            assert!((rows - 1) * src_stride + cols <= src.len(), "src too short");
            assert!((cols - 1) * dst_stride + rows <= dst.len(), "dst too short");
        }
        let mut r = 0;
        while r < r4 {
            let mut c = 0;
            while c < c4 {
                let r0 = _mm256_loadu_pd(sp.add(r * src_stride + c));
                let r1 = _mm256_loadu_pd(sp.add((r + 1) * src_stride + c));
                let r2 = _mm256_loadu_pd(sp.add((r + 2) * src_stride + c));
                let r3 = _mm256_loadu_pd(sp.add((r + 3) * src_stride + c));
                let t0 = _mm256_unpacklo_pd(r0, r1);
                let t1 = _mm256_unpackhi_pd(r0, r1);
                let t2 = _mm256_unpacklo_pd(r2, r3);
                let t3 = _mm256_unpackhi_pd(r2, r3);
                let o0 = _mm256_permute2f128_pd(t0, t2, 0x20);
                let o1 = _mm256_permute2f128_pd(t1, t3, 0x20);
                let o2 = _mm256_permute2f128_pd(t0, t2, 0x31);
                let o3 = _mm256_permute2f128_pd(t1, t3, 0x31);
                _mm256_storeu_pd(dp.add(c * dst_stride + r), o0);
                _mm256_storeu_pd(dp.add((c + 1) * dst_stride + r), o1);
                _mm256_storeu_pd(dp.add((c + 2) * dst_stride + r), o2);
                _mm256_storeu_pd(dp.add((c + 3) * dst_stride + r), o3);
                c += 4;
            }
            for c in c4..cols {
                for dr in 0..4 {
                    dst[c * dst_stride + r + dr] = src[(r + dr) * src_stride + c];
                }
            }
            r += 4;
        }
        for r in r4..rows {
            for c in 0..cols {
                dst[c * dst_stride + r] = src[r * src_stride + c];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn promote_c32_c64(src: &[c32], dst: &mut [c64]) {
        let n = src.len();
        let n4 = n / 4 * 4;
        let sp = src.as_ptr() as *const f32;
        let dp = dst.as_mut_ptr() as *mut f64;
        let mut i = 0;
        while i < n4 {
            // 4 c32 = 8 f32 = one __m256; widen each 128-bit half.
            let v = _mm256_loadu_ps(sp.add(2 * i));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
            _mm256_storeu_pd(dp.add(2 * i), lo);
            _mm256_storeu_pd(dp.add(2 * i + 4), hi);
            i += 4;
        }
        for j in n4..n {
            dst[j] = src[j].to_c64();
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn unpack_c32_pairs(src: &[c64], dst: &mut [c32]) {
        // Wire layout: each u64 field holds (re_bits << 32) | im_bits,
        // so little-endian memory reads [im, re] per u32 pair — one
        // adjacent-u32 swap per 64-bit lane recovers c32 order. Two wire
        // c64 (32 bytes) become four dst c32 (32 bytes): a straight
        // shuffled copy, no arithmetic on the reinterpreted bits.
        let whole = dst.len() / 4 * 2; // wire elems the vector loop consumes
        let mut w = 0;
        while w < whole {
            let v = _mm256_loadu_si256(src.as_ptr().add(w) as *const __m256i);
            let s = _mm256_shuffle_epi32(v, 0b10_11_00_01);
            _mm256_storeu_si256(dst.as_mut_ptr().add(2 * w) as *mut __m256i, s);
            w += 2;
        }
        let mut d = 2 * whole;
        while d < dst.len() {
            let bits = if d.is_multiple_of(2) {
                src[d / 2].re.to_bits()
            } else {
                src[d / 2].im.to_bits()
            };
            dst[d] = c32::new(
                f32::from_bits((bits >> 32) as u32),
                f32::from_bits(bits as u32),
            );
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v64(n: usize, k: f64) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((i as f64 * 0.37 + k).sin(), (i as f64 * 0.11 - k).cos()))
            .collect()
    }

    fn v32(n: usize, k: f64) -> Vec<c32> {
        v64(n, k).iter().map(|&z| c32::from_c64(z)).collect()
    }

    #[test]
    fn dispatch_matches_scalar_bitwise_c64() {
        for n in [0usize, 1, 2, 3, 7, 8, 17, 64, 129] {
            let t = v64(n, 0.3);
            let x = v64(n, 1.7);
            assert_eq!(dot_c64(&t, &x), kernels::dot_scalar(&t, &x), "dot n={n}");

            let mut a = v64(n, 2.1);
            let mut b = a.clone();
            axpy_pointwise_c64(&mut a, &t, &x);
            kernels::axpy_pointwise_scalar(&mut b, &t, &x);
            assert_eq!(a, b, "axpy n={n}");

            let mut a = v64(n, 0.9);
            let mut b = a.clone();
            mul_pointwise_c64(&mut a, &x);
            kernels::mul_pointwise_scalar(&mut b, &x);
            assert_eq!(a, b, "mul n={n}");
        }
    }

    #[test]
    fn conversion_kernels_match_scalar_bitwise() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 19, 64, 131] {
            let s = v32(n, 0.7);
            let mut a = vec![c64::ZERO; n];
            let mut b = a.clone();
            promote_c32_c64(&s, &mut a);
            promote_c32_c64_scalar(&s, &mut b);
            assert_eq!(a, b, "promote n={n}");

            // Wire elements bit-pack two c32 each (pad on odd counts).
            let vals = v32(n, 1.3);
            let wire: Vec<c64> = vals
                .chunks(2)
                .map(|pair| {
                    let lo = pair[0];
                    let hi = pair.get(1).copied().unwrap_or(c32::ZERO);
                    let re = ((lo.re.to_bits() as u64) << 32) | lo.im.to_bits() as u64;
                    let im = ((hi.re.to_bits() as u64) << 32) | hi.im.to_bits() as u64;
                    c64::new(f64::from_bits(re), f64::from_bits(im))
                })
                .collect();
            let mut a = vec![c32::ZERO; n];
            let mut b = a.clone();
            unpack_c32_pairs(&wire, &mut a);
            unpack_c32_pairs_scalar(&wire, &mut b);
            assert_eq!(a, b, "unpack n={n}");
            assert_eq!(a, vals, "unpack round-trip n={n}");
        }
    }

    #[test]
    fn dispatch_matches_scalar_bitwise_c32() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 19, 64, 131] {
            let t = v32(n, 0.3);
            let x = v32(n, 1.7);
            assert_eq!(dot_c32(&t, &x), dot_c32_scalar(&t, &x), "dot n={n}");
            assert_eq!(dot_split(&t, &x), dot_split_scalar(&t, &x), "split n={n}");

            let mut a = v32(n, 2.1);
            let mut b = a.clone();
            axpy_pointwise_c32(&mut a, &t, &x);
            kernels::axpy_pointwise_scalar(&mut b, &t, &x);
            assert_eq!(a, b, "axpy n={n}");

            let mut a = v64(n, 2.1);
            let mut b = a.clone();
            axpy_split(&mut a, &t, &x);
            axpy_split_scalar(&mut b, &t, &x);
            assert_eq!(a, b, "axpy_split n={n}");

            let mut a = v32(n, 0.9);
            let mut b = a.clone();
            mul_pointwise_c32(&mut a, &x);
            kernels::mul_pointwise_scalar(&mut b, &x);
            assert_eq!(a, b, "mul n={n}");
        }
    }

    #[test]
    fn transpose_tiles_match_scalar() {
        for &(rows, cols) in &[
            (1, 1),
            (2, 2),
            (3, 5),
            (4, 4),
            (5, 4),
            (8, 8),
            (7, 8),
            (8, 3),
        ] {
            let ss = cols + 3;
            let ds = rows + 2;
            let src64: Vec<c64> = (0..ss * rows)
                .map(|i| c64::new(i as f64, -(i as f64)))
                .collect();
            let mut d1 = vec![c64::ZERO; ds * cols];
            let mut d2 = d1.clone();
            transpose_tile_c64(&src64, ss, &mut d1, ds, rows, cols);
            crate::transpose::transpose_tile_scalar(&src64, ss, &mut d2, ds, rows, cols);
            assert_eq!(d1, d2, "c64 {rows}x{cols}");

            let src32: Vec<c32> = src64.iter().map(|&z| c32::from_c64(z)).collect();
            let mut d1 = vec![c32::ZERO; ds * cols];
            let mut d2 = d1.clone();
            transpose_tile_c32(&src32, ss, &mut d1, ds, rows, cols);
            crate::transpose::transpose_tile_scalar(&src32, ss, &mut d2, ds, rows, cols);
            assert_eq!(d1, d2, "c32 {rows}x{cols}");
        }
    }

    #[test]
    fn planar_mul_matches_scalar() {
        for n in [0usize, 1, 3, 4, 5, 16, 33] {
            let bre: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let bim: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let mut ar1: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let mut ai1: Vec<f64> = (0..n).map(|i| -(i as f64) * 0.2).collect();
            let mut ar2 = ar1.clone();
            let mut ai2 = ai1.clone();
            mul_pointwise_planar_f64(&mut ar1, &mut ai1, &bre, &bim);
            mul_pointwise_planar_scalar(&mut ar2, &mut ai2, &bre, &bim);
            assert_eq!(ar1, ar2, "re n={n}");
            assert_eq!(ai1, ai2, "im n={n}");
        }
    }

    #[test]
    fn split_products_are_exact() {
        // f32 × f32 widened to f64 is exact: the split dot of conjugate
        // pairs equals the sum of exact norm-squares.
        let t = v32(9, 0.0);
        let conj: Vec<c32> = t.iter().map(|z| z.conj()).collect();
        let got = dot_split(&t, &conj);
        let want: f64 = t
            .iter()
            .map(|z| {
                let w = z.to_c64();
                w.re * w.re + w.im * w.im
            })
            .sum();
        assert!((got.re - want).abs() < 1e-12 * want.abs());
    }

    #[test]
    fn backend_name_is_consistent() {
        let name = kernel_backend();
        assert!(name == "avx2" || name == "scalar");
        assert_eq!(name == "avx2", simd_active());
    }
}
