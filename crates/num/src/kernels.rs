//! Vectorizable complex micro-kernels.
//!
//! The inner loops of the convolution (length-B inner products, paper
//! §5.3), demodulation (pointwise multiply, §5.2.4) and twiddle passes are
//! all instances of four primitives. Centralizing them keeps every hot
//! loop behind one API: the public functions here are generic over the
//! precision parameter [`Real`] and dispatch per-type to the explicit
//! AVX2 kernels in [`crate::simd`] when the host supports them, falling
//! back to the scalar reference implementations below (which are also
//! exported, as `*_scalar`, so the parity suite can compare both paths in
//! one process).
//!
//! The `*_split` kernels are the third precision mode: `f32` operands
//! (half the memory traffic of the tap and signal arrays) accumulated in
//! `f64` (products of widened singles are exact in double, so only the
//! accumulation rounds).

use crate::complex::{c32, c64, Complex};
use crate::real::Real;
use crate::simd;

/// `acc[i] += t[i] * x[i]` (the convolution's tap-block AXPY).
#[inline]
pub fn axpy_pointwise<T: Real>(acc: &mut [Complex<T>], t: &[Complex<T>], x: &[Complex<T>]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    T::kaxpy_pointwise(acc, t, x);
}

/// Scalar reference for [`axpy_pointwise`] (element-wise, so SIMD lane
/// order cannot change results; bit-identical to the AVX2 kernel by
/// construction).
#[inline]
pub fn axpy_pointwise_scalar<T: Real>(acc: &mut [Complex<T>], t: &[Complex<T>], x: &[Complex<T>]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    for ((a, &tv), &xv) in acc.iter_mut().zip(t).zip(x) {
        *a += tv * xv;
    }
}

/// Complex inner product `Σ t[i]·x[i]` (no conjugation — the convolution's
/// row form).
#[inline]
pub fn dot<T: Real>(t: &[Complex<T>], x: &[Complex<T>]) -> Complex<T> {
    assert_eq!(t.len(), x.len(), "length mismatch");
    T::kdot(t, x)
}

/// Scalar reference for the `f64` [`dot`]: two independent accumulators
/// break the add-latency chain, and match the two complex lanes of a
/// `__m256d` so the AVX2 kernel reproduces it bit-for-bit.
#[inline]
pub fn dot_scalar<T: Real>(t: &[Complex<T>], x: &[Complex<T>]) -> Complex<T> {
    assert_eq!(t.len(), x.len(), "length mismatch");
    let mut acc0 = Complex::<T>::ZERO;
    let mut acc1 = Complex::<T>::ZERO;
    let mut it = t.chunks_exact(2).zip(x.chunks_exact(2));
    for (tp, xp) in &mut it {
        acc0 += tp[0] * xp[0];
        acc1 += tp[1] * xp[1];
    }
    if t.len() % 2 == 1 {
        acc0 += t[t.len() - 1] * x[x.len() - 1];
    }
    acc0 + acc1
}

/// Strided inner product `Σ t[i]·x[i·stride]` (the interchanged
/// convolution's column form).
#[inline]
pub fn dot_strided<T: Real>(t: &[Complex<T>], x: &[Complex<T>], stride: usize) -> Complex<T> {
    assert!(stride >= 1);
    assert!(
        x.len() > (t.len().max(1) - 1) * stride || t.is_empty(),
        "x too short"
    );
    let mut acc = Complex::<T>::ZERO;
    let mut idx = 0;
    for &tv in t {
        acc += tv * x[idx];
        idx += stride;
    }
    acc
}

/// `data[i] *= scale[i]` (demodulation / twiddle application).
#[inline]
pub fn mul_pointwise<T: Real>(data: &mut [Complex<T>], scale: &[Complex<T>]) {
    assert_eq!(data.len(), scale.len(), "length mismatch");
    T::kmul_pointwise(data, scale);
}

/// Scalar reference for [`mul_pointwise`].
#[inline]
pub fn mul_pointwise_scalar<T: Real>(data: &mut [Complex<T>], scale: &[Complex<T>]) {
    assert_eq!(data.len(), scale.len(), "length mismatch");
    for (d, &s) in data.iter_mut().zip(scale) {
        *d *= s;
    }
}

/// `data[i] *= s` for a real scalar (normalization passes). The scalar is
/// supplied in `f64` and demoted once, so an `f32` normalization factor is
/// correctly rounded rather than computed in single precision.
#[inline]
pub fn scale_real<T: Real>(data: &mut [Complex<T>], s: f64) {
    let s = T::from_f64(s);
    for d in data.iter_mut() {
        *d = d.scale(s);
    }
}

/// Conjugates in place (the inverse-via-conjugation wrapper's passes).
#[inline]
pub fn conj_in_place<T: Real>(data: &mut [Complex<T>]) {
    for d in data.iter_mut() {
        *d = d.conj();
    }
}

// ---------------------------------------------------------------------------
// Split precision: f32 operands, f64 accumulation.
// ---------------------------------------------------------------------------

/// Split-precision inner product: `f32` operands widened to `f64` before
/// any arithmetic, accumulated in `f64`. Products are exact (24-bit
/// significands multiply into 53 bits), so the result carries only
/// accumulation rounding plus the input quantization.
#[inline]
pub fn dot_split(t: &[c32], x: &[c32]) -> c64 {
    simd::dot_split(t, x)
}

/// Split-precision strided inner product (the interchanged convolution's
/// column form at reduced operand width).
#[inline]
pub fn dot_strided_split(t: &[c32], x: &[c32], stride: usize) -> c64 {
    assert!(stride >= 1);
    assert!(
        x.len() > (t.len().max(1) - 1) * stride || t.is_empty(),
        "x too short"
    );
    let mut acc = c64::ZERO;
    let mut idx = 0;
    for &tv in t {
        acc += tv.to_c64() * x[idx].to_c64();
        idx += stride;
    }
    acc
}

/// Split-precision AXPY: `f64` accumulator, `f32` operands.
#[inline]
pub fn axpy_split(acc: &mut [c64], t: &[c32], x: &[c32]) {
    simd::axpy_split(acc, t, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, k: f64) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new(i as f64 * k, k - i as f64))
            .collect()
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        let t = v(13, 0.5);
        let x = v(13, -1.5);
        let mut acc = v(13, 2.0);
        let mut expect = acc.clone();
        axpy_pointwise(&mut acc, &t, &x);
        for i in 0..13 {
            expect[i] += t[i] * x[i];
        }
        assert_eq!(acc, expect);
    }

    #[test]
    fn dot_matches_naive_for_even_and_odd_lengths() {
        for n in [0usize, 1, 2, 7, 8, 33] {
            let t = v(n, 0.3);
            let x = v(n, -0.7);
            let naive: c64 = t.iter().zip(&x).map(|(&a, &b)| a * b).sum();
            let got = dot(&t, &x);
            assert!((got - naive).abs() < 1e-10 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn dot_strided_matches_dense_gather() {
        let t = v(9, 1.1);
        let x = v(9 * 5, 0.2);
        let dense: Vec<c64> = (0..9).map(|i| x[i * 5]).collect();
        let want = dot(&t, &dense);
        let got = dot_strided(&t, &x, 5);
        assert!((got - want).abs() < 1e-10);
        // Unit stride degenerates to dot.
        let got1 = dot_strided(&t, &x[..9], 1);
        assert!((got1 - dot(&t, &x[..9])).abs() < 1e-12);
    }

    #[test]
    fn pointwise_and_scale() {
        let mut d = v(6, 1.0);
        let s = v(6, -2.0);
        let expect: Vec<c64> = d.iter().zip(&s).map(|(&a, &b)| a * b).collect();
        mul_pointwise(&mut d, &s);
        assert_eq!(d, expect);

        let mut d = v(5, 3.0);
        let expect: Vec<c64> = d.iter().map(|&z| z * 0.5).collect();
        scale_real(&mut d, 0.5);
        assert_eq!(d, expect);
    }

    #[test]
    fn conj_in_place_is_involution() {
        let orig = v(8, 0.9);
        let mut d = orig.clone();
        conj_in_place(&mut d);
        assert!(d.iter().zip(&orig).all(|(a, b)| *a == b.conj()));
        conj_in_place(&mut d);
        assert_eq!(d, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut a = v(3, 1.0);
        axpy_pointwise(&mut a, &v(4, 1.0), &v(3, 1.0));
    }

    #[test]
    fn f32_kernels_mirror_f64() {
        let t64 = v(11, 0.4);
        let x64 = v(11, -0.9);
        let t32: Vec<c32> = t64.iter().map(|&z| c32::from_c64(z)).collect();
        let x32: Vec<c32> = x64.iter().map(|&z| c32::from_c64(z)).collect();
        let got = dot(&t32, &x32).to_c64();
        let want = dot(&t64, &x64);
        assert!((got - want).abs() < 1e-4 * (1.0 + want.abs()));
    }

    #[test]
    fn split_dot_is_more_accurate_than_f32_dot() {
        // With f64 accumulation the only error is input quantization; a
        // pure-f32 dot also rounds every product and partial sum.
        let n = 4096;
        let t64 = v(n, 1e-3);
        let x64 = v(n, -7e-4);
        let t32: Vec<c32> = t64.iter().map(|&z| c32::from_c64(z)).collect();
        let x32: Vec<c32> = x64.iter().map(|&z| c32::from_c64(z)).collect();
        // Oracle: widened-f32 inputs, exact (Kahan-free f64 is plenty here).
        let oracle: c64 = t32
            .iter()
            .zip(&x32)
            .map(|(&a, &b)| a.to_c64() * b.to_c64())
            .sum();
        let split_err = (dot_split(&t32, &x32) - oracle).abs();
        let f32_err = (dot(&t32, &x32).to_c64() - oracle).abs();
        assert!(split_err <= f32_err, "split {split_err} vs f32 {f32_err}");
    }

    #[test]
    fn split_strided_matches_dense() {
        let t64 = v(9, 1.1);
        let x64 = v(9 * 5, 0.2);
        let t32: Vec<c32> = t64.iter().map(|&z| c32::from_c64(z)).collect();
        let x32: Vec<c32> = x64.iter().map(|&z| c32::from_c64(z)).collect();
        let dense: Vec<c32> = (0..9).map(|i| x32[i * 5]).collect();
        let want = dot_split(&t32, &dense);
        let got = dot_strided_split(&t32, &x32, 5);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn axpy_split_accumulates_in_f64() {
        let t32: Vec<c32> = v(7, 0.5).iter().map(|&z| c32::from_c64(z)).collect();
        let x32: Vec<c32> = v(7, -0.3).iter().map(|&z| c32::from_c64(z)).collect();
        let mut acc = v(7, 2.0);
        let mut expect = acc.clone();
        axpy_split(&mut acc, &t32, &x32);
        for i in 0..7 {
            expect[i] += t32[i].to_c64() * x32[i].to_c64();
        }
        assert_eq!(acc, expect);
    }
}
