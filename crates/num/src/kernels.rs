//! Vectorizable complex micro-kernels.
//!
//! The inner loops of the convolution (length-B inner products, paper
//! §5.3), demodulation (pointwise multiply, §5.2.4) and twiddle passes are
//! all instances of four primitives. Centralizing them keeps every hot
//! loop in one shape the autovectorizer handles well, and gives the layout
//! bench a single place to compare AoS and planar codegen.

use crate::c64;

/// `acc[i] += t[i] * x[i]` (the convolution's tap-block AXPY).
#[inline]
pub fn axpy_pointwise(acc: &mut [c64], t: &[c64], x: &[c64]) {
    assert_eq!(acc.len(), t.len(), "length mismatch");
    assert_eq!(acc.len(), x.len(), "length mismatch");
    for ((a, &tv), &xv) in acc.iter_mut().zip(t).zip(x) {
        *a += tv * xv;
    }
}

/// Complex inner product `Σ t[i]·x[i]` (no conjugation — the convolution's
/// row form).
#[inline]
pub fn dot(t: &[c64], x: &[c64]) -> c64 {
    assert_eq!(t.len(), x.len(), "length mismatch");
    // Two independent accumulators break the add-latency chain.
    let mut acc0 = c64::ZERO;
    let mut acc1 = c64::ZERO;
    let mut it = t.chunks_exact(2).zip(x.chunks_exact(2));
    for (tp, xp) in &mut it {
        acc0 += tp[0] * xp[0];
        acc1 += tp[1] * xp[1];
    }
    if t.len() % 2 == 1 {
        acc0 += t[t.len() - 1] * x[x.len() - 1];
    }
    acc0 + acc1
}

/// Strided inner product `Σ t[i]·x[i·stride]` (the interchanged
/// convolution's column form).
#[inline]
pub fn dot_strided(t: &[c64], x: &[c64], stride: usize) -> c64 {
    assert!(stride >= 1);
    assert!(
        x.len() > (t.len().max(1) - 1) * stride || t.is_empty(),
        "x too short"
    );
    let mut acc = c64::ZERO;
    let mut idx = 0;
    for &tv in t {
        acc += tv * x[idx];
        idx += stride;
    }
    acc
}

/// `data[i] *= scale[i]` (demodulation / twiddle application).
#[inline]
pub fn mul_pointwise(data: &mut [c64], scale: &[c64]) {
    assert_eq!(data.len(), scale.len(), "length mismatch");
    for (d, &s) in data.iter_mut().zip(scale) {
        *d *= s;
    }
}

/// `data[i] *= s` for a real scalar (normalization passes).
#[inline]
pub fn scale_real(data: &mut [c64], s: f64) {
    for d in data.iter_mut() {
        *d = d.scale(s);
    }
}

/// Conjugates in place (the inverse-via-conjugation wrapper's passes).
#[inline]
pub fn conj_in_place(data: &mut [c64]) {
    for d in data.iter_mut() {
        *d = d.conj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, k: f64) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new(i as f64 * k, k - i as f64))
            .collect()
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        let t = v(13, 0.5);
        let x = v(13, -1.5);
        let mut acc = v(13, 2.0);
        let mut expect = acc.clone();
        axpy_pointwise(&mut acc, &t, &x);
        for i in 0..13 {
            expect[i] += t[i] * x[i];
        }
        assert_eq!(acc, expect);
    }

    #[test]
    fn dot_matches_naive_for_even_and_odd_lengths() {
        for n in [0usize, 1, 2, 7, 8, 33] {
            let t = v(n, 0.3);
            let x = v(n, -0.7);
            let naive: c64 = t.iter().zip(&x).map(|(&a, &b)| a * b).sum();
            let got = dot(&t, &x);
            assert!((got - naive).abs() < 1e-10 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn dot_strided_matches_dense_gather() {
        let t = v(9, 1.1);
        let x = v(9 * 5, 0.2);
        let dense: Vec<c64> = (0..9).map(|i| x[i * 5]).collect();
        let want = dot(&t, &dense);
        let got = dot_strided(&t, &x, 5);
        assert!((got - want).abs() < 1e-10);
        // Unit stride degenerates to dot.
        let got1 = dot_strided(&t, &x[..9], 1);
        assert!((got1 - dot(&t, &x[..9])).abs() < 1e-12);
    }

    #[test]
    fn pointwise_and_scale() {
        let mut d = v(6, 1.0);
        let s = v(6, -2.0);
        let expect: Vec<c64> = d.iter().zip(&s).map(|(&a, &b)| a * b).collect();
        mul_pointwise(&mut d, &s);
        assert_eq!(d, expect);

        let mut d = v(5, 3.0);
        let expect: Vec<c64> = d.iter().map(|&z| z * 0.5).collect();
        scale_real(&mut d, 0.5);
        assert_eq!(d, expect);
    }

    #[test]
    fn conj_in_place_is_involution() {
        let orig = v(8, 0.9);
        let mut d = orig.clone();
        conj_in_place(&mut d);
        assert!(d.iter().zip(&orig).all(|(a, b)| *a == b.conj()));
        conj_in_place(&mut d);
        assert_eq!(d, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut a = v(3, 1.0);
        axpy_pointwise(&mut a, &v(4, 1.0), &v(3, 1.0));
    }
}
