//! Symmetric tridiagonal eigensolver (largest eigenpair).
//!
//! Needed by the DPSS (discrete prolate spheroidal sequence) window design:
//! Slepian's trick reduces the prolate concentration problem to the
//! *largest* eigenvector of a symmetric tridiagonal matrix, which is found
//! here by Sturm-sequence bisection (for the eigenvalue) plus inverse
//! iteration (for the eigenvector). Everything is O(n) per iteration, so
//! windows with hundreds of thousands of taps are cheap to design.

/// Counts eigenvalues of the symmetric tridiagonal matrix `(diag, off)`
/// strictly less than `x` (Sturm sequence, with the standard guard against
/// division blow-up).
pub fn sturm_count(diag: &[f64], off: &[f64], x: f64) -> usize {
    let n = diag.len();
    debug_assert_eq!(off.len(), n.saturating_sub(1));
    let mut count = 0;
    let mut q = 1.0f64;
    for i in 0..n {
        let off2 = if i == 0 { 0.0 } else { off[i - 1] * off[i - 1] };
        q = diag[i] - x - if i == 0 { 0.0 } else { off2 / q };
        if q == 0.0 {
            q = f64::EPSILON * (1.0 + x.abs());
        }
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// Gershgorin bounds `(lo, hi)` containing every eigenvalue.
pub fn gershgorin(diag: &[f64], off: &[f64]) -> (f64, f64) {
    let n = diag.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = (if i > 0 { off[i - 1].abs() } else { 0.0 })
            + (if i + 1 < n { off[i].abs() } else { 0.0 });
        lo = lo.min(diag[i] - r);
        hi = hi.max(diag[i] + r);
    }
    (lo, hi)
}

/// The largest eigenvalue, by bisection on the Sturm count, to relative
/// precision ~1e-14.
pub fn max_eigenvalue(diag: &[f64], off: &[f64]) -> f64 {
    let n = diag.len();
    assert!(n >= 1, "empty matrix");
    if n == 1 {
        return diag[0];
    }
    let (lo0, hi0) = gershgorin(diag, off);
    let (mut lo, mut hi) = (lo0, hi0 + (hi0 - lo0) * 1e-12 + 1e-300);
    // Invariant: count(< hi) == n, count(< lo) <= n-1.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if sturm_count(diag, off, mid) >= n {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Solves `(T − λI)·x = b` for tridiagonal `T` by the Thomas algorithm with
/// a tiny-pivot guard (sufficient for inverse iteration, where the system
/// is intentionally near-singular).
fn shifted_solve(diag: &[f64], off: &[f64], lambda: f64, b: &mut [f64]) {
    let n = diag.len();
    if n == 1 {
        let d = diag[0] - lambda;
        b[0] /= if d.abs() < 1e-300 {
            1e-300_f64.copysign(d)
        } else {
            d
        };
        return;
    }
    let mut c = vec![0.0f64; n]; // super-diagonal multipliers
    let mut d = vec![0.0f64; n]; // modified diagonal
    d[0] = diag[0] - lambda;
    if d[0].abs() < 1e-300 {
        d[0] = 1e-300f64.copysign(if d[0] == 0.0 { 1.0 } else { d[0] });
    }
    c[0] = off[0] / d[0];
    for i in 1..n {
        let o = off[i - 1];
        d[i] = diag[i] - lambda - o * c[i - 1];
        if d[i].abs() < 1e-300 {
            d[i] = 1e-300f64.copysign(if d[i] == 0.0 { 1.0 } else { d[i] });
        }
        if i < n - 1 {
            c[i] = off[i] / d[i];
        }
        b[i] -= o * b[i - 1] / d[i - 1];
    }
    b[n - 1] /= d[n - 1];
    for i in (0..n - 1).rev() {
        b[i] = b[i] / d[i] - c[i] * b[i + 1];
    }
}

/// The largest eigenpair `(λ_max, v)` with `‖v‖₂ = 1` and the entry of
/// largest magnitude positive.
pub fn max_eigenpair(diag: &[f64], off: &[f64]) -> (f64, Vec<f64>) {
    let n = diag.len();
    let lambda = max_eigenvalue(diag, off);
    if n == 1 {
        return (lambda, vec![1.0]);
    }
    // Inverse iteration from a smooth positive start (the DPSS ground
    // eigenvector is positive, and generic starts also converge in 2-4
    // iterations since bisection gives λ to ~1e-14).
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 0.5) / n as f64 - 0.5;
            1.0 - 2.0 * t * t
        })
        .collect();
    normalize(&mut v);
    for _ in 0..6 {
        shifted_solve(diag, off, lambda, &mut v);
        normalize(&mut v);
    }
    // Canonical sign.
    let peak = v
        .iter()
        .copied()
        .max_by(|a, b| a.abs().total_cmp(&b.abs()))
        .unwrap_or(1.0);
    if peak < 0.0 {
        for x in v.iter_mut() {
            *x = -*x;
        }
    }
    (lambda, v)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toeplitz tridiagonal (a on diag, b off) has analytic eigenvalues
    /// a + 2b·cos(kπ/(n+1)) and sine eigenvectors — a complete reference.
    fn toeplitz(n: usize, a: f64, b: f64) -> (Vec<f64>, Vec<f64>) {
        (vec![a; n], vec![b; n - 1])
    }

    #[test]
    fn sturm_counts_match_analytic_spectrum() {
        let (d, o) = toeplitz(9, 2.0, -1.0);
        let eigs: Vec<f64> = (1..=9)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 10.0).cos())
            .collect();
        // Probe points chosen strictly between analytic eigenvalues
        // (λ₅ = 2.0 exactly, so probe at 2.1 instead).
        for x in [-0.5, 0.05, 1.0, 2.1, 3.5, 4.5] {
            let want = eigs.iter().filter(|&&e| e < x).count();
            assert_eq!(sturm_count(&d, &o, x), want, "x={x}");
        }
    }

    #[test]
    fn max_eigenvalue_matches_analytic() {
        for n in [2usize, 5, 16, 101] {
            let (d, o) = toeplitz(n, 2.0, -1.0);
            let want = 2.0 - 2.0 * ((n as f64) * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            let got = max_eigenvalue(&d, &o);
            assert!((got - want).abs() < 1e-10, "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn max_eigenpair_satisfies_eigen_equation() {
        let n = 64;
        // Slepian-like matrix (nonuniform diagonal).
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                let c = (n as f64 - 1.0 - 2.0 * i as f64) / 2.0;
                c * c * 0.9
            })
            .collect();
        let off: Vec<f64> = (0..n - 1)
            .map(|i| (i as f64 + 1.0) * (n as f64 - 1.0 - i as f64) / 2.0)
            .collect();
        let (lambda, v) = max_eigenpair(&diag, &off);
        // Residual ‖Tv − λv‖ must be tiny relative to ‖T‖ ~ |λ|.
        let mut resid: f64 = 0.0;
        for i in 0..n {
            let mut tv = diag[i] * v[i];
            if i > 0 {
                tv += off[i - 1] * v[i - 1];
            }
            if i + 1 < n {
                tv += off[i] * v[i + 1];
            }
            resid = resid.max((tv - lambda * v[i]).abs());
        }
        assert!(resid < 1e-8 * lambda.abs().max(1.0), "residual {resid:.3e}");
        // Unit norm.
        let norm: f64 = v.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvector_of_toeplitz_is_sine() {
        let n = 12;
        let (d, o) = toeplitz(n, 0.0, 1.0); // eigs 2cos(kπ/13), max at k=1
        let (lambda, v) = max_eigenpair(&d, &o);
        let want_l = 2.0 * (std::f64::consts::PI / 13.0).cos();
        assert!((lambda - want_l).abs() < 1e-12);
        // v ∝ sin(iπ/13).
        let scale = v[0] / (std::f64::consts::PI / 13.0).sin();
        for (i, &vi) in v.iter().enumerate() {
            let want = scale * ((i as f64 + 1.0) * std::f64::consts::PI / 13.0).sin();
            assert!((vi - want).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn single_element_matrix() {
        let (l, v) = max_eigenpair(&[3.5], &[]);
        assert_eq!(l, 3.5);
        assert_eq!(v, vec![1.0]);
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        let (d, o) = toeplitz(7, 1.0, 0.5);
        let (lo, hi) = gershgorin(&d, &o);
        assert!(lo <= 0.0 + 1.0 - 1.0 && hi >= 2.0 - 0.1);
        let lmax = max_eigenvalue(&d, &o);
        assert!(lmax <= hi && lmax >= lo);
    }
}
