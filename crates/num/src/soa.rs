//! Complex-array storage layouts.
//!
//! Paper §5.2.4: the Xeon Phi implementation internally uses a
//! "Struct of Arrays" (SoA) layout for complex data — separate real and
//! imaginary arrays — because it avoids gather/scatter and cross-lane
//! shuffles in vectorized butterflies, while the external interface also
//! supports "Array of Structs" (AoS, interleaved) to double MPI packet
//! lengths by sending reals and imaginaries together.
//!
//! [`SoaComplex`] is the SoA container; `&[c64]` slices *are* the AoS
//! layout. Conversions in both directions are provided, plus blocked
//! variants used when the conversion is fused with another pass.

use crate::c64;

/// Planar ("Struct of Arrays") storage for a complex vector.
///
/// Two equal-length `f64` vectors. Indexing yields [`c64`] values; mutation
/// goes through [`SoaComplex::set`] or the component slices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoaComplex {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SoaComplex {
    /// Creates a zero-filled SoA vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        SoaComplex {
            re: vec![0.0; n],
            im: vec![0.0; n],
        }
    }

    /// Builds from separate component vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_parts(re: Vec<f64>, im: Vec<f64>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im length mismatch");
        SoaComplex { re, im }
    }

    /// Converts an interleaved (AoS) slice into SoA layout.
    pub fn from_aos(aos: &[c64]) -> Self {
        let mut out = SoaComplex::zeros(aos.len());
        out.copy_from_aos(aos);
        out
    }

    /// Number of complex elements.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize) -> c64 {
        c64::new(self.re[i], self.im[i])
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, v: c64) {
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    /// Real-component slice.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// Imaginary-component slice.
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Mutable component slices (borrowed together so a kernel can stream
    /// both planes in one pass).
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Overwrites this vector from an interleaved slice (lengths must
    /// match).
    pub fn copy_from_aos(&mut self, aos: &[c64]) {
        assert_eq!(aos.len(), self.len(), "length mismatch");
        for (i, z) in aos.iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Writes this vector out in interleaved layout (lengths must match).
    pub fn write_aos(&self, aos: &mut [c64]) {
        assert_eq!(aos.len(), self.len(), "length mismatch");
        for (i, z) in aos.iter_mut().enumerate() {
            *z = c64::new(self.re[i], self.im[i]);
        }
    }

    /// Converts to a freshly allocated interleaved vector.
    pub fn to_aos(&self) -> Vec<c64> {
        let mut out = vec![c64::ZERO; self.len()];
        self.write_aos(&mut out);
        out
    }

    /// Iterates over elements as `c64` values.
    pub fn iter(&self) -> impl Iterator<Item = c64> + '_ {
        self.re.iter().zip(&self.im).map(|(&r, &i)| c64::new(r, i))
    }
}

impl FromIterator<c64> for SoaComplex {
    fn from_iter<T: IntoIterator<Item = c64>>(iter: T) -> Self {
        let mut re = Vec::new();
        let mut im = Vec::new();
        for z in iter {
            re.push(z.re);
            im.push(z.im);
        }
        SoaComplex { re, im }
    }
}

/// Deinterleaves `aos` into the two planes of `(re, im)` one cache-block at
/// a time.
///
/// The block size (in complex elements) keeps the working set of one pass
/// inside L1; used by kernels that fuse layout conversion with compute.
pub fn deinterleave_blocked(aos: &[c64], re: &mut [f64], im: &mut [f64], block: usize) {
    assert_eq!(aos.len(), re.len());
    assert_eq!(aos.len(), im.len());
    assert!(block > 0, "block must be positive");
    let mut i = 0;
    while i < aos.len() {
        let end = (i + block).min(aos.len());
        for j in i..end {
            re[j] = aos[j].re;
        }
        for j in i..end {
            im[j] = aos[j].im;
        }
        i = end;
    }
}

/// Interleaves the planes `(re, im)` into `aos`, blocked like
/// [`deinterleave_blocked`].
pub fn interleave_blocked(re: &[f64], im: &[f64], aos: &mut [c64], block: usize) {
    assert_eq!(aos.len(), re.len());
    assert_eq!(aos.len(), im.len());
    assert!(block > 0, "block must be positive");
    let mut i = 0;
    while i < aos.len() {
        let end = (i + block).min(aos.len());
        for j in i..end {
            aos[j] = c64::new(re[j], im[j]);
        }
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new(i as f64, -(i as f64) - 0.5))
            .collect()
    }

    #[test]
    fn zeros_and_len() {
        let s = SoaComplex::zeros(7);
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert!(SoaComplex::zeros(0).is_empty());
        assert_eq!(s.get(3), c64::ZERO);
    }

    #[test]
    fn aos_round_trip() {
        let v = ramp(13);
        let s = SoaComplex::from_aos(&v);
        assert_eq!(s.to_aos(), v);
        for (i, &z) in v.iter().enumerate() {
            assert_eq!(s.get(i), z);
        }
    }

    #[test]
    fn set_and_parts() {
        let mut s = SoaComplex::zeros(4);
        s.set(2, c64::new(1.0, 2.0));
        assert_eq!(s.get(2), c64::new(1.0, 2.0));
        assert_eq!(s.re()[2], 1.0);
        assert_eq!(s.im()[2], 2.0);
        let (re, im) = s.parts_mut();
        re[0] = 9.0;
        im[0] = -9.0;
        assert_eq!(s.get(0), c64::new(9.0, -9.0));
    }

    #[test]
    fn from_parts_checks_length() {
        let ok = SoaComplex::from_parts(vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(ok.get(1), c64::new(2.0, 4.0));
        let bad = std::panic::catch_unwind(|| SoaComplex::from_parts(vec![1.0], vec![]));
        assert!(bad.is_err());
    }

    #[test]
    fn from_iterator_and_iter() {
        let v = ramp(9);
        let s: SoaComplex = v.iter().copied().collect();
        let back: Vec<c64> = s.iter().collect();
        assert_eq!(back, v);
    }

    #[test]
    fn blocked_conversions_match_simple_for_all_block_sizes() {
        let v = ramp(37);
        for block in [1, 2, 5, 8, 16, 37, 64] {
            let mut re = vec![0.0; v.len()];
            let mut im = vec![0.0; v.len()];
            deinterleave_blocked(&v, &mut re, &mut im, block);
            let s = SoaComplex::from_aos(&v);
            assert_eq!(re, s.re(), "block={block}");
            assert_eq!(im, s.im(), "block={block}");

            let mut round = vec![c64::ZERO; v.len()];
            interleave_blocked(&re, &im, &mut round, block);
            assert_eq!(round, v, "block={block}");
        }
    }
}
