//! Complex-array storage layouts.
//!
//! Paper §5.2.4: the Xeon Phi implementation internally uses a
//! "Struct of Arrays" (SoA) layout for complex data — separate real and
//! imaginary arrays — because it avoids gather/scatter and cross-lane
//! shuffles in vectorized butterflies, while the external interface also
//! supports "Array of Structs" (AoS, interleaved) to double MPI packet
//! lengths by sending reals and imaginaries together.
//!
//! [`SoaComplex`] is the SoA container, generic over the precision
//! parameter [`Real`] (defaulting to `f64`); `&[c64]` / `&[c32]` slices
//! *are* the AoS layout. Conversions in both directions are provided, plus
//! blocked variants used when the conversion is fused with another pass.

use crate::complex::Complex;
use crate::real::Real;

/// Planar ("Struct of Arrays") storage for a complex vector.
///
/// Two equal-length component vectors. Indexing yields [`Complex`] values;
/// mutation goes through [`SoaComplex::set`] or the component slices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoaComplex<T: Real = f64> {
    re: Vec<T>,
    im: Vec<T>,
}

impl<T: Real> SoaComplex<T> {
    /// Creates a zero-filled SoA vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        SoaComplex {
            re: vec![T::ZERO; n],
            im: vec![T::ZERO; n],
        }
    }

    /// Builds from separate component vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_parts(re: Vec<T>, im: Vec<T>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im length mismatch");
        SoaComplex { re, im }
    }

    /// Converts an interleaved (AoS) slice into SoA layout.
    pub fn from_aos(aos: &[Complex<T>]) -> Self {
        let mut out = SoaComplex::zeros(aos.len());
        out.copy_from_aos(aos);
        out
    }

    /// Number of complex elements.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize) -> Complex<T> {
        Complex::new(self.re[i], self.im[i])
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, v: Complex<T>) {
        self.re[i] = v.re;
        self.im[i] = v.im;
    }

    /// Real-component slice.
    pub fn re(&self) -> &[T] {
        &self.re
    }

    /// Imaginary-component slice.
    pub fn im(&self) -> &[T] {
        &self.im
    }

    /// Mutable component slices (borrowed together so a kernel can stream
    /// both planes in one pass).
    pub fn parts_mut(&mut self) -> (&mut [T], &mut [T]) {
        (&mut self.re, &mut self.im)
    }

    /// Overwrites this vector from an interleaved slice (lengths must
    /// match).
    pub fn copy_from_aos(&mut self, aos: &[Complex<T>]) {
        assert_eq!(aos.len(), self.len(), "length mismatch");
        for (i, z) in aos.iter().enumerate() {
            self.re[i] = z.re;
            self.im[i] = z.im;
        }
    }

    /// Writes this vector out in interleaved layout (lengths must match).
    pub fn write_aos(&self, aos: &mut [Complex<T>]) {
        assert_eq!(aos.len(), self.len(), "length mismatch");
        for (i, z) in aos.iter_mut().enumerate() {
            *z = Complex::new(self.re[i], self.im[i]);
        }
    }

    /// Converts to a freshly allocated interleaved vector.
    pub fn to_aos(&self) -> Vec<Complex<T>> {
        let mut out = vec![Complex::<T>::ZERO; self.len()];
        self.write_aos(&mut out);
        out
    }

    /// Iterates over elements as [`Complex`] values.
    pub fn iter(&self) -> impl Iterator<Item = Complex<T>> + '_ {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex::new(r, i))
    }
}

impl SoaComplex<f64> {
    /// Pointwise complex multiply `self[i] *= rhs[i]` in planar layout.
    ///
    /// This is the shuffle-free form the SoA layout exists for: the AVX2
    /// path (see [`crate::simd::mul_pointwise_planar_f64`]) streams four
    /// lanes per plane with no cross-lane movement at all.
    pub fn mul_pointwise(&mut self, rhs: &SoaComplex<f64>) {
        assert_eq!(self.len(), rhs.len(), "length mismatch");
        crate::simd::mul_pointwise_planar_f64(&mut self.re, &mut self.im, &rhs.re, &rhs.im);
    }
}

impl<T: Real> FromIterator<Complex<T>> for SoaComplex<T> {
    fn from_iter<I: IntoIterator<Item = Complex<T>>>(iter: I) -> Self {
        let mut re = Vec::new();
        let mut im = Vec::new();
        for z in iter {
            re.push(z.re);
            im.push(z.im);
        }
        SoaComplex { re, im }
    }
}

/// Deinterleaves `aos` into the two planes of `(re, im)` one cache-block at
/// a time.
///
/// The block size (in complex elements) keeps the working set of one pass
/// inside L1; used by kernels that fuse layout conversion with compute.
pub fn deinterleave_blocked<T: Real>(aos: &[Complex<T>], re: &mut [T], im: &mut [T], block: usize) {
    assert_eq!(aos.len(), re.len());
    assert_eq!(aos.len(), im.len());
    assert!(block > 0, "block must be positive");
    let mut i = 0;
    while i < aos.len() {
        let end = (i + block).min(aos.len());
        for j in i..end {
            re[j] = aos[j].re;
        }
        for j in i..end {
            im[j] = aos[j].im;
        }
        i = end;
    }
}

/// Interleaves the planes `(re, im)` into `aos`, blocked like
/// [`deinterleave_blocked`].
pub fn interleave_blocked<T: Real>(re: &[T], im: &[T], aos: &mut [Complex<T>], block: usize) {
    assert_eq!(aos.len(), re.len());
    assert_eq!(aos.len(), im.len());
    assert!(block > 0, "block must be positive");
    let mut i = 0;
    while i < aos.len() {
        let end = (i + block).min(aos.len());
        for j in i..end {
            aos[j] = Complex::new(re[j], im[j]);
        }
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c32, c64};

    fn ramp(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new(i as f64, -(i as f64) - 0.5))
            .collect()
    }

    #[test]
    fn zeros_and_len() {
        let s = SoaComplex::<f64>::zeros(7);
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert!(SoaComplex::<f64>::zeros(0).is_empty());
        assert_eq!(s.get(3), c64::ZERO);
    }

    #[test]
    fn aos_round_trip() {
        let v = ramp(13);
        let s = SoaComplex::from_aos(&v);
        assert_eq!(s.to_aos(), v);
        for (i, &z) in v.iter().enumerate() {
            assert_eq!(s.get(i), z);
        }
    }

    #[test]
    fn aos_round_trip_f32() {
        let v: Vec<c32> = ramp(13).iter().map(|&z| c32::from_c64(z)).collect();
        let s = SoaComplex::from_aos(&v);
        assert_eq!(s.to_aos(), v);
    }

    #[test]
    fn set_and_parts() {
        let mut s = SoaComplex::<f64>::zeros(4);
        s.set(2, c64::new(1.0, 2.0));
        assert_eq!(s.get(2), c64::new(1.0, 2.0));
        assert_eq!(s.re()[2], 1.0);
        assert_eq!(s.im()[2], 2.0);
        let (re, im) = s.parts_mut();
        re[0] = 9.0;
        im[0] = -9.0;
        assert_eq!(s.get(0), c64::new(9.0, -9.0));
    }

    #[test]
    fn from_parts_checks_length() {
        let ok = SoaComplex::from_parts(vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(ok.get(1), c64::new(2.0, 4.0));
        let bad = std::panic::catch_unwind(|| SoaComplex::from_parts(vec![1.0], Vec::<f64>::new()));
        assert!(bad.is_err());
    }

    #[test]
    fn from_iterator_and_iter() {
        let v = ramp(9);
        let s: SoaComplex = v.iter().copied().collect();
        let back: Vec<c64> = s.iter().collect();
        assert_eq!(back, v);
    }

    #[test]
    fn planar_mul_matches_aos_mul() {
        let a = ramp(19);
        let b: Vec<c64> = ramp(19).iter().map(|z| z.conj() + c64::ONE).collect();
        let mut sa = SoaComplex::from_aos(&a);
        let sb = SoaComplex::from_aos(&b);
        sa.mul_pointwise(&sb);
        let want: Vec<c64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(sa.to_aos(), want);
    }

    #[test]
    fn blocked_conversions_match_simple_for_all_block_sizes() {
        let v = ramp(37);
        for block in [1, 2, 5, 8, 16, 37, 64] {
            let mut re = vec![0.0; v.len()];
            let mut im = vec![0.0; v.len()];
            deinterleave_blocked(&v, &mut re, &mut im, block);
            let s = SoaComplex::from_aos(&v);
            assert_eq!(re, s.re(), "block={block}");
            assert_eq!(im, s.im(), "block={block}");

            let mut round = vec![c64::ZERO; v.len()];
            interleave_blocked(&re, &im, &mut round, block);
            assert_eq!(round, v, "block={block}");
        }
    }
}
