//! The paper's performance model (sections 4 and 7).
//!
//! The model is the paper's analysis instrument: given machine constants
//! (Table 2), network constants (Table 3) and measured kernel efficiencies,
//! it predicts the execution time of SOI and Cooley–Tukey on Xeon and Xeon
//! Phi clusters. Everything in Fig 3, the CT-Xeon-Phi projection of Fig 8,
//! the Fig 9 breakdown shape and the §7 offload analysis is a product of
//! these formulas:
//!
//! ```text
//! T_fft(N)  = 5·N·log₂N / (Eff_fft · Flops_peak)
//! T_conv(N) = 8·B·µ·N  / (Eff_conv · Flops_peak)
//! T_mpi(N)  = 16·N / BW_mpi
//!
//! T_ct  ≈ T_fft(N)  + 3·T_mpi(N)
//! T_soi ≈ T_fft(µN) + T_conv(N) + µ·T_mpi(N)
//! T_soi_offload ≈ 2·T_pci(N) + µ·T_mpi(N)            (§7)
//! ```
//!
//! Calibration reproduces the paper's §4 worked example exactly (assertions
//! in the test suite): with 32 nodes, `N = 2²⁷·32`, 3 GiB/s per-node MPI
//! bandwidth, efficiencies 12 %/40 %, `B = 72`, `µ = 8/7`:
//! `T_fft = 0.52 s`, `T^φ_fft = 0.17`, `T_conv = 0.64`, `T^φ_conv = 0.21`,
//! `T_mpi = 0.67` — and the headline ratios: SOI gains ~1.7× from Phi, CT
//! only ~1.1×, offload mode is ~25 % slower than symmetric.
//!
//! One term goes beyond §4: an interconnect-degradation factor
//! `η(P) = 1/(1 + α·log₂(P/32))` for `P > 32` (the paper's §6.1: "the time
//! spent on MPI communication slowly increases with more nodes, which
//! indicates that the interconnect is not perfectly scalable"). `α` is
//! calibrated so SOI-on-Phi hits the paper's measured 6.7 TFLOPS at 512
//! nodes; the same single constant then lands "tera-flop at 64 nodes",
//! "~1.5× Phi/Xeon at 512", "~1.1× for CT" and "~5× per-node vs the
//! K computer" (tests assert each).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schedule;

use serde::{Deserialize, Serialize};

/// Machine constants (paper Table 2).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: String,
    /// Sockets per node.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (SMT).
    pub smt: u32,
    /// SIMD lanes (doubles per vector).
    pub simd: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision GFLOP/s per node.
    pub peak_gflops: f64,
    /// STREAM bandwidth in GB/s per node.
    pub stream_gbs: f64,
    /// L1 data cache per core, KB.
    pub l1_kb: u32,
    /// L2 cache per core, KB.
    pub l2_kb: u32,
    /// Shared L3, KB (None for Xeon Phi — private L2s only).
    pub l3_kb: Option<u32>,
}

impl MachineSpec {
    /// Dual-socket Intel Xeon E5-2680 (Table 2, left column).
    pub fn xeon_e5_2680() -> Self {
        MachineSpec {
            name: "Xeon E5-2680".into(),
            sockets: 2,
            cores_per_socket: 8,
            smt: 2,
            simd: 4,
            clock_ghz: 2.7,
            peak_gflops: 346.0,
            stream_gbs: 79.0,
            l1_kb: 32,
            l2_kb: 256,
            l3_kb: Some(20 * 1024),
        }
    }

    /// Intel Xeon Phi SE10 (Table 2, right column).
    pub fn xeon_phi_se10() -> Self {
        MachineSpec {
            name: "Xeon Phi SE10".into(),
            sockets: 1,
            cores_per_socket: 61,
            smt: 4,
            simd: 8,
            clock_ghz: 1.1,
            peak_gflops: 1074.0,
            stream_gbs: 150.0,
            l1_kb: 32,
            l2_kb: 512,
            l3_kb: None,
        }
    }

    /// Machine bytes-per-op ratio (Table 2 last row): STREAM bandwidth over
    /// peak flops. 0.23 for the Xeon, 0.14 for the Phi.
    pub fn bytes_per_op(&self) -> f64 {
        self.stream_gbs / self.peak_gflops
    }

    /// Total hardware threads per node.
    pub fn threads(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.smt
    }
}

/// Measured kernel efficiencies (§4: 12 % local FFT, 40 % convolution, on
/// both machines).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct Efficiencies {
    /// Local FFT compute efficiency.
    pub fft: f64,
    /// Convolution compute efficiency.
    pub conv: f64,
}

impl Default for Efficiencies {
    fn default() -> Self {
        Efficiencies {
            fft: 0.12,
            conv: 0.40,
        }
    }
}

/// Interconnect constants (Table 3 + §6.1 scalability).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct NetworkSpec {
    /// Per-node sustained MPI bandwidth, GiB/s (§4 assumes 3).
    pub per_node_gib_s: f64,
    /// Degradation coefficient `α` in `η(P) = 1/(1+α·log₂(P/P₀))`.
    pub degradation_alpha: f64,
    /// Node count `P₀` below which the interconnect scales perfectly.
    pub degradation_start: u32,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec {
            per_node_gib_s: 3.0,
            // Calibrated: SOI-on-Phi = 6.7 TFLOPS at 512 nodes (Fig 8).
            degradation_alpha: 0.217,
            degradation_start: 32,
        }
    }
}

impl NetworkSpec {
    /// Interconnect efficiency at `nodes` (1.0 at or below the start
    /// count).
    pub fn efficiency(&self, nodes: u32) -> f64 {
        if nodes <= self.degradation_start {
            1.0
        } else {
            let excess = (nodes as f64 / self.degradation_start as f64).log2();
            1.0 / (1.0 + self.degradation_alpha * excess)
        }
    }

    /// Aggregate all-to-all bandwidth in bytes/s at `nodes`.
    pub fn aggregate_bytes_s(&self, nodes: u32) -> f64 {
        self.per_node_gib_s * (1u64 << 30) as f64 * nodes as f64 * self.efficiency(nodes)
    }
}

/// Structural two-level fat-tree contention model (Table 3: "FDR
/// InfiniBand, a two-level fat tree") — an alternative to the calibrated
/// logarithmic degradation of [`NetworkSpec`], useful to sanity-check the
/// calibration against topology first principles.
///
/// In an all-to-all, the fraction of each node's traffic that must leave
/// its leaf switch is `(P − leaf)/P`; that portion is slowed by the
/// uplink oversubscription ratio. Effective per-node efficiency is
/// `1 / (local_frac + remote_frac · oversubscription)`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct FatTreeSpec {
    /// Nodes per leaf switch.
    pub leaf_ports: u32,
    /// Uplink oversubscription ratio (≥ 1; 1 = full bisection).
    pub oversubscription: f64,
}

impl FatTreeSpec {
    /// All-to-all efficiency at `nodes` (1.0 within one leaf).
    pub fn efficiency(&self, nodes: u32) -> f64 {
        if nodes <= self.leaf_ports {
            return 1.0;
        }
        let local = self.leaf_ports as f64 / nodes as f64;
        let remote = 1.0 - local;
        1.0 / (local + remote * self.oversubscription)
    }

    /// The oversubscription ratio that would reproduce a target efficiency
    /// at `nodes` (inverse of [`FatTreeSpec::efficiency`]); used to check
    /// the calibrated η against topology plausibility.
    ///
    /// # Panics
    /// Panics on the inputs [`FatTreeSpec::try_oversubscription_for`]
    /// rejects; use the `try_` form for tuner-derived inputs.
    pub fn oversubscription_for(leaf_ports: u32, nodes: u32, efficiency: f64) -> f64 {
        match Self::try_oversubscription_for(leaf_ports, nodes, efficiency) {
            Ok(os) => os,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`FatTreeSpec::oversubscription_for`]: a node count
    /// inside one leaf or an efficiency outside `(0, 1]` is a typed
    /// [`ModelError`] instead of a panic.
    pub fn try_oversubscription_for(
        leaf_ports: u32,
        nodes: u32,
        efficiency: f64,
    ) -> Result<f64, ModelError> {
        if nodes <= leaf_ports {
            return Err(ModelError::NodesWithinLeaf { nodes, leaf_ports });
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(ModelError::BadEfficiency { efficiency });
        }
        let local = leaf_ports as f64 / nodes as f64;
        let remote = 1.0 - local;
        Ok((1.0 / efficiency - local) / remote)
    }
}

/// PCIe constants (Table 3: ~6 GB/s sustained).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct PcieSpec {
    /// Sustained bandwidth, GB/s (decimal).
    pub gb_s: f64,
}

impl Default for PcieSpec {
    fn default() -> Self {
        PcieSpec { gb_s: 6.0 }
    }
}

/// SOI algorithm constants for the model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct SoiConstants {
    /// Oversampling factor µ.
    pub mu: f64,
    /// Convolution width B.
    pub b: f64,
}

impl Default for SoiConstants {
    fn default() -> Self {
        SoiConstants {
            mu: 8.0 / 7.0,
            b: 72.0,
        }
    }
}

/// A modeled cluster: machine × network × size.
///
/// # Example
///
/// ```
/// use soifft_model::ClusterModel;
///
/// // The paper's §4 setting: 32 nodes, 2^27 points per node.
/// let n = (1u64 << 32) as f64;
/// let xeon = ClusterModel::xeon(32);
/// let phi = ClusterModel::xeon_phi(32);
/// // SOI gains ~1.7× from the coprocessor, Cooley–Tukey only ~1.15×:
/// let soi_gain = xeon.soi_time(n).total() / phi.soi_time(n).total();
/// let ct_gain = xeon.ct_time(n).total() / phi.ct_time(n).total();
/// assert!(soi_gain > 1.6 && soi_gain < 1.8);
/// assert!(ct_gain > 1.1 && ct_gain < 1.2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Node hardware.
    pub machine: MachineSpec,
    /// Interconnect.
    pub network: NetworkSpec,
    /// PCIe link (offload mode).
    pub pcie: PcieSpec,
    /// Kernel efficiencies.
    pub eff: Efficiencies,
    /// SOI constants.
    pub soi: SoiConstants,
    /// Node count P.
    pub nodes: u32,
}

/// Execution-time breakdown of one algorithm run (seconds). The components
/// are the Fig 9 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Node-local FFT time.
    pub local_fft: f64,
    /// Convolution-and-oversampling time (zero for CT).
    pub conv: f64,
    /// All-to-all MPI time (exposed, i.e. not overlapped).
    pub mpi: f64,
    /// PCIe staging time (offload mode only).
    pub pci: f64,
}

impl Breakdown {
    /// Total execution time.
    pub fn total(&self) -> f64 {
        self.local_fft + self.conv + self.mpi + self.pci
    }
}

impl ClusterModel {
    /// A Xeon cluster with default network/efficiencies.
    pub fn xeon(nodes: u32) -> Self {
        ClusterModel {
            machine: MachineSpec::xeon_e5_2680(),
            network: NetworkSpec::default(),
            pcie: PcieSpec::default(),
            eff: Efficiencies::default(),
            soi: SoiConstants::default(),
            nodes,
        }
    }

    /// A Xeon Phi cluster (symmetric mode) with default constants.
    pub fn xeon_phi(nodes: u32) -> Self {
        ClusterModel {
            machine: MachineSpec::xeon_phi_se10(),
            ..Self::xeon(nodes)
        }
    }

    /// Aggregate peak flops across the cluster.
    fn peak_flops(&self) -> f64 {
        self.machine.peak_gflops * 1e9 * self.nodes as f64
    }

    /// `T_fft(n)`: node-local FFT time for `n` total points.
    pub fn t_fft(&self, n: f64) -> f64 {
        5.0 * n * n.log2() / (self.eff.fft * self.peak_flops())
    }

    /// `T_conv(n)`: convolution time for `n` total points.
    pub fn t_conv(&self, n: f64) -> f64 {
        8.0 * self.soi.b * self.soi.mu * n / (self.eff.conv * self.peak_flops())
    }

    /// `T_mpi(n)`: one all-to-all of `n` complex elements (16 B each).
    pub fn t_mpi(&self, n: f64) -> f64 {
        16.0 * n / self.network.aggregate_bytes_s(self.nodes)
    }

    /// `T_pci(n)`: staging `n/P` elements per node over PCIe (all nodes in
    /// parallel).
    pub fn t_pci(&self, n: f64) -> f64 {
        16.0 * (n / self.nodes as f64) / (self.pcie.gb_s * 1e9)
    }

    /// SOI in symmetric mode (§4): `T_fft(µN) + T_conv(N) + µ·T_mpi(N)`.
    pub fn soi_time(&self, n: f64) -> Breakdown {
        Breakdown {
            local_fft: self.t_fft(self.soi.mu * n),
            conv: self.t_conv(n),
            mpi: self.soi.mu * self.t_mpi(n),
            pci: 0.0,
        }
    }

    /// Conventional Cooley–Tukey (§4): `T_fft(N) + 3·T_mpi(N)`.
    pub fn ct_time(&self, n: f64) -> Breakdown {
        Breakdown {
            local_fft: self.t_fft(n),
            conv: 0.0,
            mpi: 3.0 * self.t_mpi(n),
            pci: 0.0,
        }
    }

    /// SOI in offload mode (§7): `2·T_pci(N) + µ·T_mpi(N)` — compute hides
    /// under the PCIe transfers on the Phi.
    pub fn soi_offload_time(&self, n: f64) -> Breakdown {
        Breakdown {
            local_fft: 0.0,
            conv: 0.0,
            mpi: self.soi.mu * self.t_mpi(n),
            pci: 2.0 * self.t_pci(n),
        }
    }

    /// SOI in §7's *hybrid* mode: the host Xeon contributes its peak flops
    /// alongside the Phi (work split by segments in proportion to peak),
    /// MPI unchanged. The paper declines to evaluate this because "only
    /// less than 10 % speedups are expected from the additional compute due
    /// to the bandwidth-limited nature of 1D FFT" — which this method
    /// reproduces (see tests).
    pub fn soi_hybrid_time(&self, n: f64, host: &MachineSpec) -> Breakdown {
        let base = self.soi_time(n);
        let scale = self.machine.peak_gflops / (self.machine.peak_gflops + host.peak_gflops);
        Breakdown {
            local_fft: base.local_fft * scale,
            conv: base.conv * scale,
            ..base
        }
    }

    /// §6.1's heterogeneous load-balancing rule: segments are assigned in
    /// proportion to compute capability ("1 segment per Xeon E5-2680
    /// socket and 6 segments per Xeon Phi"). Returns segments per
    /// accelerator for every 1 per host *socket*.
    pub fn segments_per_accelerator(host: &MachineSpec, accel: &MachineSpec) -> u32 {
        let per_socket = host.peak_gflops / host.sockets as f64;
        (accel.peak_gflops / per_socket).round() as u32
    }

    /// Allocates `total` segments across ranks proportionally to each
    /// rank's peak flops (largest-remainder rounding; every count sums to
    /// `total` exactly). The generalization of the 6:1 rule to arbitrary
    /// mixed clusters; feed the result to
    /// `soifft_core::SoiFft::with_segment_counts`.
    ///
    /// # Panics
    /// Panics on the inputs
    /// [`ClusterModel::try_proportional_segments`] rejects; use the `try_`
    /// form for tuner-derived inputs.
    pub fn proportional_segments(peaks_gflops: &[f64], total: usize) -> Vec<usize> {
        match Self::try_proportional_segments(peaks_gflops, total) {
            Ok(counts) => counts,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`ClusterModel::proportional_segments`]: an empty
    /// or non-positive peak list is a typed [`ModelError`] instead of a
    /// panic, so a tuner fed a malformed machine fingerprint degrades
    /// gracefully.
    pub fn try_proportional_segments(
        peaks_gflops: &[f64],
        total: usize,
    ) -> Result<Vec<usize>, ModelError> {
        if peaks_gflops.is_empty() {
            return Err(ModelError::EmptyPeaks);
        }
        for (index, &value) in peaks_gflops.iter().enumerate() {
            if !(value > 0.0 && value.is_finite()) {
                return Err(ModelError::NonPositivePeak { index, value });
            }
        }
        let sum: f64 = peaks_gflops.iter().sum();
        let ideal: Vec<f64> = peaks_gflops
            .iter()
            .map(|&p| p / sum * total as f64)
            .collect();
        let mut counts: Vec<usize> = ideal.iter().map(|&x| x.floor() as usize).collect();
        let mut short = total - counts.iter().sum::<usize>();
        // Hand leftovers to the largest fractional parts.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            (ideal[b] - ideal[b].floor()).total_cmp(&(ideal[a] - ideal[a].floor()))
        });
        let mut idx = 0;
        while short > 0 {
            counts[order[idx % order.len()]] += 1;
            short -= 1;
            idx += 1;
        }
        Ok(counts)
    }

    /// SOI with comm/compute overlap from `segments` per process (§6.1):
    /// all-to-alls after the first overlap with the previous segment's
    /// recovery FFT, so exposed MPI shrinks by what the local FFT covers.
    pub fn soi_time_overlapped(&self, n: f64, segments: u32) -> Breakdown {
        let base = self.soi_time(n);
        if segments <= 1 {
            return base;
        }
        let per_seg_mpi = base.mpi / segments as f64;
        let per_seg_fft = base.local_fft / segments as f64;
        let hidden = (per_seg_mpi.min(per_seg_fft)) * (segments - 1) as f64;
        Breakdown {
            mpi: base.mpi - hidden,
            ..base
        }
    }

    /// Event-simulated schedule of the segmented pipeline (see
    /// [`schedule::overlapped_timeline`]): splits the local FFT between the
    /// pre-exchange block DFTs and the per-segment recoveries, then
    /// pipelines exchanges against recoveries. The recovery share of the
    /// local FFT time is taken as `log₂M'/log₂(µN)` of it (flop
    /// proportion).
    pub fn soi_timeline(&self, n: f64, segments: u32) -> schedule::Timeline {
        let base = self.soi_time(n);
        // Split local FFT flops: block DFTs (F_L, before the exchange) vs
        // recovery (F_{M'}, after). Under the 5·x·log₂x convention the two
        // stages' flops are proportional to log₂L and log₂M' of the total
        // 5µN·log₂(µN)... approximate by the standard two-stage split.
        let m_prime = self.soi.mu * n / (segments as f64 * self.nodes as f64);
        let frac_recovery = m_prime.log2() / (self.soi.mu * n).log2();
        let recovery = base.local_fft * frac_recovery;
        let preamble = base.conv + (base.local_fft - recovery);
        schedule::overlapped_timeline(
            preamble,
            base.mpi / segments as f64,
            recovery / segments as f64,
            segments,
        )
    }

    /// Reported TFLOPS for an `n`-point transform completing in `seconds`
    /// (HPCC G-FFT convention, `5·n·log₂n`).
    pub fn tflops(n: f64, seconds: f64) -> f64 {
        5.0 * n * n.log2() / seconds / 1e12
    }
}

/// One row of the weak-scaling sweep (Fig 8).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: u32,
    /// Total transform size.
    pub n: f64,
    /// CT on Xeon, TFLOPS.
    pub ct_xeon: f64,
    /// CT on Xeon Phi (projected), TFLOPS.
    pub ct_phi: f64,
    /// SOI on Xeon, TFLOPS.
    pub soi_xeon: f64,
    /// SOI on Xeon Phi, TFLOPS.
    pub soi_phi: f64,
}

impl ScalingPoint {
    /// Phi/Xeon speedup under CT.
    pub fn ct_speedup(&self) -> f64 {
        self.ct_phi / self.ct_xeon
    }

    /// Phi/Xeon speedup under SOI.
    pub fn soi_speedup(&self) -> f64 {
        self.soi_phi / self.soi_xeon
    }
}

/// A malformed model input — typed, so tuner- and planner-facing entry
/// points ([`ClusterModel::try_proportional_segments`],
/// [`FatTreeSpec::try_oversubscription_for`]) reject bad parameters with
/// an error the caller can degrade on instead of aborting the process.
/// Auto-tuners feed these functions machine fingerprints and probe-derived
/// constants, which are untrusted relative to hand-written test inputs.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A peak-flops list was empty.
    EmptyPeaks,
    /// A peak-flops entry was zero, negative or non-finite.
    NonPositivePeak {
        /// Index of the offending entry.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// A fat-tree inversion was asked about a node count that fits inside
    /// one leaf switch (the model is only defined past the leaf).
    NodesWithinLeaf {
        /// Requested node count.
        nodes: u32,
        /// Ports per leaf switch.
        leaf_ports: u32,
    },
    /// An efficiency outside `(0, 1]`.
    BadEfficiency {
        /// The offending value.
        efficiency: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyPeaks => write!(f, "peak-flops list is empty"),
            ModelError::NonPositivePeak { index, value } => {
                write!(f, "peak-flops entry {index} is not positive ({value})")
            }
            ModelError::NodesWithinLeaf { nodes, leaf_ports } => write!(
                f,
                "fat-tree inversion needs nodes > leaf_ports ({nodes} <= {leaf_ports})"
            ),
            ModelError::BadEfficiency { efficiency } => {
                write!(f, "efficiency must be in (0, 1], got {efficiency}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A sweep lookup that could not be satisfied — typed, so planning code
/// consuming a sweep (report generators, calibration fits, serving-layer
/// capacity estimates) degrades to an explicit error instead of aborting
/// on a malformed or truncated point set.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// No [`ScalingPoint`] for the requested node count.
    MissingPoint {
        /// The node count that was asked for.
        nodes: u32,
        /// Node counts actually present, in sweep order.
        available: Vec<u32>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::MissingPoint { nodes, available } => {
                write!(
                    f,
                    "no scaling point for {nodes} nodes (sweep has {available:?})"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Looks up the sweep row for `nodes`, with a typed miss.
pub fn scaling_point(points: &[ScalingPoint], nodes: u32) -> Result<&ScalingPoint, SweepError> {
    points
        .iter()
        .find(|s| s.nodes == nodes)
        .ok_or_else(|| SweepError::MissingPoint {
            nodes,
            available: points.iter().map(|s| s.nodes).collect(),
        })
}

/// Weak-scaling sweep: `per_node_n` points per node over each node count
/// (paper: 2²⁷ per node, 4–512 nodes).
pub fn weak_scaling(node_counts: &[u32], per_node_n: f64) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&p| {
            let n = per_node_n * p as f64;
            let xeon = ClusterModel::xeon(p);
            let phi = ClusterModel::xeon_phi(p);
            ScalingPoint {
                nodes: p,
                n,
                ct_xeon: ClusterModel::tflops(n, xeon.ct_time(n).total()),
                ct_phi: ClusterModel::tflops(n, phi.ct_time(n).total()),
                soi_xeon: ClusterModel::tflops(n, xeon.soi_time(n).total()),
                soi_phi: ClusterModel::tflops(n, phi.soi_time(n).total()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N32: f64 = (1u64 << 32) as f64; // 2^27 per node · 32 nodes

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table2_constants_and_bops() {
        let xeon = MachineSpec::xeon_e5_2680();
        let phi = MachineSpec::xeon_phi_se10();
        assert!(close(xeon.bytes_per_op(), 0.23, 0.005));
        assert!(close(phi.bytes_per_op(), 0.14, 0.005));
        assert_eq!(xeon.threads(), 32);
        assert_eq!(phi.threads(), 244);
        assert!(close(phi.peak_gflops / xeon.peak_gflops, 3.1, 0.05));
    }

    /// The §4 worked example: T_fft=0.50, T^φ_fft=0.16, T_conv=0.64,
    /// T^φ_conv=0.21, T_mpi=0.67 (paper's printed roundings of the exact
    /// model values).
    #[test]
    fn section4_component_times() {
        let xeon = ClusterModel::xeon(32);
        let phi = ClusterModel::xeon_phi(32);
        assert!(close(xeon.t_fft(N32), 0.50, 0.02), "{}", xeon.t_fft(N32));
        assert!(close(phi.t_fft(N32), 0.165, 0.01), "{}", phi.t_fft(N32));
        assert!(close(xeon.t_conv(N32), 0.64, 0.01), "{}", xeon.t_conv(N32));
        assert!(close(phi.t_conv(N32), 0.21, 0.01), "{}", phi.t_conv(N32));
        assert!(close(xeon.t_mpi(N32), 0.67, 0.01), "{}", xeon.t_mpi(N32));
    }

    /// Fig 3 ratios: SOI gains ~70 % from Phi, CT only ~14 %.
    #[test]
    fn section4_speedup_projections() {
        let xeon = ClusterModel::xeon(32);
        let phi = ClusterModel::xeon_phi(32);
        let soi_gain = xeon.soi_time(N32).total() / phi.soi_time(N32).total();
        assert!(close(soi_gain, 1.7, 0.1), "SOI gain {soi_gain}");
        let ct_gain = xeon.ct_time(N32).total() / phi.ct_time(N32).total();
        assert!(close(ct_gain, 1.15, 0.05), "CT gain {ct_gain}");
        // SOI beats CT on both machines.
        assert!(xeon.soi_time(N32).total() < xeon.ct_time(N32).total());
        assert!(phi.soi_time(N32).total() < phi.ct_time(N32).total());
    }

    /// §6.1 headline numbers, reproduced by the calibrated model.
    #[test]
    fn fig8_headlines() -> Result<(), SweepError> {
        let per_node = (1u64 << 27) as f64;
        let points = weak_scaling(&[4, 8, 16, 32, 64, 128, 256, 512], per_node);
        let at = |p: u32| scaling_point(&points, p);

        // A node count outside the sweep is a typed miss, not a panic.
        assert!(matches!(
            at(1024),
            Err(SweepError::MissingPoint { nodes: 1024, .. })
        ));
        // 6.7 TFLOPS at 512 Phi nodes (calibration target).
        assert!(close(at(512)?.soi_phi, 6.7, 0.15), "{}", at(512)?.soi_phi);
        // Tera-flop mark broken at 64 nodes.
        assert!(at(64)?.soi_phi > 1.0, "{}", at(64)?.soi_phi);
        assert!(at(32)?.soi_phi < 1.0, "{}", at(32)?.soi_phi);
        // SOI speedup from Phi is 1.5–2.0× across the sweep; CT's is ~1.1×.
        for pt in &points {
            assert!(
                pt.soi_speedup() > 1.4 && pt.soi_speedup() < 2.0,
                "nodes={} soi speedup={}",
                pt.nodes,
                pt.soi_speedup()
            );
            assert!(
                pt.ct_speedup() > 1.0 && pt.ct_speedup() < 1.25,
                "nodes={} ct speedup={}",
                pt.nodes,
                pt.ct_speedup()
            );
            // Ordering: SOI-Phi > SOI-Xeon > CT-Xeon and CT-Phi > CT-Xeon.
            assert!(pt.soi_phi > pt.soi_xeon);
            assert!(pt.soi_xeon > pt.ct_xeon);
        }

        // ~5× per-node advantage over the K computer's 206 TFLOPS/81944
        // nodes HPCC G-FFT record.
        let per_node_tflops = at(512)?.soi_phi / 512.0;
        let k_computer = 206.0 / 81944.0;
        let ratio = per_node_tflops / k_computer;
        assert!(ratio > 4.0 && ratio < 6.5, "per-node ratio {ratio}");
        Ok(())
    }

    /// §7: offload mode ~25 % slower than symmetric at 32 nodes.
    #[test]
    fn offload_mode_penalty() {
        let phi = ClusterModel::xeon_phi(32);
        let sym = phi.soi_time(N32).total();
        let off = phi.soi_offload_time(N32).total();
        let slowdown = off / sym;
        assert!(close(slowdown, 1.25, 0.05), "offload slowdown {slowdown}");
    }

    /// §7: hybrid mode adds the Xeon's flops but gains < 10 % — the
    /// paper's stated reason for not evaluating it.
    #[test]
    fn hybrid_mode_gains_less_than_ten_percent() {
        let phi = ClusterModel::xeon_phi(32);
        let host = MachineSpec::xeon_e5_2680();
        let sym = phi.soi_time(N32).total();
        let hybrid = phi.soi_hybrid_time(N32, &host).total();
        let gain = sym / hybrid - 1.0;
        assert!(gain > 0.0 && gain < 0.10, "hybrid gain {gain}");
        // MPI unchanged, compute scaled down.
        assert_eq!(phi.soi_hybrid_time(N32, &host).mpi, phi.soi_time(N32).mpi);
    }

    /// §6.1: "1 segment per socket of Xeon E5-2680 and 6 segments per Xeon
    /// Phi (recall that a Xeon Phi has ~6× compute capability)".
    #[test]
    fn segment_balance_matches_paper_rule() {
        let host = MachineSpec::xeon_e5_2680();
        let phi = MachineSpec::xeon_phi_se10();
        assert_eq!(ClusterModel::segments_per_accelerator(&host, &phi), 6);
    }

    #[test]
    fn proportional_segments_sum_and_order() {
        // 2 Xeon sockets + 2 Phis, 16 segments → roughly 1:1:6:6 scaled.
        let socket = MachineSpec::xeon_e5_2680().peak_gflops / 2.0;
        let phi = MachineSpec::xeon_phi_se10().peak_gflops;
        let counts = ClusterModel::proportional_segments(&[socket, socket, phi, phi], 14);
        assert_eq!(counts.iter().sum::<usize>(), 14);
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[2], counts[3]);
        assert!(counts[2] >= 5 * counts[0].max(1), "{counts:?}");

        // Uniform peaks → uniform counts, remainders spread.
        let even = ClusterModel::proportional_segments(&[1.0; 4], 10);
        assert_eq!(even.iter().sum::<usize>(), 10);
        assert!(even.iter().all(|&c| c == 2 || c == 3));
    }

    #[test]
    fn malformed_model_inputs_are_typed_errors() {
        assert_eq!(
            ClusterModel::try_proportional_segments(&[], 4),
            Err(ModelError::EmptyPeaks)
        );
        assert!(matches!(
            ClusterModel::try_proportional_segments(&[1.0, 0.0], 4),
            Err(ModelError::NonPositivePeak { index: 1, .. })
        ));
        assert!(matches!(
            ClusterModel::try_proportional_segments(&[1.0, f64::NAN], 4),
            Err(ModelError::NonPositivePeak { index: 1, .. })
        ));
        assert_eq!(
            FatTreeSpec::try_oversubscription_for(20, 20, 0.5),
            Err(ModelError::NodesWithinLeaf {
                nodes: 20,
                leaf_ports: 20
            })
        );
        assert!(matches!(
            FatTreeSpec::try_oversubscription_for(20, 512, 0.0),
            Err(ModelError::BadEfficiency { .. })
        ));
        assert!(matches!(
            FatTreeSpec::try_oversubscription_for(20, 512, 1.5),
            Err(ModelError::BadEfficiency { .. })
        ));
        // Valid inputs keep working through both entry points.
        let ok = ClusterModel::try_proportional_segments(&[1.0, 1.0], 4).unwrap();
        assert_eq!(ok, vec![2, 2]);
        // Typed errors render with the offending values.
        let msg = ModelError::NonPositivePeak {
            index: 3,
            value: -1.0,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains("-1"));
    }

    /// The calibrated η(512) = 0.54 corresponds, under the structural
    /// fat-tree model with Stampede-like 20-port leaves, to an uplink
    /// oversubscription of ~1.9 — within the plausible 1-3 range for
    /// production fat trees (Stampede's was 5/4 by design, and achieved
    /// all-to-all efficiency is always worse than the design ratio).
    #[test]
    fn fat_tree_cross_validates_calibration() {
        let net = NetworkSpec::default();
        let eta512 = net.efficiency(512);
        let os = FatTreeSpec::oversubscription_for(20, 512, eta512);
        assert!(os > 1.0 && os < 3.0, "implied oversubscription {os}");
        // And the forward direction reproduces the efficiency.
        let ft = FatTreeSpec {
            leaf_ports: 20,
            oversubscription: os,
        };
        assert!((ft.efficiency(512) - eta512).abs() < 1e-12);
        // Structural model: full bandwidth inside one leaf, monotone decay
        // beyond, asymptote 1/oversubscription.
        assert_eq!(ft.efficiency(16), 1.0);
        assert!(ft.efficiency(64) > ft.efficiency(512));
        assert!(ft.efficiency(1 << 20) > 1.0 / os - 1e-9);
    }

    #[test]
    fn network_efficiency_monotone() {
        let net = NetworkSpec::default();
        assert_eq!(net.efficiency(4), 1.0);
        assert_eq!(net.efficiency(32), 1.0);
        let mut prev = 1.0;
        for p in [64, 128, 256, 512, 1024] {
            let e = net.efficiency(p);
            assert!(e < prev && e > 0.3, "p={p} e={e}");
            prev = e;
        }
    }

    #[test]
    fn overlap_shrinks_exposed_mpi() {
        let phi = ClusterModel::xeon_phi(128);
        let n = (1u64 << 27) as f64 * 128.0;
        let t1 = phi.soi_time_overlapped(n, 1);
        let t8 = phi.soi_time_overlapped(n, 8);
        assert_eq!(t1, phi.soi_time(n));
        assert!(t8.mpi < t1.mpi);
        assert!(t8.total() < t1.total());
        // Compute components unchanged.
        assert_eq!(t8.local_fft, t1.local_fft);
        assert_eq!(t8.conv, t1.conv);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = Breakdown {
            local_fft: 1.0,
            conv: 2.0,
            mpi: 3.0,
            pci: 0.5,
        };
        assert_eq!(b.total(), 6.5);
    }

    #[test]
    fn tflops_inverts_time() {
        let n = (1u64 << 30) as f64;
        let flops = 5.0 * n * n.log2();
        assert!(close(ClusterModel::tflops(n, 1.0), flops / 1e12, 1e-9));
    }

    #[test]
    fn cluster_constructors() {
        let x = ClusterModel::xeon(16);
        let p = ClusterModel::xeon_phi(16);
        assert_eq!(x.nodes, 16);
        assert_eq!(x.machine.name, "Xeon E5-2680");
        assert_eq!(p.machine.name, "Xeon Phi SE10");
        assert_eq!(x.network, p.network);
    }
}
