//! Intra-node parallel substrate.
//!
//! The paper uses a hybrid parallelization: MPI across nodes, OpenMP within
//! a node (§2). This crate is the OpenMP stand-in: a small, explicit
//! parallel-for layer with a *deterministic thread count*, which the
//! fine-grain-parallelization ablation (Fig 10) and the convolution
//! thread-level parallelization (Fig 7 `loop_a`) both need. It offers:
//!
//! * [`Pool`] — a parallelism context with a fixed thread count,
//!   * [`Pool::par_chunks_mut`] — statically partitioned parallel loop over
//!     disjoint mutable chunks (the common FFT batch pattern),
//!   * [`Pool::par_ranges`] — dynamically (atomically) chunked parallel loop
//!     over an index range for irregular work,
//!   * [`Pool::join`] — two-way fork-join,
//! * [`WorkQueue`] — a persistent background worker for `'static` jobs,
//!   used by the cluster runtime's pipelined all-to-all.
//!
//! All borrowed-data parallelism uses `std::thread::scope`, so the crate is
//! 100 % safe Rust. When the pool has one thread (the default on a
//! single-core host) every primitive degrades to inline execution with zero
//! spawn overhead, which keeps micro-benchmarks honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};

/// Busy/idle accounting for an instrumented [`Pool`].
///
/// Workers add the wall time of every task closure they run (`busy`)
/// and count the tasks; idle time is whatever remains of
/// `threads × region wall time`. Shared through an `Arc`, so clones of
/// an instrumented pool (e.g. one per rank thread) report into the same
/// counters. Reading is racy-but-monotonic: totals only grow.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

impl PoolMetrics {
    /// Total wall-clock seconds workers spent inside task closures.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Total task closures executed.
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    fn note(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A parallelism context with a fixed number of worker threads.
///
/// `Pool` does not keep threads alive between calls; each parallel region
/// spawns scoped threads (and runs inline when `threads == 1`). On an HPC
/// node the spawn cost (~10 µs) is negligible against the multi-millisecond
/// kernels this workspace runs under it.
///
/// # Example
///
/// ```
/// use soifft_par::Pool;
///
/// let pool = Pool::new(4);
/// let mut data = vec![0u64; 1024];
/// pool.par_chunks_mut(&mut data, 16, |_piece, offset, chunk| {
///     for (i, v) in chunk.iter_mut().enumerate() {
///         *v = (offset + i) as u64;
///     }
/// });
/// assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
/// ```
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
    /// Busy accounting, shared by clones; `None` (the default) keeps
    /// every primitive's hot path free of timer calls.
    metrics: Option<Arc<PoolMetrics>>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(default_parallelism())
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Pool {
    /// Creates a pool that will use exactly `threads` workers
    /// (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one thread");
        Pool {
            threads,
            metrics: None,
        }
    }

    /// A single-threaded pool (all primitives run inline).
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// Creates a pool with busy/task accounting attached; read the
    /// counters through [`Pool::metrics`]. Clones share the counters.
    pub fn instrumented(threads: usize) -> Self {
        let mut pool = Pool::new(threads);
        pool.metrics = Some(Arc::default());
        pool
    }

    /// The busy-accounting handle, when this pool is instrumented.
    pub fn metrics(&self) -> Option<&Arc<PoolMetrics>> {
        self.metrics.as_ref()
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f`, folding its wall time into the metrics when the pool is
    /// instrumented. The uninstrumented path is one `Option` branch.
    fn timed<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.metrics {
            None => f(),
            Some(m) => {
                let t = Instant::now();
                let out = f();
                m.note(t.elapsed());
                out
            }
        }
    }

    /// Runs `a` and `b` in parallel and returns both results.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads == 1 {
            return (self.timed(a), self.timed(b));
        }
        std::thread::scope(|s| {
            let hb = s.spawn(move || self.timed(b));
            let ra = self.timed(a);
            (ra, hb.join().expect("joined task panicked"))
        })
    }

    /// Splits `data` into up to `threads` contiguous pieces (each a multiple
    /// of `granule` except possibly the last) and runs
    /// `f(piece_index, offset, piece)` on each in parallel.
    ///
    /// This is the static-partition loop used for batches of independent
    /// FFTs and for the interchange-parallelized convolution, where uniform
    /// work makes dynamic scheduling pointless.
    ///
    /// # Panics
    /// Panics if `granule == 0` or `data.len()` is not a multiple of
    /// `granule`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], granule: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert!(granule > 0, "granule must be positive");
        assert_eq!(
            data.len() % granule,
            0,
            "data length {} is not a multiple of granule {}",
            data.len(),
            granule
        );
        let granules = data.len() / granule;
        let pieces = self.threads.min(granules.max(1));
        if pieces <= 1 {
            self.timed(|| f(0, 0, data));
            return;
        }
        // Ceil-divide granules over pieces, convert back to elements.
        let per = granules.div_ceil(pieces) * granule;
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            let mut offset = 0;
            let mut idx = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let this_offset = offset;
                let this_idx = idx;
                s.spawn(move || self.timed(|| f(this_idx, this_offset, head)));
                offset += take;
                idx += 1;
            }
        });
    }

    /// [`Pool::par_chunks_mut`] with one mutable scratch slot per piece:
    /// runs `f(piece_index, offset, piece, scratch_slot)` where
    /// `scratch_slot` is `&mut scratch[piece_index]`. Because pieces and
    /// slots are split from the same parent slices, no worker ever
    /// allocates its own scratch — the caller plans `scratch` once (one
    /// element per potential worker) and every parallel region reuses it.
    /// This is the primitive behind the steady-state zero-allocation FFT
    /// batches and convolution passes.
    ///
    /// # Panics
    /// Panics if `granule == 0`, `data.len()` is not a multiple of
    /// `granule`, or `scratch` has fewer than
    /// `min(threads, data.len() / granule)` elements.
    pub fn par_chunks_mut_scratch<T, S, F>(
        &self,
        data: &mut [T],
        granule: usize,
        scratch: &mut [S],
        f: F,
    ) where
        T: Send,
        S: Send,
        F: Fn(usize, usize, &mut [T], &mut S) + Sync,
    {
        assert!(granule > 0, "granule must be positive");
        assert_eq!(
            data.len() % granule,
            0,
            "data length {} is not a multiple of granule {}",
            data.len(),
            granule
        );
        let granules = data.len() / granule;
        let pieces = self.threads.min(granules.max(1));
        assert!(
            scratch.len() >= pieces,
            "need {} scratch slots, got {}",
            pieces,
            scratch.len()
        );
        if pieces <= 1 {
            self.timed(|| f(0, 0, data, &mut scratch[0]));
            return;
        }
        let per = granules.div_ceil(pieces) * granule;
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            let mut slots = scratch;
            let mut offset = 0;
            let mut idx = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let (slot, slot_tail) = slots.split_at_mut(1);
                slots = slot_tail;
                let slot = &mut slot[0];
                let this_offset = offset;
                let this_idx = idx;
                s.spawn(move || self.timed(|| f(this_idx, this_offset, head, slot)));
                offset += take;
                idx += 1;
            }
        });
    }

    /// Runs `f` over sub-ranges of `range`, dynamically handing out chunks
    /// of `grain` indices from a shared atomic cursor. Use for irregular
    /// work; captures of `f` must be `Sync` (shared state goes through
    /// interior mutability or atomics).
    pub fn par_ranges<F>(&self, range: Range<usize>, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        assert!(grain > 0, "grain must be positive");
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        if self.threads == 1 || len <= grain {
            self.timed(|| f(range));
            return;
        }
        let cursor = AtomicUsize::new(range.start);
        let end = range.end;
        let workers = self.threads.min(len.div_ceil(grain));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let lo = cursor.fetch_add(grain, Ordering::Relaxed);
                    if lo >= end {
                        break;
                    }
                    let hi = (lo + grain).min(end);
                    self.timed(|| f(lo..hi));
                });
            }
        });
    }

    /// Convenience: parallel loop over every index in `range` with dynamic
    /// chunking.
    pub fn par_for_each<F>(&self, range: Range<usize>, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.par_ranges(range, grain, |r| {
            for i in r {
                f(i)
            }
        });
    }

    /// Parallel map-reduce over an index range: `map` produces one value
    /// per sub-range, `reduce` folds them (must be associative;
    /// commutativity is NOT required — partials are folded in range
    /// order). Used for norms and error reductions over large vectors.
    pub fn par_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send + Clone,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        assert!(grain > 0, "grain must be positive");
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        if self.threads == 1 || len <= grain {
            return reduce(identity, self.timed(|| map(range)));
        }
        // Static partition into ordered pieces so the fold order is
        // deterministic regardless of which thread finishes first.
        let pieces = self.threads.min(len.div_ceil(grain));
        let per = len.div_ceil(pieces);
        let mut partials: Vec<Option<T>> = vec![None; pieces];
        std::thread::scope(|s| {
            let map = &map;
            for (idx, slot) in partials.iter_mut().enumerate() {
                let lo = range.start + idx * per;
                let hi = (lo + per).min(range.end);
                s.spawn(move || {
                    if lo < hi {
                        *slot = Some(self.timed(|| map(lo..hi)));
                    }
                });
            }
        });
        partials.into_iter().flatten().fold(identity, reduce)
    }
}

/// A persistent background worker executing `'static` jobs in FIFO order.
///
/// The cluster runtime uses one of these per rank to pipeline PCIe-style
/// staging copies with "InfiniBand" sends (§5.1: "pcie transfer times ...
/// hidden by pipelining"): the producer enqueues chunk jobs and later waits
/// for the queue to drain.
pub struct WorkQueue {
    tx: Option<Sender<Job>>,
    handle: Option<std::thread::JoinHandle<()>>,
    pending: Arc<Pending>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Pending {
    count: parking_lot::Mutex<usize>,
    cv: parking_lot::Condvar,
}

impl WorkQueue {
    /// Spawns the worker thread.
    pub fn new(name: &str) -> Self {
        let (tx, rx) = unbounded::<Job>();
        let pending: Arc<Pending> = Arc::default();
        let p2 = Arc::clone(&pending);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                for job in rx {
                    job();
                    let mut n = p2.count.lock();
                    *n -= 1;
                    if *n == 0 {
                        p2.cv.notify_all();
                    }
                }
            })
            .expect("failed to spawn worker thread");
        WorkQueue {
            tx: Some(tx),
            handle: Some(handle),
            pending,
        }
    }

    /// Enqueues a job; returns immediately.
    pub fn push(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut n = self.pending.count.lock();
            *n += 1;
        }
        self.tx
            .as_ref()
            .expect("queue already shut down")
            .send(Box::new(job))
            .expect("worker thread died");
    }

    /// Blocks until every enqueued job has finished.
    pub fn drain(&self) {
        let mut n = self.pending.count.lock();
        while *n != 0 {
            self.pending.cv.wait(&mut n);
        }
    }
}

impl Drop for WorkQueue {
    fn drop(&mut self) {
        self.drain();
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let (a, b) = pool.join(|| 6 * 7, || "ok");
            assert_eq!(a, 42);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0u32; 240];
            pool.par_chunks_mut(&mut data, 8, |_idx, offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32 + 1;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as u32 + 1, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_offsets_are_consistent() {
        let pool = Pool::new(4);
        let mut data: Vec<usize> = (0..96).collect();
        pool.par_chunks_mut(&mut data, 4, |_idx, offset, chunk| {
            // Element values equal their global index.
            for (i, &v) in chunk.iter().enumerate() {
                assert_eq!(v, offset + i);
            }
        });
    }

    #[test]
    fn par_chunks_mut_respects_granule_boundaries() {
        let pool = Pool::new(3);
        let mut data = vec![0u8; 7 * 5];
        pool.par_chunks_mut(&mut data, 7, |_, offset, chunk| {
            assert_eq!(offset % 7, 0);
            assert_eq!(chunk.len() % 7, 0);
        });
    }

    #[test]
    #[should_panic(expected = "not a multiple of granule")]
    fn par_chunks_mut_rejects_ragged_input() {
        let pool = Pool::new(2);
        let mut data = vec![0u8; 10];
        pool.par_chunks_mut(&mut data, 3, |_, _, _| {});
    }

    #[test]
    fn par_chunks_mut_scratch_gives_each_piece_its_own_slot() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0u32; 240];
            // One reusable accumulator per potential worker.
            let mut scratch = vec![Vec::<u32>::new(); threads];
            pool.par_chunks_mut_scratch(&mut data, 8, &mut scratch, |idx, offset, chunk, acc| {
                acc.push(idx as u32);
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (offset + i) as u32 + 1;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as u32 + 1, "threads={threads} i={i}");
            }
            // Every piece wrote only to its own slot.
            for (slot_idx, acc) in scratch.iter().enumerate() {
                assert!(
                    acc.iter().all(|&idx| idx as usize == slot_idx),
                    "threads={threads} slot={slot_idx}: {acc:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch slots")]
    fn par_chunks_mut_scratch_rejects_short_scratch() {
        let pool = Pool::new(4);
        let mut data = vec![0u8; 16];
        let mut scratch: Vec<u8> = vec![0; 1];
        pool.par_chunks_mut_scratch(&mut data, 4, &mut scratch, |_, _, _, _| {});
    }

    #[test]
    fn par_ranges_covers_range_exactly() {
        for threads in [1, 2, 5] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            pool.par_ranges(3..97, 7, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                let expect = u64::from((3..97).contains(&i));
                assert_eq!(h.load(Ordering::Relaxed), expect, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn par_ranges_empty_range_is_noop() {
        let pool = Pool::new(4);
        pool.par_ranges(5..5, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_for_each_sums_correctly() {
        let pool = Pool::new(4);
        let sum = AtomicU64::new(0);
        pool.par_for_each(0..1000, 32, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_reduce_sums_deterministically() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let total = pool.par_reduce(
                0..10_000,
                64,
                0u64,
                |r| r.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(total, 9_999 * 10_000 / 2, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_ordered_fold_for_non_commutative_ops() {
        // String concatenation is associative but not commutative: the
        // result must be in range order for any thread count.
        let expect: String = (0..40).map(|i| format!("{i},")).collect();
        for threads in [1, 3, 8] {
            let pool = Pool::new(threads);
            let got = pool.par_reduce(
                0..40,
                4,
                String::new(),
                |r| r.map(|i| format!("{i},")).collect::<String>(),
                |a, b| a + &b,
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_empty_range_returns_identity() {
        let pool = Pool::new(4);
        let v = pool.par_reduce(3..3, 1, 42u32, |_| panic!("no work"), |a, _| a);
        assert_eq!(v, 42);
    }

    #[test]
    fn work_queue_runs_jobs_in_order_and_drains() {
        let q = WorkQueue::new("test-worker");
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..32 {
            let log = Arc::clone(&log);
            q.push(move || log.lock().push(i));
        }
        q.drain();
        assert_eq!(*log.lock(), (0..32).collect::<Vec<_>>());
        // Queue is reusable after a drain.
        let log2 = Arc::clone(&log);
        q.push(move || log2.lock().push(99));
        q.drain();
        assert_eq!(log.lock().last(), Some(&99));
    }

    #[test]
    fn work_queue_drop_waits_for_jobs() {
        let flag = Arc::new(AtomicUsize::new(0));
        {
            let q = WorkQueue::new("drop-test");
            let f = Arc::clone(&flag);
            q.push(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                f.store(1, Ordering::SeqCst);
            });
        } // drop must block until the job ran
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_accessors() {
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::new(7).threads(), 7);
        assert!(default_parallelism() >= 1);
        assert!(Pool::default().threads() >= 1);
        assert!(Pool::new(2).metrics().is_none());
    }

    #[test]
    fn instrumented_pool_counts_busy_time_and_tasks() {
        for threads in [1, 3] {
            let pool = Pool::instrumented(threads);
            let mut data = vec![0u64; 96];
            pool.par_chunks_mut(&mut data, 8, |_, offset, chunk| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (offset + i) as u64;
                }
            });
            pool.par_for_each(0..10, 2, |_| {});
            let (a, b) = pool.join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
            let m = pool.metrics().expect("instrumented");
            // par_chunks_mut ran at least one timed piece (2 ms sleep
            // each), par_ranges some chunks, join exactly two closures.
            assert!(m.tasks() >= 1 + 1 + 2, "threads={threads}: {}", m.tasks());
            assert!(
                m.busy_seconds() >= 0.002,
                "threads={threads}: {}",
                m.busy_seconds()
            );
            // Clones share the counters.
            let before = pool.metrics().unwrap().tasks();
            let clone = pool.clone();
            clone.par_for_each(0..4, 1, |_| {});
            assert!(pool.metrics().unwrap().tasks() > before);
        }
    }

    #[test]
    fn uninstrumented_pool_results_match_instrumented() {
        let plain = Pool::new(3);
        let inst = Pool::instrumented(3);
        let sum = |p: &Pool| {
            p.par_reduce(
                0..1000,
                16,
                0u64,
                |r| r.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            )
        };
        assert_eq!(sum(&plain), sum(&inst));
        assert!(inst.metrics().unwrap().tasks() > 0);
    }
}
