//! Convolution-and-oversampling: `u = W x` (paper §5.3).
//!
//! Per rank, the structured sparse multiply produces `M'/P` blocks of `L`
//! elements; block `m = c·n_µ + j` is
//!
//! ```text
//! u_m[p] = Σ_{b<B} w(bL + p − jσ) · x[(c·d_µ + b)·L + p],   σ = d_µL/n_µ
//! ```
//!
//! reading a `B·L`-sample input window that advances by `d_µ·L` per chunk
//! (`n_µ` blocks). This costs `8BµN` flops — the extra arithmetic SOI pays
//! for removing two all-to-alls — so its bandwidth behaviour matters; the
//! paper's Fig 11 ablates three implementations which are reproduced here
//! as [`ConvStrategy`]:
//!
//! * [`ConvStrategy::RowMajor`] — the straightforward Fig 6(a) form:
//!   process output rows in order; every chunk touches all `n_µ·B·L`
//!   distinct matrix elements, a working set that grows with the segment
//!   count (∝ nodes) and eventually overflows the LLC.
//! * [`ConvStrategy::Interchanged`] — the loop-interchanged, decomposed
//!   Fig 6(b)/Fig 7 form: one input column `p` at a time, touching only
//!   that column's `n_µ·B` taps — a working set *independent of scale*.
//!   The price is (a) stride-`L` input access and (b) the block outputs
//!   only materialize after a final transpose (the paper's "extra main
//!   memory sweep", mitigated there by non-temporal stores).
//! * [`ConvStrategy::InterchangedBuffered`] — adds the §5.3 circular-buffer
//!   staging: the `B` live inputs of a column are kept contiguous and only
//!   `d_µ` strided loads happen per chunk, converting almost all long-
//!   stride traffic (which conflict-misses badly when `L` is a power of
//!   two) into unit-stride traffic.
//!
//! All three produce bit-comparable results (tests check exact agreement of
//! the mathematical ordering where it holds, and tight tolerances where
//! re-association differs).

use soifft_num::c64;
use soifft_num::kernels::{axpy_pointwise, dot, dot_strided};
use soifft_num::strided::CircularBuffer;
use soifft_par::Pool;

use crate::params::SoiParams;
use crate::window::Window;

/// Which convolution implementation to run (the Fig 11 ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConvStrategy {
    /// Straightforward row-major form (baseline).
    RowMajor,
    /// Loop-interchanged decomposed form (working set independent of P).
    Interchanged,
    /// Interchanged plus circular-buffer input staging.
    InterchangedBuffered,
}

impl ConvStrategy {
    /// The ladder in Fig 11 order.
    pub const ALL: [ConvStrategy; 3] = [
        ConvStrategy::RowMajor,
        ConvStrategy::Interchanged,
        ConvStrategy::InterchangedBuffered,
    ];

    /// Label matching the paper's Fig 11 legend.
    pub fn label(self) -> &'static str {
        match self {
            ConvStrategy::RowMajor => "baseline",
            ConvStrategy::Interchanged => "interchange",
            ConvStrategy::InterchangedBuffered => "buffering",
        }
    }
}

/// One pool worker's reusable convolution state: the §5.3 circular
/// buffer + its dense snapshot (buffered columns) and one `F_L` plan
/// scratch (fused conv+FFT). Owned by [`ConvScratch`], one slot per
/// worker, so no parallel piece ever allocates.
#[derive(Clone, Debug)]
struct ConvWorker {
    ring: CircularBuffer,
    dense: Vec<c64>,
    fft: Vec<c64>,
}

/// Reusable scratch for the convolution stage: the transposed
/// intermediate `ut` of the interchanged forms plus one [`ConvWorker`]
/// per pool thread. Plan it once ([`ConvScratch::new`]) and pass it to
/// [`convolve_with_scratch`] / [`convolve_fused_fft_with_scratch`];
/// steady-state calls then perform zero heap allocations.
#[derive(Clone, Debug)]
pub struct ConvScratch {
    ut: Vec<c64>,
    workers: Vec<ConvWorker>,
}

impl ConvScratch {
    /// Sizes scratch for `params` under `pool`: `ut` holds the full
    /// `L × blocks_per_rank` transposed intermediate, each worker a
    /// `B`-tap ring + snapshot and an `F_L` plan scratch.
    pub fn new(params: &SoiParams, plan_l: &soifft_fft::Plan, pool: &Pool) -> Self {
        let l = params.total_segments();
        let blocks = params.blocks_per_rank();
        let b = params.conv_width;
        ConvScratch {
            ut: vec![c64::ZERO; l * blocks],
            workers: (0..pool.threads())
                .map(|_| ConvWorker {
                    ring: CircularBuffer::new(b),
                    dense: vec![c64::ZERO; b],
                    fft: plan_l.make_scratch(),
                })
                .collect(),
        }
    }
}

/// The sized-but-planless scratch [`convolve`] builds for itself: the
/// unfused strategies never touch the per-worker FFT scratch.
fn unplanned_scratch(params: &SoiParams, pool: &Pool) -> ConvScratch {
    let l = params.total_segments();
    let blocks = params.blocks_per_rank();
    let b = params.conv_width;
    ConvScratch {
        ut: vec![c64::ZERO; l * blocks],
        workers: (0..pool.threads())
            .map(|_| ConvWorker {
                ring: CircularBuffer::new(b),
                dense: vec![c64::ZERO; b],
                fft: Vec::new(),
            })
            .collect(),
    }
}

/// Runs the convolution for one rank.
///
/// * `input_ext` — this rank's `N/P` input elements followed by the
///   `(B−d_µ)·L` ghost elements from its successor,
/// * `out` — `blocks_per_rank · L` output elements (block-major),
/// * `pool` — intra-node parallelism (chunks for RowMajor, columns for the
///   interchanged forms, mirroring the paper's `loop_a` thread-level
///   parallelization).
///
/// Allocates its scratch internally; repeated callers should plan a
/// [`ConvScratch`] once and use [`convolve_with_scratch`].
pub fn convolve(
    params: &SoiParams,
    window: &Window,
    strategy: ConvStrategy,
    input_ext: &[c64],
    out: &mut [c64],
    pool: &Pool,
) {
    let mut scratch = unplanned_scratch(params, pool);
    convolve_with_scratch(params, window, strategy, input_ext, out, pool, &mut scratch);
}

/// [`convolve`] against caller-owned [`ConvScratch`]: no heap allocation
/// inside the call (all three strategies).
#[allow(clippy::too_many_arguments)]
pub fn convolve_with_scratch(
    params: &SoiParams,
    window: &Window,
    strategy: ConvStrategy,
    input_ext: &[c64],
    out: &mut [c64],
    pool: &Pool,
    scratch: &mut ConvScratch,
) {
    let l = params.total_segments();
    let blocks = params.blocks_per_rank();
    let chunks = params.chunks_per_rank();
    let n_mu = params.mu.num();
    let d_mu = params.mu.den();
    let b = params.conv_width;
    assert_eq!(
        input_ext.len(),
        params.per_rank() + params.ghost_len(),
        "input must include the ghost region"
    );
    assert_eq!(
        out.len(),
        blocks * l,
        "output must hold blocks_per_rank · L"
    );

    match strategy {
        ConvStrategy::RowMajor => {
            // Parallel over whole chunks; each chunk writes n_µ·L outputs.
            out.fill(c64::ZERO);
            pool.par_chunks_mut(out, n_mu * l, |_, offset, piece| {
                let c0 = offset / (n_mu * l);
                for (ci, chunk_out) in piece.chunks_exact_mut(n_mu * l).enumerate() {
                    let c = c0 + ci;
                    let in_base = c * d_mu * l;
                    for j in 0..n_mu {
                        let taps = window.taps_row(j);
                        let block = &mut chunk_out[j * l..(j + 1) * l];
                        // b-outer / p-inner: contiguous AXPY of length L per
                        // tap block; touches the full n_µ·B·L tap set every
                        // chunk (the Fig 6(a) working-set problem).
                        for bb in 0..b {
                            axpy_pointwise(
                                block,
                                &taps[bb * l..(bb + 1) * l],
                                &input_ext[in_base + bb * l..in_base + (bb + 1) * l],
                            );
                        }
                    }
                }
            });
        }
        ConvStrategy::Interchanged | ConvStrategy::InterchangedBuffered => {
            // Column-decomposed: write the transposed result (one
            // contiguous row per input column p), then transpose into
            // block-major order — the paper's extra memory sweep.
            if scratch.ut.len() < l * blocks {
                scratch.ut.resize(l * blocks, c64::ZERO);
            }
            let ut = &mut scratch.ut[..l * blocks];
            let buffered = strategy == ConvStrategy::InterchangedBuffered;
            pool.par_chunks_mut_scratch(ut, blocks, &mut scratch.workers, |_, offset, cols, w| {
                let p0 = offset / blocks;
                for (pi, col_out) in cols.chunks_exact_mut(blocks).enumerate() {
                    let p = p0 + pi;
                    if buffered {
                        column_pass_buffered(
                            window, input_ext, col_out, p, l, chunks, n_mu, d_mu, b, w,
                        );
                    } else {
                        column_pass_strided(
                            window, input_ext, col_out, p, l, chunks, n_mu, d_mu, b,
                        );
                    }
                }
            });
            // The paper's "extra main memory sweep" of the decomposed form,
            // band-parallel over output blocks (each thread writes its own
            // contiguous rows of `out`, reading `ut` strided).
            let ut_ro: &[c64] = ut;
            pool.par_chunks_mut(out, l, |_, offset, band| {
                let m0 = offset / l;
                for (mi, block) in band.chunks_exact_mut(l).enumerate() {
                    let m = m0 + mi;
                    for (p, v) in block.iter_mut().enumerate() {
                        *v = ut_ro[p * blocks + m];
                    }
                }
            });
        }
    }
}

/// One column of the interchanged form: stride-L input reads.
#[allow(clippy::too_many_arguments)]
fn column_pass_strided(
    window: &Window,
    input_ext: &[c64],
    col_out: &mut [c64],
    p: usize,
    l: usize,
    chunks: usize,
    n_mu: usize,
    d_mu: usize,
    b: usize,
) {
    let taps = window.taps_for_p(p); // n_µ × B, unit stride
    for c in 0..chunks {
        let base = c * d_mu * l + p;
        for j in 0..n_mu {
            let t = &taps[j * b..(j + 1) * b];
            col_out[c * n_mu + j] = dot_strided(t, &input_ext[base..], l);
        }
    }
}

/// One column with circular-buffer staging: `B` contiguous loads up front,
/// then `d_µ` strided loads per chunk. The ring and its dense snapshot
/// live in the worker's [`ConvWorker`] slot (`fill_strided` rewinds the
/// ring, so reuse across columns and calls is exact).
#[allow(clippy::too_many_arguments)]
fn column_pass_buffered(
    window: &Window,
    input_ext: &[c64],
    col_out: &mut [c64],
    p: usize,
    l: usize,
    chunks: usize,
    n_mu: usize,
    d_mu: usize,
    b: usize,
    w: &mut ConvWorker,
) {
    let taps = window.taps_for_p(p);
    if w.ring.capacity() != b {
        w.ring = CircularBuffer::new(b);
    }
    if w.dense.len() != b {
        w.dense.resize(b, c64::ZERO);
    }
    w.ring.fill_strided(input_ext, p, l);
    for c in 0..chunks {
        w.ring.snapshot(&mut w.dense);
        for j in 0..n_mu {
            col_out[c * n_mu + j] = dot(&taps[j * b..(j + 1) * b], &w.dense);
        }
        if c + 1 < chunks {
            // Slide the window by d_µ blocks: new elements live at block
            // indices c·d_µ + b .. c·d_µ + b + d_µ of column p.
            let start = (c * d_mu + b) * l + p;
            w.ring.advance_strided(input_ext, start, l, d_mu);
        }
    }
}

/// Row-major convolution with the block DFTs (`I ⊗ F_L`) fused in: as soon
/// as a block's `L` outputs are produced they are transformed while still
/// in cache, saving one full memory sweep (paper §5.3: "once P rows are
/// available, we can immediately start a P-point FFT ... This can be
/// viewed as a loop fusion optimization").
///
/// The paper notes this fusion *cannot* be applied to the decomposed
/// (interchanged) form, whose first block only completes after all `L`
/// column passes — which is why the decomposed form pays an extra sweep
/// and mitigates it with non-temporal stores instead. This function exists
/// to make that trade measurable (`benches/convolution.rs`).
///
/// Output blocks are the *transformed* `v_m = F_L(u_m)`, i.e. the input to
/// the all-to-all.
pub fn convolve_fused_fft(
    params: &SoiParams,
    window: &Window,
    input_ext: &[c64],
    out: &mut [c64],
    plan_l: &soifft_fft::Plan,
    pool: &Pool,
) {
    let mut scratch = ConvScratch::new(params, plan_l, pool);
    convolve_fused_fft_with_scratch(params, window, input_ext, out, plan_l, pool, &mut scratch);
}

/// [`convolve_fused_fft`] against caller-owned [`ConvScratch`] (per-worker
/// `F_L` scratch is grown on first use if the scratch was planned for a
/// different `plan_l`; steady-state calls never allocate).
#[allow(clippy::too_many_arguments)]
pub fn convolve_fused_fft_with_scratch(
    params: &SoiParams,
    window: &Window,
    input_ext: &[c64],
    out: &mut [c64],
    plan_l: &soifft_fft::Plan,
    pool: &Pool,
    scratch: &mut ConvScratch,
) {
    let l = params.total_segments();
    let blocks = params.blocks_per_rank();
    let n_mu = params.mu.num();
    let d_mu = params.mu.den();
    let b = params.conv_width;
    assert_eq!(plan_l.len(), l, "plan length must be L");
    assert_eq!(
        input_ext.len(),
        params.per_rank() + params.ghost_len(),
        "input must include the ghost region"
    );
    assert_eq!(
        out.len(),
        blocks * l,
        "output must hold blocks_per_rank · L"
    );

    out.fill(c64::ZERO);
    pool.par_chunks_mut_scratch(
        out,
        n_mu * l,
        &mut scratch.workers,
        |_, offset, piece, w| {
            let c0 = offset / (n_mu * l);
            if w.fft.len() < plan_l.scratch_len() {
                w.fft.resize(plan_l.scratch_len(), c64::ZERO);
            }
            for (ci, chunk_out) in piece.chunks_exact_mut(n_mu * l).enumerate() {
                let c = c0 + ci;
                let in_base = c * d_mu * l;
                for j in 0..n_mu {
                    let taps = window.taps_row(j);
                    let block = &mut chunk_out[j * l..(j + 1) * l];
                    for bb in 0..b {
                        axpy_pointwise(
                            block,
                            &taps[bb * l..(bb + 1) * l],
                            &input_ext[in_base + bb * l..in_base + (bb + 1) * l],
                        );
                    }
                    // The block is hot in cache: transform it now instead of
                    // in a later full sweep.
                    plan_l.forward_with_scratch(block, &mut w.fft);
                }
            }
        },
    );
}

/// Reference implementation straight from the definition (per-row inner
/// products, no blocking, no parallelism). Used by tests and kept public
/// for external validation.
pub fn convolve_reference(params: &SoiParams, window: &Window, input_ext: &[c64], out: &mut [c64]) {
    let l = params.total_segments();
    let n_mu = params.mu.num();
    let d_mu = params.mu.den();
    let b = params.conv_width;
    for m in 0..params.blocks_per_rank() {
        let (c, j) = (m / n_mu, m % n_mu);
        let taps = window.taps_row(j);
        for p in 0..l {
            let mut acc = c64::ZERO;
            for bb in 0..b {
                acc += taps[bb * l + p] * input_ext[c * d_mu * l + bb * l + p];
            }
            out[m * l + p] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Rational, SoiParams};
    use crate::window::WindowKind;
    use soifft_num::error::rel_linf;

    fn params() -> SoiParams {
        SoiParams {
            n: 1 << 10,
            procs: 1,
            segments_per_proc: 8,
            mu: Rational::new(2, 1),
            conv_width: 16,
        }
    }

    fn input_ext(p: &SoiParams) -> Vec<c64> {
        let n = p.per_rank() + p.ghost_len();
        (0..n)
            .map(|i| c64::new((0.37 * i as f64).sin(), (0.23 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn all_strategies_match_reference() {
        let p = params();
        p.validate().unwrap();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = input_ext(&p);
        let mut reference = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
        convolve_reference(&p, &w, &x, &mut reference);
        for strategy in ConvStrategy::ALL {
            for threads in [1, 3] {
                let pool = Pool::new(threads);
                let mut got = vec![c64::ZERO; reference.len()];
                convolve(&p, &w, strategy, &x, &mut got, &pool);
                let err = rel_linf(&got, &reference);
                assert!(err < 1e-13, "{strategy:?} threads={threads}: err={err:.3e}");
            }
        }
    }

    #[test]
    fn multi_rank_shapes_also_agree() {
        // P = 4 ranks: per-rank blocks and ghost regions.
        let p = SoiParams {
            n: 1 << 12,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(2, 1),
            conv_width: 12,
        };
        p.validate().unwrap();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = input_ext(&p);
        let mut reference = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
        convolve_reference(&p, &w, &x, &mut reference);
        for strategy in ConvStrategy::ALL {
            let mut got = vec![c64::ZERO; reference.len()];
            convolve(&p, &w, strategy, &x, &mut got, &Pool::new(2));
            assert!(rel_linf(&got, &reference) < 1e-13, "{strategy:?}");
        }
    }

    #[test]
    fn fused_fft_equals_separate_conv_then_fft() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = input_ext(&p);
        let l = p.total_segments();
        let plan = soifft_fft::Plan::new(l);

        // Separate: convolve, then batch-FFT each block.
        let mut separate = vec![c64::ZERO; p.blocks_per_rank() * l];
        convolve(
            &p,
            &w,
            ConvStrategy::RowMajor,
            &x,
            &mut separate,
            &Pool::serial(),
        );
        soifft_fft::batch::forward_rows(&plan, &mut separate);

        // Fused.
        for threads in [1, 3] {
            let mut fused = vec![c64::ZERO; separate.len()];
            convolve_fused_fft(&p, &w, &x, &mut fused, &plan, &Pool::new(threads));
            assert!(rel_linf(&fused, &separate) < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn kaiser_window_convolution_consistent() {
        let p = params();
        let w = Window::new(WindowKind::KaiserSinc, &p);
        let x = input_ext(&p);
        let mut a = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
        let mut bfr = a.clone();
        convolve(&p, &w, ConvStrategy::RowMajor, &x, &mut a, &Pool::serial());
        convolve(
            &p,
            &w,
            ConvStrategy::InterchangedBuffered,
            &x,
            &mut bfr,
            &Pool::serial(),
        );
        assert!(rel_linf(&a, &bfr) < 1e-13);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = vec![c64::ZERO; p.per_rank() + p.ghost_len()];
        for strategy in ConvStrategy::ALL {
            let mut got = vec![c64::real(9.9); p.blocks_per_rank() * p.total_segments()];
            convolve(&p, &w, strategy, &x, &mut got, &Pool::serial());
            assert!(got.iter().all(|v| v.abs() == 0.0), "{strategy:?}");
        }
    }

    #[test]
    fn convolution_is_linear() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = input_ext(&p);
        let y: Vec<c64> = x.iter().map(|&v| v * c64::new(0.5, -1.0)).collect();
        let sum: Vec<c64> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let run = |inp: &[c64]| {
            let mut o = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
            convolve(
                &p,
                &w,
                ConvStrategy::Interchanged,
                inp,
                &mut o,
                &Pool::serial(),
            );
            o
        };
        let lhs = run(&sum);
        let rhs: Vec<c64> = run(&x).iter().zip(run(&y)).map(|(&a, b)| a + b).collect();
        assert!(rel_linf(&lhs, &rhs) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ghost region")]
    fn missing_ghost_panics() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = vec![c64::ZERO; p.per_rank()]; // no ghost
        let mut out = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
        convolve(
            &p,
            &w,
            ConvStrategy::RowMajor,
            &x,
            &mut out,
            &Pool::serial(),
        );
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ConvStrategy::RowMajor.label(), "baseline");
        assert_eq!(ConvStrategy::Interchanged.label(), "interchange");
        assert_eq!(ConvStrategy::InterchangedBuffered.label(), "buffering");
        assert_eq!(ConvStrategy::ALL.len(), 3);
    }
}
