//! Plan diagnostics: everything a user wants to know about an SOI
//! configuration before committing to it (the moral equivalent of FFTW's
//! plan printing).
//!
//! [`PlanReport::new`] derives, without building the (potentially large)
//! window tables: the Table 1 quantities, per-rank memory footprints,
//! communication volumes, the flop budget split, and the a-priori accuracy
//! exponent of the default window design. The `plan_report` output is also
//! where constraint violations are explained with suggested fixes (via
//! [`crate::SoiParams::suggest`]).

use std::fmt;

use crate::params::{SoiError, SoiParams};
use crate::pipeline::SimSpec;

/// A derived summary of an SOI configuration.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// The validated parameters.
    pub params: SoiParams,
    /// Derived: output bins per segment.
    pub m: usize,
    /// Derived: oversampled per-segment length.
    pub m_prime: usize,
    /// Derived: total segments.
    pub l: usize,
    /// Window tap storage per rank, bytes (`n_µ·B·L` complex).
    pub tap_bytes: usize,
    /// Convolution output per rank, bytes.
    pub conv_out_bytes: usize,
    /// Ghost exchange per rank, bytes.
    pub ghost_bytes: usize,
    /// All-to-all volume per rank, bytes (`µ·N/P` complex).
    pub alltoall_bytes: usize,
    /// Convolution flops per rank.
    pub conv_flops: f64,
    /// Local FFT flops per rank (block DFTs + recoveries).
    pub fft_flops: f64,
    /// Block-DFT (`I ⊗ F_L`) share of `fft_flops`: the segment-fft phase.
    pub seg_fft_flops: f64,
    /// Recovery-FFT (`F_{M'}` per owned segment) share of `fft_flops`:
    /// the local-fft phase.
    pub recovery_fft_flops: f64,
    /// The Gaussian-design stopband exponent `π(B−d_µ)(1−ρ)(µ−1)/2`
    /// (error ≈ e^−this; the prolate taper roughly doubles it).
    pub accuracy_exponent: f64,
}

impl PlanReport {
    /// Builds the report, or explains why the parameters are invalid
    /// (with a suggested near-by valid configuration when one exists).
    pub fn new(params: SoiParams) -> Result<Self, (SoiError, Option<SoiParams>)> {
        if let Err(e) = params.validate() {
            let suggestion = SoiParams::suggest(params.n, params.procs);
            return Err((e, suggestion));
        }
        let l = params.total_segments();
        let m = params.m();
        let m_prime = params.m_prime();
        let elem = std::mem::size_of::<soifft_num::c64>();
        let blocks = params.blocks_per_rank();
        let seg_fft = blocks as f64 * soifft_fft::fft_flops(l);
        let recovery = params.segments_per_proc as f64 * soifft_fft::fft_flops(m_prime);
        // Same constant as the window design (kept in sync by a test).
        let rho = 0.25;
        let exponent = std::f64::consts::PI
            * (params.conv_width - params.mu.den()) as f64
            * (1.0 - rho)
            * (params.mu.as_f64() - 1.0)
            / 2.0;
        Ok(PlanReport {
            m,
            m_prime,
            l,
            tap_bytes: params.mu.num() * params.conv_width * l * elem,
            conv_out_bytes: blocks * l * elem,
            ghost_bytes: params.ghost_len() * elem,
            alltoall_bytes: params.segments_per_proc * blocks * params.procs * elem,
            conv_flops: params.conv_flops() / params.procs as f64,
            fft_flops: seg_fft + recovery,
            seg_fft_flops: seg_fft,
            recovery_fft_flops: recovery,
            accuracy_exponent: exponent,
            params,
        })
    }

    /// Estimated relative error of the default Gaussian design,
    /// `e^{−accuracy_exponent}`.
    pub fn estimated_error(&self) -> f64 {
        (-self.accuracy_exponent).exp()
    }

    /// The convolution-to-FFT flop ratio (the paper's ~5× at B=72, µ=8/7
    /// on 2²⁷-point nodes).
    pub fn conv_to_fft_ratio(&self) -> f64 {
        self.conv_flops / self.fft_flops
    }

    /// The model-side per-phase time breakdown at the given machine rates
    /// (the a-priori Fig 9 prediction): each phase uses exactly the
    /// formula the virtual-time ledger applies during a simulated
    /// monolithic run, so a measured `sim_seconds` breakdown and this
    /// prediction agree to rounding.
    pub fn predicted_phases(&self, sim: &SimSpec) -> PredictedBreakdown {
        let ghost_s = if self.ghost_bytes > 0 {
            sim.net_latency_s + self.ghost_bytes as f64 / sim.net_bytes_per_s
        } else {
            0.0
        };
        PredictedBreakdown {
            ghost_s,
            convolution_s: self.conv_flops / sim.conv_flops_per_s,
            segment_fft_s: self.seg_fft_flops / sim.fft_flops_per_s,
            all_to_all_s: sim.net_latency_s + self.alltoall_bytes as f64 / sim.net_bytes_per_s,
            local_fft_s: self.recovery_fft_flops / sim.fft_flops_per_s,
        }
    }
}

/// Predicted per-rank seconds for each phase of the monolithic SOI
/// superstep at a [`SimSpec`]'s rates ([`PlanReport::predicted_phases`]).
/// Field order is pipeline order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictedBreakdown {
    /// Ghost exchange: `latency + ghost_bytes/bw`.
    pub ghost_s: f64,
    /// Convolution `u = Wx`: `conv_flops/conv_rate`.
    pub convolution_s: f64,
    /// Block DFTs (`I ⊗ F_L`): `seg_fft_flops/fft_rate`.
    pub segment_fft_s: f64,
    /// The single all-to-all: `latency + alltoall_bytes/bw`.
    pub all_to_all_s: f64,
    /// Recovery FFTs (`F_{M'}`): `recovery_fft_flops/fft_rate`.
    pub local_fft_s: f64,
}

impl PredictedBreakdown {
    /// Sum over the whole superstep.
    pub fn total_s(&self) -> f64 {
        self.ghost_s
            + self.convolution_s
            + self.segment_fft_s
            + self.all_to_all_s
            + self.local_fft_s
    }

    /// `(name, predicted seconds)` pairs in pipeline order, keyed by the
    /// ledger's phase names.
    pub fn phases(&self) -> [(&'static str, f64); 5] {
        [
            ("ghost", self.ghost_s),
            ("convolution", self.convolution_s),
            ("segment-fft", self.segment_fft_s),
            ("all-to-all", self.all_to_all_s),
            ("local-fft", self.local_fft_s),
        ]
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.params;
        writeln!(
            f,
            "SOI plan: N = {}, P = {}, S = {}, mu = {}, B = {}",
            p.n, p.procs, p.segments_per_proc, p.mu, p.conv_width
        )?;
        writeln!(
            f,
            "  segments L = {}, M = {}, M' = {}",
            self.l, self.m, self.m_prime
        )?;
        writeln!(
            f,
            "  per-rank memory: taps {} KB, conv output {} KB",
            self.tap_bytes / 1024,
            self.conv_out_bytes / 1024
        )?;
        writeln!(
            f,
            "  per-rank comms: ghost {} KB, all-to-all {} KB",
            self.ghost_bytes / 1024,
            self.alltoall_bytes / 1024
        )?;
        writeln!(
            f,
            "  per-rank flops: conv {:.2e}, FFT {:.2e} (ratio {:.1})",
            self.conv_flops,
            self.fft_flops,
            self.conv_to_fft_ratio()
        )?;
        writeln!(
            f,
            "  estimated rel. error (Gaussian window): {:.1e} (prolate: ~{:.1e})",
            self.estimated_error(),
            (-2.0 * self.accuracy_exponent).exp()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::alias_bound;
    use crate::params::Rational;
    use crate::window::{Window, WindowKind};

    fn params() -> SoiParams {
        SoiParams {
            n: 1 << 12,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(2, 1),
            conv_width: 16,
        }
    }

    #[test]
    fn report_quantities_are_consistent() {
        let r = PlanReport::new(params()).unwrap();
        assert_eq!(r.l, 8);
        assert_eq!(r.m * r.l, 1 << 12);
        assert_eq!(r.m_prime, 2 * r.m);
        assert_eq!(r.tap_bytes, 2 * 16 * 8 * 16);
        assert_eq!(r.ghost_bytes, (16 - 1) * 8 * 16);
        // All-to-all per rank = µ·N/P elements.
        assert_eq!(r.alltoall_bytes, 2 * (1 << 12) / 4 * 16);
        assert!(r.conv_flops > 0.0 && r.fft_flops > 0.0);
    }

    #[test]
    fn estimated_error_tracks_the_measured_alias_bound() {
        // The report's exponent must agree with the real window to within
        // an order of magnitude or two (it is a design-time estimate).
        let p = params();
        let r = PlanReport::new(p).unwrap();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let bound = alias_bound(&w, &p, 9, 2);
        let est = r.estimated_error();
        assert!(
            bound < est * 100.0 && bound > est / 1000.0,
            "bound {bound:.2e} vs estimate {est:.2e}"
        );
    }

    #[test]
    fn predicted_breakdown_uses_the_ledger_formulas() {
        let r = PlanReport::new(params()).unwrap();
        let sim = SimSpec {
            fft_flops_per_s: 1e9,
            conv_flops_per_s: 2e9,
            net_bytes_per_s: 1e8,
            net_latency_s: 1e-4,
        };
        let b = r.predicted_phases(&sim);
        assert_eq!(b.convolution_s, r.conv_flops / 2e9);
        assert_eq!(b.segment_fft_s, r.seg_fft_flops / 1e9);
        assert_eq!(b.local_fft_s, r.recovery_fft_flops / 1e9);
        assert_eq!(b.ghost_s, 1e-4 + r.ghost_bytes as f64 / 1e8);
        assert_eq!(b.all_to_all_s, 1e-4 + r.alltoall_bytes as f64 / 1e8);
        assert_eq!(r.seg_fft_flops + r.recovery_fft_flops, r.fft_flops);
        let total: f64 = b.phases().iter().map(|(_, s)| s).sum();
        assert!((b.total_s() - total).abs() < 1e-15);
    }

    #[test]
    fn invalid_params_come_back_with_a_suggestion() {
        let mut p = params();
        p.n += 1; // breaks divisibility
        let (err, suggestion) = PlanReport::new(p).unwrap_err();
        assert!(matches!(err, SoiError::SegmentsDontDivide { .. }));
        // 4097 is prime-ish (17·241): suggestion may or may not exist; if
        // it does, it must validate.
        if let Some(s) = suggestion {
            s.validate().unwrap();
        }
    }

    #[test]
    fn display_renders_the_key_lines() {
        let r = PlanReport::new(params()).unwrap();
        let text = r.to_string();
        assert!(text.contains("SOI plan"));
        assert!(text.contains("per-rank memory"));
        assert!(text.contains("estimated rel. error"));
    }

    #[test]
    fn paper_design_point_ratio() {
        // B = 72, µ = 8/7 on big nodes: convolution ≈ 5× the local FFT
        // flops (§5.3: "about 5× floating point operations compared to the
        // local fft").
        let p = SoiParams {
            n: 7 * (1 << 24),
            procs: 8,
            segments_per_proc: 1,
            mu: Rational::new(8, 7),
            conv_width: 72,
        };
        p.validate().unwrap();
        let r = PlanReport::new(p).unwrap();
        let ratio = r.conv_to_fft_ratio();
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
    }
}
