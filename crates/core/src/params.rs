//! SOI problem parameters and their validity constraints.
//!
//! Names mirror the paper's Table 1:
//!
//! | here | paper | meaning |
//! |---|---|---|
//! | `n` | `N` | number of input elements |
//! | `procs` | `P` | number of compute nodes (ranks) |
//! | `segments_per_proc` | — (§6.1) | segments per MPI process, `S` |
//! | `total_segments()` | — | `L = S·P`, the filter-bank size (the paper's Eq. 1 uses `P` directly because it assumes one segment per process) |
//! | `m()` | `M` | output elements per segment, `N/L` |
//! | `mu` | `µ = n_µ/d_µ` | oversampling factor |
//! | `m_prime()` | `M' = µM` | oversampled per-segment length |
//! | `conv_width` | `B` | convolution width in blocks (typical 72) |

use std::fmt;

/// An exact rational `num/den` in lowest terms, used for the oversampling
/// factor `µ = n_µ/d_µ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rational {
    num: usize,
    den: usize,
}

impl Rational {
    /// Creates `num/den`, reduced. Panics on zero denominator or numerator.
    pub fn new(num: usize, den: usize) -> Self {
        assert!(num > 0 && den > 0, "rational components must be positive");
        let g = soifft_num::factor::gcd(num, den);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator (`n_µ`).
    pub fn num(&self) -> usize {
        self.num
    }

    /// Denominator (`d_µ`).
    pub fn den(&self) -> usize {
        self.den
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `self * x`, requiring the product to be an integer.
    pub fn scale_exact(&self, x: usize) -> Option<usize> {
        let t = x.checked_mul(self.num)?;
        (t % self.den == 0).then_some(t / self.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// Everything needed to plan an SOI transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SoiParams {
    /// Total input length `N`.
    pub n: usize,
    /// Number of ranks `P`.
    pub procs: usize,
    /// Segments per rank `S` (paper §6.1 uses 8 for ≤128 nodes, 2 for
    /// ≥512).
    pub segments_per_proc: usize,
    /// Oversampling factor `µ` (paper default 8/7 in the evaluation, 5/4 in
    /// the model).
    pub mu: Rational,
    /// Convolution width `B` in blocks (paper typical value 72).
    pub conv_width: usize,
}

/// Why a parameter set cannot be planned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoiError {
    /// `L = S·P` must divide `N`.
    SegmentsDontDivide {
        /// Total segments `L`.
        l: usize,
        /// Input length `N`.
        n: usize,
    },
    /// `d_µ` must divide `M` so `M' = µM` is an integer.
    OversampleNotIntegral {
        /// Per-segment length `M`.
        m: usize,
        /// Oversampling factor.
        mu: Rational,
    },
    /// `P·n_µ` must divide `M'` so chunks do not straddle ranks.
    ChunksStraddleRanks {
        /// Oversampled length `M'`.
        m_prime: usize,
        /// Required divisor `P·n_µ`.
        divisor: usize,
    },
    /// The ghost region `(B − d_µ)·L` must fit in one successor's data.
    GhostTooLarge {
        /// Ghost length in elements.
        ghost: usize,
        /// Per-rank input length `N/P`.
        per_rank: usize,
    },
    /// `µ` must exceed 1 (oversampling, not undersampling).
    MuNotOversampling(
        /// The offending factor.
        Rational,
    ),
    /// `B` must exceed `d_µ` (the window must span more than one hop).
    ConvWidthTooSmall {
        /// Convolution width `B`.
        b: usize,
        /// Hop `d_µ`.
        d_mu: usize,
    },
    /// The window's spectral extent `(2µ−1)/L` must stay below the
    /// Nyquist interval: `L > 2µ − 1`, otherwise the integer-sampled
    /// window aliases its own spectrum and demodulation is meaningless.
    TooFewSegments {
        /// Total segments `L`.
        l: usize,
        /// Oversampling factor.
        mu: Rational,
    },
}

impl fmt::Display for SoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoiError::SegmentsDontDivide { l, n } => {
                write!(f, "total segments L={l} must divide N={n}")
            }
            SoiError::OversampleNotIntegral { m, mu } => {
                write!(f, "d_mu={} must divide M={m} (mu={mu})", mu.den())
            }
            SoiError::ChunksStraddleRanks { m_prime, divisor } => {
                write!(f, "P*n_mu={divisor} must divide M'={m_prime}")
            }
            SoiError::GhostTooLarge { ghost, per_rank } => {
                write!(
                    f,
                    "ghost region ({ghost} elems) exceeds one rank's data ({per_rank}); \
                     increase N/P or decrease B"
                )
            }
            SoiError::MuNotOversampling(mu) => {
                write!(f, "mu={mu} must be > 1")
            }
            SoiError::ConvWidthTooSmall { b, d_mu } => {
                write!(f, "conv width B={b} must exceed d_mu={d_mu}")
            }
            SoiError::TooFewSegments { l, mu } => {
                write!(
                    f,
                    "total segments L={l} must exceed 2*mu-1 = {} (window \
                     spectrum must fit below Nyquist)",
                    2.0 * mu.as_f64() - 1.0
                )
            }
        }
    }
}

impl std::error::Error for SoiError {}

impl SoiParams {
    /// Convenience constructor with the paper's evaluation defaults
    /// (`µ = 8/7`, `B = 72`, one segment per rank).
    pub fn paper_defaults(n: usize, procs: usize) -> Self {
        SoiParams {
            n,
            procs,
            segments_per_proc: 1,
            mu: Rational::new(8, 7),
            conv_width: 72,
        }
    }

    /// Total segments `L = S·P` — the size of the block DFTs `F_L` and the
    /// number of subbands the spectrum is split into.
    pub fn total_segments(&self) -> usize {
        self.segments_per_proc * self.procs
    }

    /// Per-segment output length `M = N/L`.
    pub fn m(&self) -> usize {
        self.n / self.total_segments()
    }

    /// Oversampled per-segment length `M' = µM`.
    pub fn m_prime(&self) -> usize {
        self.mu
            .scale_exact(self.m())
            .expect("µ·M is exact for validated params (SoiParams::validate checks d_µ | M)")
    }

    /// `N' = µN`, the total convolution output length.
    pub fn n_prime(&self) -> usize {
        self.m_prime() * self.total_segments()
    }

    /// Input elements per rank, `N/P`.
    pub fn per_rank(&self) -> usize {
        self.n / self.procs
    }

    /// Output blocks per rank, `M'/P` (each of size `L`).
    pub fn blocks_per_rank(&self) -> usize {
        self.m_prime() / self.procs
    }

    /// Convolution chunks per rank (`n_µ` blocks per chunk).
    pub fn chunks_per_rank(&self) -> usize {
        self.blocks_per_rank() / self.mu.num()
    }

    /// Window hop in samples: `σ = d_µ·L/n_µ = L/µ`. Not necessarily an
    /// integer; returned as the exact pair `(d_µ·L, n_µ)`.
    pub fn hop(&self) -> (usize, usize) {
        (self.mu.den() * self.total_segments(), self.mu.num())
    }

    /// Ghost elements each rank needs from its successor:
    /// `(B − d_µ)·L`.
    pub fn ghost_len(&self) -> usize {
        (self.conv_width - self.mu.den()) * self.total_segments()
    }

    /// Window support in samples, `B·L`.
    pub fn window_len(&self) -> usize {
        self.conv_width * self.total_segments()
    }

    /// Validates every structural constraint, returning the first
    /// violation.
    pub fn validate(&self) -> Result<(), SoiError> {
        let l = self.total_segments();
        assert!(self.n > 0 && self.procs > 0 && self.segments_per_proc > 0);
        if self.mu.as_f64() <= 1.0 {
            return Err(SoiError::MuNotOversampling(self.mu));
        }
        if self.conv_width <= self.mu.den() {
            return Err(SoiError::ConvWidthTooSmall {
                b: self.conv_width,
                d_mu: self.mu.den(),
            });
        }
        // Spectral-extent constraint: passband (1/L) plus both transition
        // bands (2(µ−1)/L) must fit strictly inside one Nyquist interval.
        if l as f64 <= 2.0 * self.mu.as_f64() - 1.0 {
            return Err(SoiError::TooFewSegments { l, mu: self.mu });
        }
        if !self.n.is_multiple_of(l) {
            return Err(SoiError::SegmentsDontDivide { l, n: self.n });
        }
        let m = self.n / l;
        let m_prime = match self.mu.scale_exact(m) {
            Some(v) => v,
            None => return Err(SoiError::OversampleNotIntegral { m, mu: self.mu }),
        };
        let div = self.procs * self.mu.num();
        if m_prime % div != 0 {
            return Err(SoiError::ChunksStraddleRanks {
                m_prime,
                divisor: div,
            });
        }
        let ghost = (self.conv_width - self.mu.den()) * l;
        if ghost > self.n / self.procs {
            return Err(SoiError::GhostTooLarge {
                ghost,
                per_rank: self.n / self.procs,
            });
        }
        Ok(())
    }

    /// Finds valid parameters for `n` points on `procs` ranks near the
    /// paper's defaults, or `None` if no admissible configuration exists.
    ///
    /// Search order: prefer the requested `mu` (default 8/7), then easier
    /// factors (5/4, 4/3, 3/2, 2); prefer more segments per process (up to
    /// 8, the paper's small-cluster setting) since that enables overlap;
    /// shrink `B` from 72 only if the ghost constraint demands it.
    pub fn suggest(n: usize, procs: usize) -> Option<SoiParams> {
        let mus = [
            Rational::new(8, 7),
            Rational::new(5, 4),
            Rational::new(4, 3),
            Rational::new(3, 2),
            Rational::new(2, 1),
        ];
        for &s in &[8usize, 4, 2, 1] {
            for &mu in &mus {
                for &b in &[72usize, 48, 36, 24, 16, 12] {
                    let p = SoiParams {
                        n,
                        procs,
                        segments_per_proc: s,
                        mu,
                        conv_width: b,
                    };
                    if p.validate().is_ok() {
                        return Some(p);
                    }
                }
            }
        }
        None
    }

    /// Convolution flop count, the paper's `8BµN`.
    pub fn conv_flops(&self) -> f64 {
        8.0 * self.conv_width as f64 * self.mu.as_f64() * self.n as f64
    }

    /// Total transform flops under the paper's `5N log₂ N` convention
    /// (used for GFLOPS reporting — intentionally the *standard* FFT count,
    /// not SOI's actual arithmetic, matching HPCC G-FFT accounting).
    pub fn reported_flops(&self) -> f64 {
        let n = self.n as f64;
        5.0 * n * n.log2()
    }

    /// Estimated extra flops **per rank** of one fully validated superstep
    /// (`ValidationPolicy::CheckOnly` on a fault-free run): two energy
    /// passes over the `µN/P` exchange frontier (3 flops per element for
    /// `|z|²`, before and after the block DFTs), one checksum sweep over
    /// the convolution output and one over the gathered segments (counted
    /// at 2 ops per element), and the linearity probe's three extra
    /// `L`-point FFTs. Linear in the frontier size — the basis of the
    /// pipeline's ≤5 % ABFT overhead budget, since the convolution alone
    /// costs `8Bµ` flops per element ([`SoiParams::conv_flops`]).
    /// `Recover` on a fault-free run adds only one frontier copy on top.
    pub fn validation_flops(&self) -> f64 {
        let frontier = (self.blocks_per_rank() * self.total_segments()) as f64;
        let energy_passes = 2.0 * 3.0 * frontier;
        let checksum_sweeps = 2.0 * 2.0 * frontier;
        let probe = 3.0 * soifft_fft::fft_flops(self.total_segments());
        energy_passes + checksum_sweeps + probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> SoiParams {
        // N = 7·2^10, P = 4, S = 2, µ = 8/7, B = 9.
        SoiParams {
            n: 7 * (1 << 10),
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(8, 7),
            conv_width: 9,
        }
    }

    #[test]
    fn rational_reduces() {
        let r = Rational::new(10, 8);
        assert_eq!((r.num(), r.den()), (5, 4));
        assert_eq!(r.as_f64(), 1.25);
        assert_eq!(r.to_string(), "5/4");
        assert_eq!(Rational::new(8, 7).scale_exact(14), Some(16));
        assert_eq!(Rational::new(8, 7).scale_exact(13), None);
    }

    #[test]
    fn derived_quantities() {
        let p = valid();
        p.validate().expect("should be valid");
        assert_eq!(p.total_segments(), 8);
        assert_eq!(p.m(), 7 * (1 << 10) / 8); // 896
        assert_eq!(p.m_prime(), 1024);
        assert_eq!(p.n_prime(), 8192);
        assert_eq!(p.per_rank(), 1792);
        assert_eq!(p.blocks_per_rank(), 256);
        assert_eq!(p.chunks_per_rank(), 32);
        assert_eq!(p.hop(), (7 * 8, 8)); // σ = 56/8 = 7 samples
    }

    #[test]
    fn ghost_and_window_lengths() {
        let p = valid();
        // ghost = (B − d_µ)·L = (9−7)·8 = 16; window = 9·8 = 72.
        assert_eq!(p.ghost_len(), 16);
        assert_eq!(p.window_len(), 72);
    }

    #[test]
    fn validation_catches_each_constraint() {
        let mut p = valid();
        p.mu = Rational::new(1, 1);
        assert!(matches!(p.validate(), Err(SoiError::MuNotOversampling(_))));

        let mut p = valid();
        p.conv_width = 7; // == d_mu
        assert!(matches!(
            p.validate(),
            Err(SoiError::ConvWidthTooSmall { .. })
        ));

        let mut p = valid();
        p.n = 7 * (1 << 10) + 8; // still divisible by L=8 but not by d_mu·L ⇒
                                 // M = 897 not divisible by 7.
        let r = p.validate();
        assert!(
            matches!(r, Err(SoiError::OversampleNotIntegral { .. })),
            "{r:?}"
        );

        let mut p = valid();
        p.n = 7 * (1 << 10) + 1; // not divisible by L
        assert!(matches!(
            p.validate(),
            Err(SoiError::SegmentsDontDivide { .. })
        ));

        let mut p = valid();
        p.conv_width = 300; // ghost (293·8) exceeds per-rank 1792
        assert!(matches!(p.validate(), Err(SoiError::GhostTooLarge { .. })));
    }

    #[test]
    fn chunk_straddle_detection() {
        // M' must be divisible by P·n_µ = 32·... use a case where it isn't:
        // N = 7·64, L = 8 (P=4,S=2) ⇒ M = 56, M' = 64, P·n_µ = 32; 64 % 32 == 0 ok.
        // Shrink to N = 7·32: M = 28, M' = 32, 32 % 32 == 0 ok.
        // Use P = 3: L = 6, N = 7·6·2 = 84 ⇒ M = 14, M' = 16, P·n_µ = 24 ∤ 16.
        let p = SoiParams {
            n: 84,
            procs: 3,
            segments_per_proc: 2,
            mu: Rational::new(8, 7),
            conv_width: 8,
        };
        assert!(matches!(
            p.validate(),
            Err(SoiError::ChunksStraddleRanks { .. }) | Err(SoiError::GhostTooLarge { .. })
        ));
    }

    #[test]
    fn paper_defaults_shape() {
        let p = SoiParams::paper_defaults(7 * (1 << 20), 8);
        assert_eq!(p.mu, Rational::new(8, 7));
        assert_eq!(p.conv_width, 72);
        assert_eq!(p.segments_per_proc, 1);
        p.validate().expect("paper defaults on a 7·2^20 input");
    }

    #[test]
    fn flop_accounting() {
        let p = valid();
        let n = p.n as f64;
        assert!((p.reported_flops() - 5.0 * n * n.log2()).abs() < 1.0);
        let expect = 8.0 * 9.0 * (8.0 / 7.0) * n;
        assert!((p.conv_flops() - expect).abs() < 1e-6);
    }

    #[test]
    fn too_few_segments_rejected() {
        // L = 1 aliases the window spectrum for any µ > 1; L = 3 with
        // µ = 2 sits exactly at 2µ−1 and is also rejected.
        let mut p = SoiParams {
            n: 1 << 10,
            procs: 1,
            segments_per_proc: 1,
            mu: Rational::new(2, 1),
            conv_width: 16,
        };
        assert!(matches!(p.validate(), Err(SoiError::TooFewSegments { .. })));
        p.segments_per_proc = 3; // L = 3 = 2µ−1: still rejected (strict).
        assert!(matches!(p.validate(), Err(SoiError::TooFewSegments { .. })));
        p.segments_per_proc = 4;
        p.validate().expect("L = 4 > 3 is fine");
        // µ = 8/7 admits L = 2.
        let p = SoiParams {
            n: 7 * (1 << 8),
            procs: 1,
            segments_per_proc: 2,
            mu: Rational::new(8, 7),
            conv_width: 10,
        };
        p.validate().expect("L = 2 > 9/7");
    }

    #[test]
    fn suggest_finds_paper_defaults_when_admissible() {
        // N = 7·2^20, P = 8: µ = 8/7 with B = 72 and S = 8 should validate.
        let p = SoiParams::suggest(7 * (1 << 20), 8).expect("suggestion");
        assert_eq!(p.mu, Rational::new(8, 7));
        assert_eq!(p.conv_width, 72);
        assert_eq!(p.segments_per_proc, 8);
        p.validate().unwrap();
    }

    #[test]
    fn suggest_falls_back_when_seven_does_not_divide() {
        // Pure power of two: d_µ = 7 can never divide M, so a different µ
        // must be chosen.
        let p = SoiParams::suggest(1 << 16, 4).expect("suggestion");
        assert_ne!(p.mu.den(), 7);
        p.validate().unwrap();
    }

    #[test]
    fn suggest_shrinks_b_for_tiny_problems() {
        let p = SoiParams::suggest(1 << 10, 4).expect("suggestion");
        assert!(p.conv_width < 72, "{p:?}");
        p.validate().unwrap();
    }

    #[test]
    fn suggest_rejects_impossible_shapes() {
        // 2 elements on 4 ranks: nothing can work.
        assert!(SoiParams::suggest(2, 4).is_none());
    }

    #[test]
    fn validation_overhead_is_a_small_fraction_of_the_convolution() {
        let p = SoiParams {
            n: 1 << 20,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(2, 1),
            conv_width: 40,
        };
        let per_rank_conv = p.conv_flops() / p.procs as f64;
        let ratio = p.validation_flops() / per_rank_conv;
        assert!(
            ratio > 0.0 && ratio < 0.05,
            "ABFT overhead ratio {ratio:.4}"
        );
    }

    #[test]
    fn error_messages_render() {
        let e = SoiError::SegmentsDontDivide { l: 8, n: 100 };
        assert!(e.to_string().contains("L=8"));
        let e = SoiError::GhostTooLarge {
            ghost: 10,
            per_rank: 5,
        };
        assert!(e.to_string().contains("ghost"));
    }
}
