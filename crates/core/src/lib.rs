//! Segment-of-Interest (SOI) low-communication 1D FFT — the paper's primary
//! contribution.
//!
//! SOI replaces the top level of a distributed Cooley–Tukey factorization
//! (3 all-to-all exchanges, Fig 1) with an oversampled filter-bank
//! decomposition needing **one** all-to-all plus a tiny nearest-neighbour
//! ghost exchange (Fig 2). For `y = F_N x` with `N = M·L` and `L = S·P`
//! segments over `P` ranks (paper Eq. 1):
//!
//! ```text
//! y = I_L ⊗ (W⁻¹ · Proj_{M'→M} · F_{M'}) · Perm_{L,N'} · (I_{M'} ⊗ F_L) · W x
//! ```
//!
//! * `W x` — convolution-and-oversampling with a window `w` whose Fourier
//!   transform is ≈1 on one segment of the spectrum and ≈0 at all alias
//!   offsets `±µr/L` ([`conv`], [`window`]),
//! * `I_{M'} ⊗ F_L` — an `L`-point FFT per output block
//!   ([`soifft_fft::batch`]),
//! * `Perm_{L,N'}` — the single all-to-all ([`soifft_cluster`]),
//! * `F_{M'}` then projection + demodulation `W⁻¹` — per segment
//!   ([`soifft_fft::sixstep`] with the fused-scale hook).
//!
//! The oversampling factor `µ = n_µ/d_µ > 1` (typically ≤ 5/4) buys the
//! spectral guard band that makes the factorization accurate; the
//! convolution costs `8BµN` extra flops (B = window width in blocks,
//! typically 72), the trade the whole paper is about.
//!
//! Entry points: [`SoiFftLocal`] for single-address-space transforms and
//! [`SoiFft`] for distributed transforms over a
//! [`soifft_cluster::Cluster`]. Both are validated against the direct DFT
//! in tests; accuracy as a function of `(B, µ)` is characterized by
//! [`accuracy::alias_bound`] and the accuracy bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod conv;
pub mod params;
pub mod pipeline;
pub mod procrun;
pub mod report;
pub mod single;
pub mod tcprun;
pub mod verify;
pub mod window;
pub mod wisdom;

pub use conv::ConvStrategy;
pub use params::{Rational, SoiError, SoiParams};
pub use pipeline::{
    CancelGate, ExchangePlan, Precision, SimSpec, SoiFft, SoiRunError, SoiWorkspace,
};
pub use report::{PlanReport, PredictedBreakdown};
pub use single::SoiFftLocal;
pub use verify::ValidationPolicy;
pub use window::{DemodMode, Window, WindowKind};
pub use wisdom::{TunedExec, WisdomKey};
