//! Process-wide execution-knob wisdom consulted at plan construction.
//!
//! The auto-tuner (`soifft-tune`) measures candidate execution plans and
//! installs the winners here; [`crate::SoiFft::with_window`] (and
//! [`crate::SoiFft::with_precision`], whose key includes the precision)
//! consult the registry so every subsequent construction of the same shape
//! — serving engines, benches, tests — starts from the best-known
//! execution knobs instead of the static defaults. The registry deals only
//! in **execution** knobs ([`ConvStrategy`], [`ExchangePlan`], front-end
//! fusion): it never changes the transform's *shape* (`S`, `µ`, `B`),
//! because callers size their buffers and segment counts from the
//! [`crate::SoiParams`] they pass in — a silently substituted shape would
//! break `with_segment_counts` and every output-length contract. Shape
//! tuning is exposed only through the tuner's own API, which hands back a
//! new `SoiParams` for the caller to adopt explicitly.
//!
//! Lookups are cheap (one mutex, one hash) and construction-time only;
//! the hit/miss counters let tests assert a wisdom-warm path (serve
//! startup after a tuning run) planned without probing or defaulting.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::conv::ConvStrategy;
use crate::pipeline::{ExchangePlan, Precision};

/// The shape a wisdom entry is keyed by: transform size, rank count and
/// back-half precision. (The machine fingerprint is checked at wisdom
/// *load* time by the tuner — entries from a foreign machine never reach
/// this in-process registry.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WisdomKey {
    /// Total transform size `N`.
    pub n: usize,
    /// Rank count `P`.
    pub procs: usize,
    /// Back-half precision.
    pub precision: Precision,
}

/// Tuned execution knobs for one [`WisdomKey`] — exactly the builder
/// calls [`crate::SoiFft`] accepts after construction, never the shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunedExec {
    /// Convolution strategy (ignored when `fused` is set: fusion forces
    /// the row-major form).
    pub strategy: ConvStrategy,
    /// All-to-all plan.
    pub exchange: ExchangePlan,
    /// Whether to fuse the block DFTs into the convolution sweep.
    pub fused: bool,
}

/// Registry + counters behind one lock.
#[derive(Default)]
struct Registry {
    entries: HashMap<WisdomKey, TunedExec>,
    hits: u64,
    misses: u64,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(Mutex::default)
}

/// Installs (or replaces) the tuned execution knobs for `key`.
pub fn install(key: WisdomKey, exec: TunedExec) {
    registry().lock().unwrap().entries.insert(key, exec);
}

/// The tuned knobs for `key`, if a tuning run installed any. Counts a hit
/// or miss either way.
pub fn lookup(key: &WisdomKey) -> Option<TunedExec> {
    let mut reg = registry().lock().unwrap();
    let found = reg.entries.get(key).copied();
    match found {
        Some(_) => reg.hits += 1,
        None => reg.misses += 1,
    }
    found
}

/// True when `key` has an entry, without touching the hit/miss counters
/// (observability probes use this; plan construction uses [`lookup`]).
pub fn contains(key: &WisdomKey) -> bool {
    registry().lock().unwrap().entries.contains_key(key)
}

/// Number of installed entries.
pub fn len() -> usize {
    registry().lock().unwrap().entries.len()
}

/// Registry lookups that found an entry since process start.
pub fn hits() -> u64 {
    registry().lock().unwrap().hits
}

/// Registry lookups that found nothing (constructions that ran on the
/// static defaults).
pub fn misses() -> u64 {
    registry().lock().unwrap().misses
}

/// Drops every installed entry (counters are preserved). Tests use this
/// to isolate wisdom scenarios; production code has no reason to forget.
pub fn clear() {
    registry().lock().unwrap().entries.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> WisdomKey {
        WisdomKey {
            n,
            procs: 2,
            precision: Precision::F64,
        }
    }

    #[test]
    fn install_lookup_roundtrip_and_counters() {
        let k = key(1 << 9); // distinctive size: no other test installs it
        assert!(!contains(&k));
        let miss0 = misses();
        assert!(lookup(&k).is_none());
        assert_eq!(misses(), miss0 + 1);

        let exec = TunedExec {
            strategy: ConvStrategy::RowMajor,
            exchange: ExchangePlan::PerSegment,
            fused: true,
        };
        install(k, exec);
        assert!(contains(&k));
        let hit0 = hits();
        assert_eq!(lookup(&k), Some(exec));
        assert_eq!(hits(), hit0 + 1);

        // Precision is part of the key.
        let k32 = WisdomKey {
            precision: Precision::F32,
            ..k
        };
        assert!(!contains(&k32));
    }
}
