//! The distributed SOI FFT pipeline (Fig 2).
//!
//! Per rank, in order, with each phase recorded in the rank's
//! [`soifft_cluster::CommStats`]:
//!
//! 1. **ghost** — receive `(B−d_µ)·L` elements from the successor rank
//!    (tens of KB; the latency-bound nearest-neighbour step of §5.1),
//! 2. **convolution** — `u = W x` on the extended local input,
//! 3. **segment-fft** — `L`-point FFT per output block (`I_{M'} ⊗ F_L`),
//! 4. **all-to-all** — the single `Perm_{L,N'}` exchange (optionally
//!    chunk-pipelined, and optionally split per segment so later exchanges
//!    overlap earlier segments' recovery, §6.1's multi-segment trick),
//! 5. **local-fft** — `F_{M'}` per owned segment with the demodulation
//!    `W⁻¹` fused into the final write-back (§5.2.4),
//! 6. projection — keep the first `M` bins of each segment.
//!
//! The output is the natural-order spectrum, block-distributed: rank `r`
//! ends with `y[r·N/P .. (r+1)·N/P)`.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

use soifft_cluster::{
    checksum, BitFlipSite, CheckpointStore, Cluster, ClusterConfig, Comm, CommError, CommStats,
    ExchangePolicy, RankOutcome, RecoveryCtx, RecoveryOutcome, RestartPolicy, Supervisor,
    ValidationPolicy,
};
use soifft_fft::{batch, Plan, SixStepFft, SixStepScratch, SixStepVariant};
use soifft_num::{c32, c64};
use soifft_par::Pool;

use crate::conv::{
    convolve, convolve_fused_fft_with_scratch, convolve_with_scratch, ConvScratch, ConvStrategy,
};
use crate::params::{SoiError, SoiParams};
use crate::verify;
use crate::window::{Window, WindowKind};

/// How the all-to-all is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangePlan {
    /// One monolithic exchange (longest messages, no overlap) — the
    /// paper's few-segments/many-nodes setting.
    Monolithic,
    /// Split into chunks of the given element count, sent round-robin
    /// (§5.1 pipelining).
    Chunked(usize),
    /// One exchange per local segment index; segment `σ`'s recovery FFT
    /// runs before segment `σ+1`'s exchange, the §6.1 overlap structure.
    PerSegment,
    /// Send-ahead with polling receives: ALL segments' packets are posted
    /// up front, then each segment is recovered as soon as its last packet
    /// arrives (non-blocking `try_recv` polling between FFTs). The closest
    /// software analogue of the paper's overlapped multi-segment mode on a
    /// transport without true asynchrony.
    Overlapped,
    /// Route the exchange through the §5.1 reverse-communication proxy
    /// core: a dedicated background worker stages each chunk (the PCIe DMA
    /// stand-in) and pushes it to the wire, pipelined chunk-by-chunk.
    /// Uniform segment layouts only.
    Proxied(usize),
}

/// Arithmetic and wire precision of the pipeline's back half (the
/// all-to-all payload and the per-segment recovery `F_{M'}`).
///
/// The front end (ghost exchange, convolution, block DFTs) always runs in
/// double precision — the window's stopband depth is what the whole
/// algorithm's accuracy rests on. What `Precision` selects is what happens
/// from the exchange frontier on:
///
/// * [`Precision::F64`] — double precision end to end (the paper's native
///   format). The default.
/// * [`Precision::F32`] — the frontier is demoted to `c32` once, the
///   all-to-all ships **half-width** payloads (two `c32` bit-packed per
///   `c64` wire element, so message volume halves without touching the
///   transport), and the recovery `F_{M'}` plus demodulation run in single
///   precision ([`soifft_fft::shared_plan_f32`]). Cheapest, noisiest:
///   accuracy is bounded by the f32 FFT (~1e-6 relative).
/// * [`Precision::Split`] — the same half-width exchange as `F32`, but
///   receivers promote the payload back to `c64` and the fused six-step
///   `F_{M'}` + demodulation run in double precision. The only
///   single-precision event is the one frontier quantization, so accuracy
///   sits between `F32` and `F64` (~1e-7 relative, transport-limited).
///
/// Applies to the plain forward family ([`SoiFft::forward`],
/// [`SoiFft::forward_into`], [`SoiFft::forward_many`],
/// [`SoiFft::forward_many_into`], [`SoiFft::inverse`]) under every
/// [`ExchangePlan`] and [`ConvStrategy`]. The resilient and recoverable
/// pipelines (`try_forward*`, [`SoiFft::forward_recovered`],
/// [`SoiFft::forward_segments`]) always run double precision: their
/// checksum tags, checkpoints, and retransmit staging are specified on the
/// full-width wire format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision end to end (default).
    #[default]
    F64,
    /// Single-precision exchange payload and recovery FFT.
    F32,
    /// Single-precision exchange payload, double-precision recovery
    /// (f32 transport, f64 accumulate).
    Split,
}

impl Precision {
    /// All supported precisions, for test/bench sweeps.
    pub const ALL: [Precision; 3] = [Precision::F64, Precision::F32, Precision::Split];

    /// True when the exchange ships the bit-packed half-width payload.
    pub fn half_width_exchange(self) -> bool {
        self != Precision::F64
    }
}

/// Bit-packs two `c32` into one `c64` wire element. Pure bit moves: the
/// transport only copies (or byte-serializes) `c64` buffers, so arbitrary
/// bit patterns — including ones that would be NaNs if interpreted as
/// `f64` — survive the trip unchanged.
#[inline]
fn pack_c32_pair(a: c32, b: c32) -> c64 {
    c64::new(
        f64::from_bits(((a.re.to_bits() as u64) << 32) | a.im.to_bits() as u64),
        f64::from_bits(((b.re.to_bits() as u64) << 32) | b.im.to_bits() as u64),
    )
}

/// Inverse of [`pack_c32_pair`]. Production unpacking goes through the
/// dispatched bulk kernel (`simd::unpack_c32_pairs`); this single-element
/// form stays as the round-trip reference the packing test pins against.
#[cfg(test)]
#[inline]
fn unpack_c32_pair(v: c64) -> (c32, c32) {
    let re = v.re.to_bits();
    let im = v.im.to_bits();
    (
        c32::new(f32::from_bits((re >> 32) as u32), f32::from_bits(re as u32)),
        c32::new(f32::from_bits((im >> 32) as u32), f32::from_bits(im as u32)),
    )
}

/// Appends the `blocks` `c32` values of one half-width part to `out`
/// (dropping the zero pad element when `blocks` is odd), through the
/// dispatched unpack kernel — the receive side touches the whole
/// frontier, so this copy is bandwidth that matters.
fn unpack_part_into(part: &[c64], blocks: usize, out: &mut Vec<c32>) {
    let start = out.len();
    out.resize(start + blocks, c32::ZERO);
    soifft_num::simd::unpack_c32_pairs(part, &mut out[start..]);
}

/// Virtual-time rates for a modeled target machine (DESIGN.md §1): when
/// installed via [`SoiFft::with_sim`], every phase of a functional run is
/// annotated with the seconds it would take at these rates — wall-clock
/// correctness from the simulation, paper-scale timing from the model, in
/// one ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSpec {
    /// Effective node-local FFT rate (efficiency × peak), flops/s.
    pub fft_flops_per_s: f64,
    /// Effective convolution rate, flops/s.
    pub conv_flops_per_s: f64,
    /// Per-rank injection bandwidth, bytes/s.
    pub net_bytes_per_s: f64,
    /// Per-exchange latency floor, seconds.
    pub net_latency_s: f64,
}

/// Phase names of the recoverable SOI pipeline: the checkpoint keys used
/// by [`SoiFft::try_forward_recoverable`] in the supervisor's
/// [`CheckpointStore`], and the labels accepted by
/// [`CrashSite::Phase`](soifft_cluster::CrashSite::Phase) crash plans.
pub mod phases {
    /// Ghost exchange result (the successor rank's input prefix).
    pub const GHOST: &str = "ghost";
    /// Post-convolution `u = W x` (non-fused pipelines only — the fused
    /// form has no standalone convolution boundary).
    pub const CONVOLUTION: &str = "convolution";
    /// `u` after the block DFTs (`I ⊗ F_L`) — the exchange frontier.
    pub const SEGMENT_FFT: &str = "segment-fft";
    /// The flattened all-to-all result (everything this rank needs to
    /// recover its segments without further communication).
    pub const ALL_TO_ALL: &str = "all-to-all";
}

/// A distributed SOI run that could not complete: which pipeline phase
/// failed, the underlying [`CommError`], and the partial [`CommStats`]
/// ledger accumulated up to the failure (so a chaos harness or operator
/// can still see how far the superstep got and what it cost).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SoiRunError {
    /// Pipeline phase that failed (`"ghost"`, `"all-to-all"`, or
    /// `"checkpoint"` when a recovery resume found its snapshot missing or
    /// corrupt).
    pub phase: &'static str,
    /// The communication failure.
    pub error: CommError,
    /// This rank's ledger at the moment of failure (boxed to keep the
    /// error small enough to move through `Result` cheaply).
    pub stats: Box<CommStats>,
}

impl SoiRunError {
    fn new(phase: &'static str, error: CommError, stats: CommStats) -> Self {
        SoiRunError {
            phase,
            error,
            stats: Box::new(stats),
        }
    }
}

impl std::fmt::Display for SoiRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SOI pipeline failed in {} phase: {}",
            self.phase, self.error
        )
    }
}

impl std::error::Error for SoiRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Cooperative cancellation token for
/// [`SoiFft::try_forward_into_cancellable`], shared by every rank of one
/// superstep (and by whoever may cancel it — a serving dispatcher's
/// deadline watchdog, a drain path, an operator).
///
/// The hazard with cancelling a *collective* pipeline is divergence: if
/// each rank polled a plain flag, a cancel landing mid-phase could let
/// rank 0 enter the all-to-all while rank 1 aborts — and the survivors
/// would hang waiting for a peer that already left. `CancelGate` prevents
/// this with a decide-once slot per collective boundary: the first rank
/// to reach the boundary atomically fixes the decision (proceed or
/// cancel) from the flag's state at that instant, and every later rank
/// obeys the recorded decision rather than re-reading the flag. All ranks
/// therefore take the same collective path, with no extra communication.
///
/// A gate covers exactly one superstep. Call [`CancelGate::reset`] only
/// between supersteps, once no rank can still be inside the previous one
/// (the serving engine does this at batch boundaries, behind its own
/// barrier).
#[derive(Debug, Default)]
pub struct CancelGate {
    /// The request: sticky until [`CancelGate::reset`].
    cancelled: AtomicBool,
    /// Decide-once slot per collective boundary.
    decisions: [AtomicU8; 2],
}

impl CancelGate {
    /// Boundary index: before the ghost exchange.
    const BOUNDARY_GHOST: usize = 0;
    /// Boundary index: before the all-to-all.
    const BOUNDARY_ALL_TO_ALL: usize = 1;

    const UNDECIDED: u8 = 0;
    const PROCEED: u8 = 1;
    const CANCEL: u8 = 2;

    /// A fresh, un-cancelled gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Takes effect at the next collective boundary
    /// whose decision is not yet fixed; boundaries already decided
    /// `proceed` run to completion. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (not whether any boundary
    /// has acted on it yet).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Re-arms the gate for the next superstep: clears the request and all
    /// boundary decisions. Caller must guarantee no rank is still inside
    /// the previous superstep.
    pub fn reset(&self) {
        self.cancelled.store(false, Ordering::Release);
        for slot in &self.decisions {
            slot.store(Self::UNDECIDED, Ordering::Release);
        }
    }

    /// Fixes (or reads) the decision at `boundary`; `true` means proceed
    /// into the collective.
    fn proceed_at(&self, boundary: usize) -> bool {
        let wish = if self.is_cancelled() {
            Self::CANCEL
        } else {
            Self::PROCEED
        };
        match self.decisions[boundary].compare_exchange(
            Self::UNDECIDED,
            wish,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => wish == Self::PROCEED,
            Err(decided) => decided == Self::PROCEED,
        }
    }
}

/// The result of a supervised, checkpointing SOI run
/// ([`SoiFft::forward_recovered`]): every rank's output, present even when
/// rank incarnations died along the way.
#[derive(Clone, Debug)]
pub struct RecoveredRun {
    /// Per-rank output slices, indexed by rank (natural order, exactly as
    /// [`SoiFft::forward`] would have returned them).
    pub outputs: Vec<Vec<c64>>,
    /// Per-rank communication ledgers. A rank that died mid-epoch keeps
    /// the ledger of its final incarnation; degraded-mode recompute work is
    /// absorbed into the ledger of the survivor that performed it.
    pub stats: Vec<CommStats>,
    /// How the run completed — [`RecoveryOutcome::None`] for a clean run,
    /// [`RecoveryOutcome::Recovered`] when restarts or degraded-mode
    /// recomputation were needed. Mirrored into every ledger in `stats`.
    pub recovery: RecoveryOutcome,
}

/// One rank's preallocated working set for the SOI pipeline, planned by
/// [`SoiFft::make_workspace`] and threaded through
/// [`SoiFft::forward_into`] (and the `try_*_into` variants): the extended
/// input staging, the convolution output `u` and its per-worker scratch,
/// the segment-FFT worker scratch, the pack/unpack exchange slots, and
/// the per-segment recovery buffers (assembly, six-step aux and scratch).
///
/// Reusing one workspace across back-to-back transforms is what makes the
/// steady-state hot path allocation-free on the default configuration:
/// every buffer is sized at plan time, exchange payloads cycle through
/// the communicator's pool ([`Comm::acquire_buffer`] /
/// [`Comm::recycle_buffer`]), and after a warmup call the pipeline
/// touches the allocator zero times per [`SoiFft::forward_into`] call
/// (see `tests/alloc_steady_state.rs`).
#[derive(Clone, Debug)]
pub struct SoiWorkspace {
    /// Local input extended with the ghost prefix (`per_rank + ghost_len`).
    input_ext: Vec<c64>,
    /// Post-convolution / post-block-DFT frontier (`blocks · L`).
    u: Vec<c64>,
    /// Convolution scratch (ring, dense taps window, fused-FFT scratch).
    conv: ConvScratch,
    /// One row-FFT scratch per pool worker for the block DFTs.
    seg_workers: Vec<Vec<c64>>,
    /// Per-destination pack slots; refilled from the pool each call and
    /// moved onto the wire by the exchange.
    outgoing: Vec<Vec<c64>>,
    /// Received exchange payloads; recycled into the pool after recovery.
    incoming: Vec<Vec<c64>>,
    /// Assembled segment `z_s` (`M'`).
    z: Vec<c64>,
    /// Six-step auxiliary buffer (`M'`).
    aux: Vec<c64>,
    /// Six-step internal scratch for the recovery FFTs.
    seg_scratch: SixStepScratch,
    /// Assembled low-precision segment (`M'`); empty unless the plan's
    /// [`Precision`] ships the half-width exchange.
    z32: Vec<c32>,
    /// Scratch for the `f32` recovery plan ([`Precision::F32`] only).
    fft32_scratch: Vec<c32>,
}

/// A planned distributed SOI transform. Plan once (collectively — every
/// rank constructs the same plan), call [`SoiFft::forward`] inside a
/// cluster closure. Plans are `Clone`, so one rank can plan and others
/// adapt a copy (e.g. per-rank [`SimSpec`]s).
///
/// # Example
///
/// ```
/// use soifft_cluster::Cluster;
/// use soifft_core::{Rational, SoiFft, SoiParams};
/// use soifft_num::c64;
///
/// let params = SoiParams {
///     n: 4096,
///     procs: 4,
///     segments_per_proc: 2,
///     mu: Rational::new(2, 1),
///     conv_width: 16,
/// };
/// let fft = SoiFft::new(params).unwrap();
/// let per = params.per_rank();
/// let x: Vec<c64> = (0..params.n).map(|i| c64::real(i as f64)).collect();
/// let slices: Vec<Vec<c64>> =
///     x.chunks(per).map(|s| s.to_vec()).collect();
/// let outputs = Cluster::run(params.procs, |comm| {
///     fft.forward(comm, &slices[comm.rank()]) // ONE all-to-all inside
/// });
/// assert_eq!(outputs.len(), 4);
/// assert_eq!(outputs[0].len(), per);
/// ```
#[derive(Clone)]
pub struct SoiFft {
    params: SoiParams,
    window: Arc<Window>,
    plan_l: Arc<Plan>,
    segment_fft: SixStepFft,
    demod_scale: Vec<c64>,
    strategy: ConvStrategy,
    exchange: ExchangePlan,
    precision: Precision,
    /// `f32` recovery plan for `F_{M'}` ([`Precision::F32`] only).
    plan_mp32: Option<Arc<Plan<f32>>>,
    /// Demodulation diagonal demoted to `c32` ([`Precision::F32`] only).
    demod_scale32: Vec<c32>,
    pool: Pool,
    sim: Option<SimSpec>,
    fuse_segment_fft: bool,
    validation: ValidationPolicy,
    /// Segments owned by each rank (uniform `S` by default; heterogeneous
    /// for mixed Xeon/Phi clusters per §6.1's load-balance rule).
    seg_counts: Vec<usize>,
    /// Prefix sums of `seg_counts`: global id of rank `q`'s first segment.
    seg_base: Vec<usize>,
}

impl SoiFft {
    /// Plans the transform for `params` with the default Gaussian-sinc
    /// window.
    pub fn new(params: SoiParams) -> Result<Self, SoiError> {
        Self::with_window(params, WindowKind::GaussianSinc)
    }

    /// Plans with an explicit window family.
    ///
    /// Construction consults the process-wide [`crate::wisdom`] registry
    /// for this `(N, P, F64)` shape: when a tuning run has installed
    /// execution knobs, they replace the static defaults (strategy,
    /// exchange, fusion — never the shape). Builder calls made after
    /// construction still override wisdom; [`SoiFft::with_precision`]
    /// re-consults under the new precision key.
    pub fn with_window(params: SoiParams, kind: WindowKind) -> Result<Self, SoiError> {
        params.validate()?;
        let window = Arc::new(Window::new(kind, &params));
        let m = params.m();
        let m_prime = params.m_prime();
        let mut demod_scale = vec![c64::ZERO; m_prime];
        demod_scale[..m].copy_from_slice(&window.demod()[..m]);
        let counts = vec![params.segments_per_proc; params.procs];
        let base = prefix_sums(&counts);
        let tuned = crate::wisdom::lookup(&crate::wisdom::WisdomKey {
            n: params.n,
            procs: params.procs,
            precision: Precision::F64,
        });
        let fft = SoiFft {
            // `F_L` comes from the process-wide plan cache: every rank of
            // a simulated cluster shares the same segment count, so all
            // ranks share one twiddle table.
            plan_l: soifft_fft::shared_plan(params.total_segments()),
            segment_fft: SixStepFft::new(m_prime, SixStepVariant::FusedDynamic),
            demod_scale,
            window,
            params,
            strategy: ConvStrategy::InterchangedBuffered,
            exchange: ExchangePlan::Monolithic,
            precision: Precision::F64,
            plan_mp32: None,
            demod_scale32: Vec::new(),
            pool: Pool::serial(),
            sim: None,
            fuse_segment_fft: false,
            validation: ValidationPolicy::Off,
            seg_counts: counts,
            seg_base: base,
        };
        Ok(match tuned {
            Some(exec) => fft.with_tuned_exec(exec),
            None => fft,
        })
    }

    /// Applies tuned execution knobs (wisdom): strategy, exchange plan and
    /// front-end fusion. Never touches the shape.
    pub fn with_tuned_exec(mut self, exec: crate::wisdom::TunedExec) -> Self {
        self.strategy = exec.strategy;
        self.exchange = exec.exchange;
        if exec.fused {
            self = self.with_fused_segment_fft();
        } else {
            self.fuse_segment_fft = false;
        }
        self
    }

    /// Assigns a heterogeneous number of segments to each rank (the §6.1
    /// load-balance rule for mixed clusters: "1 segment per socket of Xeon
    /// E5-2680 and 6 segments per Xeon Phi"). `counts` must have one entry
    /// per rank and sum to `total_segments()`; rank `q`'s output is then
    /// `counts[q]·M` elements covering its contiguous segment range.
    ///
    /// # Panics
    /// Panics if the counts do not partition the segments.
    pub fn with_segment_counts(mut self, counts: Vec<usize>) -> Self {
        assert_eq!(counts.len(), self.params.procs, "one count per rank");
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.params.total_segments(),
            "counts must sum to L"
        );
        self.seg_base = prefix_sums(&counts);
        self.seg_counts = counts;
        self
    }

    /// This rank's output length (`counts[rank]·M`; uniform layouts give
    /// `N/P`).
    pub fn output_len(&self, rank: usize) -> usize {
        self.seg_counts[rank] * self.params.m()
    }

    /// Selects the convolution strategy.
    pub fn with_strategy(mut self, strategy: ConvStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the all-to-all plan.
    pub fn with_exchange(mut self, exchange: ExchangePlan) -> Self {
        self.exchange = exchange;
        self
    }

    /// Selects the wire/arithmetic [`Precision`] of the exchange and
    /// recovery half of the pipeline. `F32` additionally plans the `f32`
    /// recovery `F_{M'}` (from the process-wide single-precision plan
    /// cache) and demotes the demodulation diagonal once, here at plan
    /// time.
    ///
    /// Re-consults the [`crate::wisdom`] registry under the new
    /// `(N, P, precision)` key — a tuning run may have found different
    /// execution knobs for the half-width exchange than for full-width —
    /// so call `with_precision` *before* manual strategy/exchange
    /// overrides when combining both.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        if let Some(exec) = crate::wisdom::lookup(&crate::wisdom::WisdomKey {
            n: self.params.n,
            procs: self.params.procs,
            precision,
        }) {
            self = self.with_tuned_exec(exec);
        }
        if precision == Precision::F32 {
            self.plan_mp32 = Some(soifft_fft::shared_plan_f32(self.params.m_prime()));
            self.demod_scale32 = self.demod_scale.iter().map(|&v| c32::from_c64(v)).collect();
        } else {
            self.plan_mp32 = None;
            self.demod_scale32 = Vec::new();
        }
        self
    }

    /// The planned [`Precision`].
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The planned convolution strategy.
    pub fn strategy(&self) -> ConvStrategy {
        self.strategy
    }

    /// The planned all-to-all plan.
    pub fn exchange(&self) -> ExchangePlan {
        self.exchange
    }

    /// True when the block DFTs are fused into the convolution sweep.
    pub fn fused_segment_fft(&self) -> bool {
        self.fuse_segment_fft
    }

    /// Selects the intra-node pool.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Installs virtual-time rates: phases of subsequent runs carry
    /// `sim_seconds` for the modeled machine alongside wall clock.
    pub fn with_sim(mut self, sim: SimSpec) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Selects the silent-data-corruption defense (ABFT) level. `Off`
    /// (the default) runs no invariant checks; `CheckOnly` verifies the
    /// phase-boundary invariants of [`crate::verify`] and surfaces the
    /// first violation as
    /// [`CommError::SilentCorruption`]; `Recover` additionally re-executes
    /// only the flagged phase or segment on the owning rank, up to
    /// [`verify::RETRY_BUDGET`] attempts, before escalating. Detection and
    /// repair events land in the rank's [`CommStats`] SDC counters.
    ///
    /// The fused front end ([`SoiFft::with_fused_segment_fft`]) has no
    /// standalone convolution boundary, so its per-phase Parseval check is
    /// unavailable; validation there falls back to a whole-front-end
    /// checksum guard plus the machinery linearity probe.
    pub fn with_validation(mut self, validation: ValidationPolicy) -> Self {
        self.validation = validation;
        self
    }

    /// Fuses the block DFTs (`I ⊗ F_L`) into the convolution loop (§5.3's
    /// sweep-saving fusion). Forces the row-major convolution form — the
    /// paper notes the fusion cannot apply to the decomposed form.
    pub fn with_fused_segment_fft(mut self) -> Self {
        self.fuse_segment_fft = true;
        self.strategy = ConvStrategy::RowMajor;
        self
    }

    /// The planned parameters.
    pub fn params(&self) -> &SoiParams {
        &self.params
    }

    /// The planned window.
    pub fn window(&self) -> &Arc<Window> {
        &self.window
    }

    /// Plans this transform's reusable working set: every buffer the
    /// pipeline touches per call, sized for this plan's parameters and
    /// pool, allocated once. Thread it through [`SoiFft::forward_into`]
    /// (or [`SoiFft::try_forward_into`] /
    /// [`SoiFft::try_forward_recoverable_into`]) to run back-to-back
    /// transforms without per-call allocation.
    pub fn make_workspace(&self) -> SoiWorkspace {
        let p = &self.params;
        let l = p.total_segments();
        let blocks = p.blocks_per_rank();
        let m_prime = p.m_prime();
        SoiWorkspace {
            input_ext: Vec::with_capacity(p.per_rank() + p.ghost_len()),
            u: vec![c64::ZERO; blocks * l],
            conv: ConvScratch::new(p, &self.plan_l, &self.pool),
            seg_workers: batch::make_worker_scratch(&self.plan_l, &self.pool),
            outgoing: vec![Vec::new(); p.procs],
            incoming: Vec::with_capacity(p.procs),
            z: Vec::with_capacity(m_prime),
            aux: vec![c64::ZERO; m_prime],
            seg_scratch: self.segment_fft.make_scratch(),
            z32: Vec::with_capacity(if self.precision.half_width_exchange() {
                m_prime
            } else {
                0
            }),
            fft32_scratch: match &self.plan_mp32 {
                Some(plan) => plan.make_scratch(),
                None => Vec::new(),
            },
        }
    }

    /// Computes this rank's slice of `y = F_N x`.
    ///
    /// `local_input` is rank `r`'s `x[r·N/P .. (r+1)·N/P)`; the return
    /// value is `y[r·N/P .. (r+1)·N/P)` (natural order).
    ///
    /// Thin wrapper over [`SoiFft::forward_into`] that owns a fresh
    /// [`SoiWorkspace`] and output buffer for one call; iterated callers
    /// should plan the workspace once and use the `_into` form (or
    /// [`SoiFft::forward_many`]) to keep the steady state allocation-free.
    pub fn forward(&self, comm: &mut Comm, local_input: &[c64]) -> Vec<c64> {
        let mut ws = self.make_workspace();
        let mut y = vec![c64::ZERO; self.output_len(comm.rank())];
        self.forward_into(comm, local_input, &mut ws, &mut y);
        y
    }

    /// [`SoiFft::forward`] against a caller-planned [`SoiWorkspace`] and
    /// output slice (`y.len() == output_len(rank)`). Bit-identical to
    /// [`SoiFft::forward`]; on the default configuration a warm workspace
    /// makes the whole call allocation-free (exchange payloads cycle
    /// through the communicator's buffer pool).
    pub fn forward_into(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) {
        let p = &self.params;
        assert_eq!(comm.size(), p.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), p.per_rank(), "wrong local input length");
        assert_eq!(y.len(), self.output_len(comm.rank()), "wrong output length");

        // Virtual-time accounting, when configured — and *cleared* when
        // not: a plan without a `SimSpec` must not inherit the cost model
        // a previous plan left on this reused `Comm`.
        match self.sim {
            Some(sim) => comm.stats_mut().set_cost_model(soifft_cluster::CostModel {
                bytes_per_s: sim.net_bytes_per_s,
                latency_s: sim.net_latency_s,
            }),
            None => comm.stats_mut().clear_cost_model(),
        }
        comm.stats_mut().span_open("superstep");

        // 1. Ghost exchange (the received prefix is recycled into the
        // pool once staged into the extended input, balancing the
        // staging buffer the exchange acquired).
        let ghost = comm.exchange_ghost(local_input, p.ghost_len());

        // 2-3. Convolution, then block DFTs. The infallible API has no
        // typed error channel, so an unrepairable silent-corruption
        // detection surfaces as a rank panic (like any other fatal fault
        // on this path); use `try_forward` for structured SDC reports.
        self.front_end_core(comm, local_input, &ghost, None, ws)
            .unwrap_or_else(|e| panic!("{e}"));
        comm.recycle_buffer(ghost);

        // 4-6. Exchange and per-segment recovery.
        match self.exchange {
            ExchangePlan::PerSegment => {
                let out = self.recover_per_segment(comm, &ws.u);
                y.copy_from_slice(&out);
            }
            ExchangePlan::Overlapped => {
                let out = self.recover_overlapped(comm, &ws.u);
                y.copy_from_slice(&out);
            }
            _ if self.precision.half_width_exchange() => {
                self.recover_monolithic_lowprec_into(comm, ws, y)
            }
            _ => self.recover_monolithic_into(comm, ws, y),
        }
        comm.stats_mut().span_close("superstep");
        publish_plan_cache_gauges(comm);
    }

    /// Throughput (batch) mode: runs `inputs.len()` back-to-back
    /// transforms through one planned workspace — transform `b` consumes
    /// `inputs[b]` (this rank's slice) and yields `outputs[b]`. After the
    /// first call warms the workspace and the communicator's buffer pool,
    /// each remaining transform runs the whole pipeline without touching
    /// the allocator (default configuration), which is where the
    /// throughput gain over repeated [`SoiFft::forward`] calls comes
    /// from — the per-call working set is bandwidth, not heap churn.
    pub fn forward_many(&self, comm: &mut Comm, inputs: &[Vec<c64>]) -> Vec<Vec<c64>> {
        let mut ws = self.make_workspace();
        let mut outputs = vec![Vec::new(); inputs.len()];
        self.forward_many_into(comm, inputs, &mut ws, &mut outputs);
        outputs
    }

    /// [`SoiFft::forward_many`] against a caller-planned workspace and
    /// output set — the fully planned serving shape. Transform `b`
    /// consumes `inputs[b]` and lands in `outputs[b]` (resized to
    /// `output_len(rank)` if needed, so a reused output ring costs
    /// nothing after its first batch). With warm outputs, workspace, and
    /// buffer pool, every transform in the batch runs the whole pipeline
    /// without touching the allocator (default configuration) — the
    /// steady state is bandwidth-bound, not heap-bound, which is the
    /// §5.3 argument applied to serving.
    pub fn forward_many_into(
        &self,
        comm: &mut Comm,
        inputs: &[Vec<c64>],
        ws: &mut SoiWorkspace,
        outputs: &mut [Vec<c64>],
    ) {
        assert_eq!(inputs.len(), outputs.len(), "one output slot per input");
        let out_len = self.output_len(comm.rank());
        for (x, y) in inputs.iter().zip(outputs.iter_mut()) {
            y.resize(out_len, c64::ZERO);
            self.forward_into(comm, x, ws, y);
        }
    }

    /// Fault-tolerant forward transform: the same pipeline as
    /// [`SoiFft::forward`], but the superstep's communication retries
    /// transient faults up to `policy`'s round budget (the ghost exchange
    /// through [`Comm::try_exchange_ghost`], the all-to-all through the
    /// consensus-checked [`Comm::all_to_all_resilient`]) and permanent
    /// failures surface as a structured [`SoiRunError`] carrying the
    /// partial [`CommStats`] ledger, instead of panicking or hanging.
    ///
    /// Always uses the monolithic exchange form (the resilient collective
    /// re-sends whole rounds; chunk pipelining and round-based retry do not
    /// compose). Every rank must call this collectively with the same
    /// `policy`.
    pub fn try_forward(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
    ) -> Result<Vec<c64>, SoiRunError> {
        let mut ws = self.make_workspace();
        let mut y = vec![c64::ZERO; self.output_len(comm.rank())];
        self.try_forward_into(comm, local_input, policy, &mut ws, &mut y)?;
        Ok(y)
    }

    /// [`SoiFft::try_forward`] against a caller-planned [`SoiWorkspace`]
    /// and output slice. The fault-free steady state allocates only what
    /// the resilient collective itself must (per-round retransmit staging
    /// and consensus messages — bounded, pool-recycled copies), never the
    /// pipeline's working set.
    pub fn try_forward_into(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        self.try_forward_into_gated(comm, local_input, policy, None, ws, y)
    }

    /// Cancellation-aware [`SoiFft::try_forward_into`]: the same resilient
    /// pipeline, but polling `gate` at each collective boundary (before the
    /// ghost exchange and before the all-to-all). When the gate has been
    /// [cancelled](CancelGate::cancel) by the time a boundary *decides* —
    /// the first rank to arrive fixes the decision for everyone, so all
    /// ranks take the same collective path even if the cancel lands while
    /// ranks are mid-phase — the run stops with
    /// `SoiRunError { error: CommError::Cancelled { .. }, .. }` instead of
    /// starting the next collective.
    ///
    /// Every rank must call this collectively with the *same* `gate` (one
    /// gate per superstep; [`CancelGate::reset`] re-arms it between
    /// supersteps). A serving dispatcher uses this to shed a job whose
    /// deadline expired while it was already on the ranks: cancellation is
    /// cooperative, takes effect at the next boundary, and never tears the
    /// collective (see `soifft-serve`).
    pub fn try_forward_into_cancellable(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        gate: &CancelGate,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        self.try_forward_into_gated(comm, local_input, policy, Some(gate), ws, y)
    }

    /// Shared implementation of [`SoiFft::try_forward_into`] and
    /// [`SoiFft::try_forward_into_cancellable`].
    fn try_forward_into_gated(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        gate: Option<&CancelGate>,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        let p = &self.params;
        assert_eq!(comm.size(), p.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), p.per_rank(), "wrong local input length");
        assert_eq!(y.len(), self.output_len(comm.rank()), "wrong output length");

        match self.sim {
            Some(sim) => comm.stats_mut().set_cost_model(soifft_cluster::CostModel {
                bytes_per_s: sim.net_bytes_per_s,
                latency_s: sim.net_latency_s,
            }),
            None => comm.stats_mut().clear_cost_model(),
        }

        comm.stats_mut().span_open("superstep");
        let result = self.try_forward_into_body(comm, local_input, policy, gate, ws, y);
        comm.stats_mut().span_close("superstep");
        publish_plan_cache_gauges(comm);
        result
    }

    /// [`SoiFft::try_forward_into`]'s pipeline body, split out so the
    /// `"superstep"` trace span closes on the error path too.
    fn try_forward_into_body(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        gate: Option<&CancelGate>,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        let p = &self.params;
        if let Some(g) = gate {
            if !g.proceed_at(CancelGate::BOUNDARY_GHOST) {
                return Err(SoiRunError::new(
                    phases::GHOST,
                    CommError::Cancelled {
                        phase: phases::GHOST,
                    },
                    comm.stats().clone(),
                ));
            }
        }
        self.probe_machinery(comm)?;
        let ghost = comm
            .try_exchange_ghost(local_input, p.ghost_len(), policy)
            .map_err(|e| SoiRunError::new("ghost", e, comm.stats().clone()))?;
        self.front_end_core(comm, local_input, &ghost, None, ws)?;
        comm.recycle_buffer(ghost);
        if let Some(g) = gate {
            if !g.proceed_at(CancelGate::BOUNDARY_ALL_TO_ALL) {
                return Err(SoiRunError::new(
                    phases::ALL_TO_ALL,
                    CommError::Cancelled {
                        phase: phases::ALL_TO_ALL,
                    },
                    comm.stats().clone(),
                ));
            }
        }
        comm.stats_mut().span_open("pack");
        if self.validation.is_on() {
            for (slot, buf) in ws.outgoing.iter_mut().zip(self.pack_outgoing_tagged(&ws.u)) {
                *slot = buf;
            }
        } else {
            self.pack_pooled(comm, &ws.u, &mut ws.outgoing);
        }
        comm.stats_mut().span_close("pack");
        let incoming = comm
            .all_to_all_resilient(&ws.outgoing, policy)
            .map_err(|e| SoiRunError::new("all-to-all", e, comm.stats().clone()))?;
        // The resilient exchange borrows the outgoing buffers (it may
        // retransmit them across rounds); recycle them once it returns.
        for slot in ws.outgoing.iter_mut() {
            comm.recycle_buffer(std::mem::take(slot));
        }
        let incoming = self.receive_checked(comm, incoming)?;
        self.recover_segments_into(
            comm,
            &incoming,
            &mut ws.z,
            &mut ws.aux,
            &mut ws.seg_scratch,
            y,
        );
        for buf in incoming {
            comm.recycle_buffer(buf);
        }
        Ok(())
    }

    /// Checkpointing forward transform for supervised runs: the same
    /// fault-tolerant pipeline as [`SoiFft::try_forward`], but each phase
    /// boundary snapshots its state into the supervisor's
    /// [`CheckpointStore`], and on a respawned epoch the rank *resumes* at
    /// the deepest globally committed phase instead of recomputing from
    /// scratch — restoring its snapshot and skipping the communication the
    /// collective already agreed on. Intended to run under
    /// [`Supervisor::run`] (see [`SoiFft::forward_recovered`]); `ctx` is the
    /// per-epoch recovery context the supervisor passes to each rank.
    ///
    /// The *frozen committed-phase list* decides which collectives re-run
    /// (every rank sees the same list, so every rank takes the same
    /// communication path): a committed `"all-to-all"` skips straight to
    /// the local recovery FFTs; an uncommitted `"ghost"` re-runs the ghost
    /// exchange for everyone, snapshots or not (peers need this rank's
    /// prefix). *Local* state then resumes from this rank's own deepest
    /// snapshot — `"segment-fft"` as-is, `"convolution"` plus a redo of
    /// the block DFTs, else the full front end — committed or not, since a
    /// rank's own snapshot is valid either way and phase `k` is pruned
    /// only once `k+1` commits, which requires this rank's own `k+1` save.
    ///
    /// A restore of committed state that finds its snapshot missing or
    /// corrupt surfaces as
    /// `SoiRunError { phase: "checkpoint", error: CommError::CheckpointCorrupt, .. }`.
    pub fn try_forward_recoverable(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        ctx: &RecoveryCtx,
    ) -> Result<Vec<c64>, SoiRunError> {
        let mut ws = self.make_workspace();
        let mut y = vec![c64::ZERO; self.output_len(comm.rank())];
        self.try_forward_recoverable_into(comm, local_input, policy, ctx, &mut ws, &mut y)?;
        Ok(y)
    }

    /// [`SoiFft::try_forward_recoverable`] against a caller-planned
    /// [`SoiWorkspace`] and output slice, so a supervised run that
    /// re-enters the pipeline across epochs (or a caller looping
    /// checkpointed transforms) reuses one working set instead of
    /// replanning per call. Checkpoint snapshots and restores still
    /// allocate — they are the durability copies, not working state.
    pub fn try_forward_recoverable_into(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        ctx: &RecoveryCtx,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        let p = &self.params;
        assert_eq!(comm.size(), p.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), p.per_rank(), "wrong local input length");
        assert_eq!(y.len(), self.output_len(comm.rank()), "wrong output length");
        assert_eq!(
            ctx.store().parties(),
            p.procs,
            "checkpoint store sized for a different cluster"
        );

        match self.sim {
            Some(sim) => comm.stats_mut().set_cost_model(soifft_cluster::CostModel {
                bytes_per_s: sim.net_bytes_per_s,
                latency_s: sim.net_latency_s,
            }),
            None => comm.stats_mut().clear_cost_model(),
        }

        comm.stats_mut().span_open("superstep");
        let result = self.try_forward_recoverable_body(comm, local_input, policy, ctx, ws, y);
        comm.stats_mut().span_close("superstep");
        publish_plan_cache_gauges(comm);
        result
    }

    /// [`SoiFft::try_forward_recoverable_into`]'s pipeline body, split out
    /// so the `"superstep"` trace span closes on the error path too.
    fn try_forward_recoverable_body(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        ctx: &RecoveryCtx,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) -> Result<(), SoiRunError> {
        let p = &self.params;
        let rank = comm.rank();
        let store: &CheckpointStore = ctx.store();
        let epoch = ctx.epoch();
        if self.validation.is_on() {
            // Belt-and-braces for in-store rot: the store re-verifies every
            // snapshot against its checksum before a phase commits.
            store.enable_scrub_on_commit();
        }
        self.probe_machinery(comm)?;

        // Deepest committed phase first: a committed all-to-all means the
        // collective part of the superstep is over — recover locally.
        if ctx.committed(phases::ALL_TO_ALL) {
            let flat = match self.traced_restore(comm, store, rank, phases::ALL_TO_ALL) {
                Ok(flat) => flat,
                Err(_) => {
                    return Err(SoiRunError::new(
                        "checkpoint",
                        CommError::CheckpointCorrupt { rank },
                        comm.stats().clone(),
                    ))
                }
            };
            // Each source contributed the same count: mine · blocks.
            let chunk = flat.len() / p.procs;
            let incoming: Vec<Vec<c64>> = if chunk == 0 {
                vec![Vec::new(); p.procs]
            } else {
                flat.chunks_exact(chunk).map(<[c64]>::to_vec).collect()
            };
            self.recover_segments_into(
                comm,
                &incoming,
                &mut ws.z,
                &mut ws.aux,
                &mut ws.seg_scratch,
                y,
            );
            return Ok(());
        }

        // The ghost exchange is collective: it re-runs whenever the phase
        // is not globally committed — even ranks holding deeper snapshots
        // participate, because their peers need this rank's input prefix.
        let fresh_ghost = if ctx.committed(phases::GHOST) {
            None
        } else {
            let g = comm
                .try_exchange_ghost(local_input, p.ghost_len(), policy)
                .map_err(|e| SoiRunError::new("ghost", e, comm.stats().clone()))?;
            self.save_checked(comm, store, phases::GHOST, epoch, &g)?;
            Some(g)
        };

        // Local state resumes from this rank's OWN deepest snapshot
        // (committed or not — the data is valid either way). A rank only
        // restores phase k when it holds no k+1 snapshot, and k's
        // snapshots are pruned only once k+1 commits — which needs this
        // very rank's k+1 save — so a restore can never race a prune.
        if let Ok(u) = self.traced_restore(comm, store, rank, phases::SEGMENT_FFT) {
            ws.u = u;
        } else if let Ok(mut u) = self.traced_restore(comm, store, rank, phases::CONVOLUTION) {
            comm.crash_point(phases::SEGMENT_FFT);
            let t = comm.stats_mut().phase_start();
            batch::forward_rows_parallel_with(
                &self.plan_l,
                &self.pool,
                &mut u,
                &mut ws.seg_workers,
            );
            let seg_fft_flops =
                p.blocks_per_rank() as f64 * soifft_fft::fft_flops(p.total_segments());
            match self.sim_fft_seconds(seg_fft_flops) {
                Some(sim_s) => comm.stats_mut().phase_end_sim("segment-fft", t, sim_s),
                None => comm.stats_mut().phase_end("segment-fft", t),
            }
            self.save_checked(comm, store, phases::SEGMENT_FFT, epoch, &u)?;
            ws.u = u;
        } else {
            let ghost = match fresh_ghost {
                Some(g) => g,
                None => match self.traced_restore(comm, store, rank, phases::GHOST) {
                    Ok(g) => g,
                    Err(_) => {
                        return Err(SoiRunError::new(
                            "checkpoint",
                            CommError::CheckpointCorrupt { rank },
                            comm.stats().clone(),
                        ))
                    }
                },
            };
            self.front_end_core(comm, local_input, &ghost, Some((store, epoch)), ws)?;
            comm.recycle_buffer(ghost);
        }

        comm.stats_mut().span_open("pack");
        let outgoing = if self.validation.is_on() {
            self.pack_outgoing_tagged(&ws.u)
        } else {
            self.pack_outgoing(&ws.u)
        };
        comm.stats_mut().span_close("pack");
        let incoming = comm
            .all_to_all_resilient(&outgoing, policy)
            .map_err(|e| SoiRunError::new("all-to-all", e, comm.stats().clone()))?;
        // Verify (and strip the tags) BEFORE the snapshot, so a committed
        // all-to-all checkpoint always holds clean, payload-only data.
        let incoming = self.receive_checked(comm, incoming)?;
        let flat: Vec<c64> = incoming.iter().flatten().copied().collect();
        self.save_checked(comm, store, phases::ALL_TO_ALL, epoch, &flat)?;
        self.recover_segments_into(
            comm,
            &incoming,
            &mut ws.z,
            &mut ws.aux,
            &mut ws.seg_scratch,
            y,
        );
        Ok(())
    }

    /// Supervised forward transform: runs the whole cluster under a
    /// [`Supervisor`], so a crashed SOI run *completes* instead of merely
    /// failing cleanly. The driver owns every rank's input slice (as a real
    /// launcher would own the on-disk input), which is what makes the two
    /// recovery layers possible:
    ///
    /// 1. **Respawn** — while the `restart` budget lasts, a death re-runs
    ///    the collective as a new epoch; each rank resumes from the last
    ///    globally committed checkpoint via
    ///    [`SoiFft::try_forward_recoverable`], and stale messages from dead
    ///    incarnations are discarded by generation tag.
    /// 2. **Degraded mode** — if ranks still died with the budget
    ///    exhausted, the survivors re-derive every missing rank's exchange
    ///    frontier (from its deepest surviving snapshot, or from the
    ///    inputs) and recompute the missing output segments themselves,
    ///    split round-robin.
    ///
    /// On success, `recovery` (mirrored into every ledger) reports what it
    /// took: [`RecoveryOutcome::None`] for a clean first epoch, otherwise
    /// `Recovered { restarts, recomputed_segments }`. Returns the first
    /// rank's [`SoiRunError`] only when the run failed for a reason
    /// recovery cannot paper over (e.g. a fault storm exhausting the
    /// retry budget with no rank actually dead, or a corrupt checkpoint
    /// discovered on resume).
    ///
    /// Always uses the monolithic exchange form, like
    /// [`SoiFft::try_forward`].
    pub fn forward_recovered(
        &self,
        config: ClusterConfig,
        restart: RestartPolicy,
        policy: &ExchangePolicy,
        inputs: &[Vec<c64>],
    ) -> Result<RecoveredRun, SoiRunError> {
        let p = &self.params;
        assert_eq!(inputs.len(), p.procs, "one input slice per rank");
        for (rank, input) in inputs.iter().enumerate() {
            assert_eq!(
                input.len(),
                p.per_rank(),
                "wrong input length for rank {rank}"
            );
        }

        let supervisor = Supervisor::new(config, restart);
        let run = supervisor.run(p.procs, |comm, ctx| {
            let out = self.try_forward_recoverable(comm, &inputs[comm.rank()], policy, ctx);
            (out, comm.stats().clone())
        });
        let restarts = run.restarts;
        let store = run.store;

        let mut outputs: Vec<Option<Vec<c64>>> = vec![None; p.procs];
        let mut stats: Vec<CommStats> = vec![CommStats::default(); p.procs];
        let mut alive = vec![true; p.procs];
        let mut any_dead = false;
        let mut first_err: Option<SoiRunError> = None;
        for (rank, outcome) in run.outcomes.into_iter().enumerate() {
            match outcome {
                RankOutcome::Ok((Ok(y), ledger)) => {
                    outputs[rank] = Some(y);
                    stats[rank] = ledger;
                }
                RankOutcome::Ok((Err(e), ledger)) => {
                    stats[rank] = ledger;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                // The thread survived (returned via the typed-abort path)
                // but produced no output.
                RankOutcome::Err(_) => {}
                RankOutcome::Crashed | RankOutcome::Panicked(_) => {
                    alive[rank] = false;
                    any_dead = true;
                }
                // `RankOutcome` is non-exhaustive: treat any future
                // outcome kind as a dead rank so degraded mode can still
                // complete the run rather than silently dropping a slice.
                _ => {
                    alive[rank] = false;
                    any_dead = true;
                }
            }
        }

        // Clean completion: every rank produced its slice.
        if outputs.iter().all(Option::is_some) {
            let recovery = if restarts > 0 {
                RecoveryOutcome::Recovered {
                    restarts,
                    recomputed_segments: 0,
                }
            } else {
                RecoveryOutcome::None
            };
            for ledger in &mut stats {
                ledger.set_recovery(recovery);
            }
            return Ok(RecoveredRun {
                outputs: outputs.into_iter().map(|y| y.unwrap_or_default()).collect(),
                stats,
                recovery,
            });
        }

        // Ranks failed but nothing died: a failure respawn and degraded
        // recomputation cannot paper over (a fault storm past the retry
        // budget, a corrupt checkpoint on resume). Surface it typed.
        if !any_dead {
            return Err(first_err.unwrap_or_else(|| {
                SoiRunError::new("recovery", CommError::Shutdown, CommStats::default())
            }));
        }
        let survivors: Vec<usize> = (0..p.procs).filter(|&q| alive[q]).collect();
        if survivors.is_empty() {
            return Err(first_err.unwrap_or_else(|| {
                SoiRunError::new(
                    "recovery",
                    CommError::PeerFailed { rank: 0 },
                    CommStats::default(),
                )
            }));
        }

        // Degraded mode: the restart budget is exhausted and ranks are
        // dead. Re-derive every rank's exchange frontier (from snapshots
        // where they survive, from the driver-held inputs where they
        // don't), then let the surviving ranks recompute the missing
        // output segments round-robin.
        let l = p.total_segments();
        let m = p.m();
        let us: Vec<Vec<c64>> = (0..p.procs)
            .map(|q| self.exchange_frontier(&store, q, inputs))
            .collect();
        let missing: Vec<usize> = (0..p.procs).filter(|&q| outputs[q].is_none()).collect();
        let jobs: Vec<(usize, usize)> = missing
            .iter()
            .flat_map(|&owner| (0..self.seg_counts[owner]).map(move |sl| (owner, sl)))
            .collect();
        let recomputed_segments = jobs.len();
        let workers = survivors.len();
        let results = Cluster::run(workers, |comm| {
            let worker = comm.rank();
            let mut done: Vec<(usize, usize, Vec<c64>)> = Vec::new();
            let t = comm.stats_mut().phase_start();
            for (j, &(owner, sl)) in jobs.iter().enumerate() {
                if j % workers != worker {
                    continue;
                }
                let s = self.seg_base[owner] + sl;
                let mut z = Vec::with_capacity(p.m_prime());
                for u_q in &us {
                    z.extend(u_q.chunks_exact(l).map(|block| block[s]));
                }
                let mut bins = vec![c64::ZERO; m];
                self.recover_into(z, &mut bins, 0);
                done.push((owner, sl, bins));
            }
            comm.stats_mut().phase_end("degraded-recover", t);
            (done, comm.stats().clone())
        });
        for (worker, (done, ledger)) in results.into_iter().enumerate() {
            stats[survivors[worker]].absorb(&ledger);
            for (owner, sl, bins) in done {
                let out = outputs[owner]
                    .get_or_insert_with(|| vec![c64::ZERO; self.seg_counts[owner] * m]);
                out[sl * m..(sl + 1) * m].copy_from_slice(&bins);
            }
        }

        let recovery = RecoveryOutcome::Recovered {
            restarts,
            recomputed_segments,
        };
        for ledger in &mut stats {
            ledger.set_recovery(recovery);
        }
        Ok(RecoveredRun {
            outputs: outputs.into_iter().map(|y| y.unwrap_or_default()).collect(),
            stats,
            recovery,
        })
    }

    /// Rank `q`'s exchange frontier (post-block-DFT `u`) for degraded-mode
    /// recovery, from the deepest usable source: its `"segment-fft"`
    /// snapshot as-is; its `"convolution"` snapshot plus the block DFTs;
    /// otherwise recomputed from the driver-held inputs (the ghost is just
    /// the successor rank's input prefix, so a missing or corrupt ghost
    /// snapshot only means more recomputation, never failure).
    fn exchange_frontier(
        &self,
        store: &CheckpointStore,
        q: usize,
        inputs: &[Vec<c64>],
    ) -> Vec<c64> {
        let p = &self.params;
        if let Ok(u) = store.restore(q, phases::SEGMENT_FFT) {
            return u;
        }
        if let Ok(mut u) = store.restore(q, phases::CONVOLUTION) {
            batch::forward_rows_parallel(&self.plan_l, &self.pool, &mut u);
            return u;
        }
        let ghost = store
            .restore(q, phases::GHOST)
            .unwrap_or_else(|_| inputs[(q + 1) % p.procs][..p.ghost_len()].to_vec());
        let mut input_ext = Vec::with_capacity(inputs[q].len() + ghost.len());
        input_ext.extend_from_slice(&inputs[q]);
        input_ext.extend_from_slice(&ghost);
        self.compute_u(&input_ext)
    }

    /// Phases 2–3 shared by the fallible and infallible pipelines: extends
    /// the local input with its ghost into `ws.input_ext`, convolves
    /// (`u = W x`), and runs the block DFTs (`I ⊗ F_L`) — fused into one
    /// pass when configured (§5.3's loop fusion) — leaving the exchange
    /// frontier in `ws.u`. Every buffer comes from the workspace, so a
    /// warm call never allocates. Errs only with
    /// [`CommError::SilentCorruption`], and only when validation is on.
    ///
    /// With optional checkpointing: when a store and
    /// epoch are supplied, `u` is snapshotted after the convolution
    /// (non-fused pipelines) and after the block DFTs. Crash points named
    /// after the phases fire at each phase entry, so
    /// [`CrashSite::Phase`](soifft_cluster::CrashSite::Phase) plans can
    /// kill a rank mid-front-end in both the plain and recoverable
    /// pipelines. The fused form has no standalone convolution boundary,
    /// so it exposes only the `"convolution"` crash point and the
    /// `"segment-fft"` snapshot.
    ///
    /// When validation is on, each phase's output buffer is guarded the
    /// moment it is produced (convolution by an FNV-1a checksum, the block
    /// DFTs by the Parseval energy balance `E_out = L·E_in`), any planned
    /// [`BitFlipSite::ConvBuffer`]/[`BitFlipSite::LocalFftBuffer`] flip is
    /// injected *after* the guard, and the invariant is re-verified before
    /// the next phase consumes the buffer — the ABFT detection model for
    /// memory corruption that never crosses a wire. `Recover` re-executes
    /// only the flagged phase, up to [`verify::RETRY_BUDGET`] times.
    fn front_end_core(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        ghost: &[c64],
        checkpoint: Option<(&CheckpointStore, u64)>,
        ws: &mut SoiWorkspace,
    ) -> Result<(), SoiRunError> {
        let p = &self.params;
        let l = p.total_segments();
        let blocks = p.blocks_per_rank();
        let validate = self.validation.is_on();
        ws.input_ext.clear();
        ws.input_ext.extend_from_slice(local_input);
        ws.input_ext.extend_from_slice(ghost);
        if ws.u.len() != blocks * l {
            ws.u.resize(blocks * l, c64::ZERO);
        }
        let conv_flops = p.conv_flops() / p.procs as f64;
        let seg_fft_flops = blocks as f64 * soifft_fft::fft_flops(l);
        if self.fuse_segment_fft {
            comm.crash_point(phases::CONVOLUTION);
            let t = comm.stats_mut().phase_start();
            convolve_fused_fft_with_scratch(
                p,
                &self.window,
                &ws.input_ext,
                &mut ws.u,
                &self.plan_l,
                &self.pool,
                &mut ws.conv,
            );
            match self.sim {
                Some(s) => {
                    let sim_s = conv_flops / s.conv_flops_per_s + seg_fft_flops / s.fft_flops_per_s;
                    comm.stats_mut().phase_end_sim("convolution", t, sim_s);
                }
                None => comm.stats_mut().phase_end("convolution", t),
            }
            // Fusion never materializes the pre-FFT rows, so the Parseval
            // balance is unavailable; the whole fused front end is guarded
            // by a checksum instead (plus the run-level linearity probe).
            let guard = validate.then(|| checksum(&ws.u));
            comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, &mut ws.u);
            if let Some(guard) = guard {
                comm.stats_mut().span_open("sdc-verify");
                let mut attempts = 0u32;
                while checksum(&ws.u) != guard {
                    comm.stats_mut().note_sdc_detected();
                    if !self.validation.recovers() || attempts >= verify::RETRY_BUDGET {
                        comm.stats_mut().span_close("sdc-verify");
                        return Err(self.sdc_error(comm, phases::SEGMENT_FFT, None));
                    }
                    attempts += 1;
                    comm.stats_mut().span_open("sdc-repair");
                    convolve_fused_fft_with_scratch(
                        p,
                        &self.window,
                        &ws.input_ext,
                        &mut ws.u,
                        &self.plan_l,
                        &self.pool,
                        &mut ws.conv,
                    );
                    // A stuck-at fault corrupts the re-execution too.
                    comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, &mut ws.u);
                    comm.stats_mut().span_close("sdc-repair");
                }
                if attempts > 0 {
                    comm.stats_mut().note_sdc_repaired();
                }
                comm.stats_mut().span_close("sdc-verify");
            }
            if let Some((store, epoch)) = checkpoint {
                self.save_checked(comm, store, phases::SEGMENT_FFT, epoch, &ws.u)?;
            }
        } else {
            comm.crash_point(phases::CONVOLUTION);
            let t = comm.stats_mut().phase_start();
            convolve_with_scratch(
                p,
                &self.window,
                self.strategy,
                &ws.input_ext,
                &mut ws.u,
                &self.pool,
                &mut ws.conv,
            );
            match self.sim {
                Some(s) => {
                    let sim_s = conv_flops / s.conv_flops_per_s;
                    comm.stats_mut().phase_end_sim("convolution", t, sim_s);
                }
                None => comm.stats_mut().phase_end("convolution", t),
            }
            // Guard the convolution output the moment it exists; a planned
            // flip then models corruption while `u` waits in memory for
            // the block DFTs.
            let conv_guard = validate.then(|| checksum(&ws.u));
            comm.inject_bit_flip(BitFlipSite::ConvBuffer, &mut ws.u);
            if let Some(guard) = conv_guard {
                comm.stats_mut().span_open("sdc-verify");
                let mut attempts = 0u32;
                while checksum(&ws.u) != guard {
                    comm.stats_mut().note_sdc_detected();
                    if !self.validation.recovers() || attempts >= verify::RETRY_BUDGET {
                        comm.stats_mut().span_close("sdc-verify");
                        return Err(self.sdc_error(comm, phases::CONVOLUTION, None));
                    }
                    attempts += 1;
                    comm.stats_mut().span_open("sdc-repair");
                    convolve_with_scratch(
                        p,
                        &self.window,
                        self.strategy,
                        &ws.input_ext,
                        &mut ws.u,
                        &self.pool,
                        &mut ws.conv,
                    );
                    // A stuck-at fault corrupts the re-execution too.
                    comm.inject_bit_flip(BitFlipSite::ConvBuffer, &mut ws.u);
                    comm.stats_mut().span_close("sdc-repair");
                }
                if attempts > 0 {
                    comm.stats_mut().note_sdc_repaired();
                }
                comm.stats_mut().span_close("sdc-verify");
            }
            if let Some((store, epoch)) = checkpoint {
                self.save_checked(comm, store, phases::CONVOLUTION, epoch, &ws.u)?;
            }

            comm.crash_point(phases::SEGMENT_FFT);
            // Parseval guard: an unnormalized L-point row DFT scales total
            // energy by exactly L, so `E_out ≈ L·E_in` checks the whole
            // batch in one O(n) pass. The transform is in place; a repair
            // rebuilds the pre-FFT rows by re-running the deterministic
            // convolution, keeping a frontier-sized clone off the
            // fault-free hot path.
            let e_in = validate.then(|| verify::energy(&ws.u));
            let t = comm.stats_mut().phase_start();
            batch::forward_rows_parallel_with(
                &self.plan_l,
                &self.pool,
                &mut ws.u,
                &mut ws.seg_workers,
            );
            match self.sim_fft_seconds(seg_fft_flops) {
                Some(sim_s) => comm.stats_mut().phase_end_sim("segment-fft", t, sim_s),
                None => comm.stats_mut().phase_end("segment-fft", t),
            }
            comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, &mut ws.u);
            if let Some(e_in) = e_in {
                let tol = verify::energy_tolerance(l);
                comm.stats_mut().span_open("sdc-verify");
                let mut attempts = 0u32;
                while !verify::parseval_ok(e_in, verify::energy(&ws.u), l, tol) {
                    // Re-evaluate before acting: a disturbed invariant
                    // *evaluation* over clean data is a detector false
                    // positive, not data corruption.
                    if verify::parseval_ok(e_in, verify::energy(&ws.u), l, tol) {
                        comm.stats_mut().note_sdc_false_positive();
                        break;
                    }
                    comm.stats_mut().note_sdc_detected();
                    if !self.validation.recovers() || attempts >= verify::RETRY_BUDGET {
                        comm.stats_mut().span_close("sdc-verify");
                        return Err(self.sdc_error(comm, phases::SEGMENT_FFT, None));
                    }
                    attempts += 1;
                    comm.stats_mut().span_open("sdc-repair");
                    convolve_with_scratch(
                        p,
                        &self.window,
                        self.strategy,
                        &ws.input_ext,
                        &mut ws.u,
                        &self.pool,
                        &mut ws.conv,
                    );
                    batch::forward_rows_parallel_with(
                        &self.plan_l,
                        &self.pool,
                        &mut ws.u,
                        &mut ws.seg_workers,
                    );
                    // A stuck-at fault corrupts the re-execution too.
                    comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, &mut ws.u);
                    comm.stats_mut().span_close("sdc-repair");
                }
                if attempts > 0 {
                    comm.stats_mut().note_sdc_repaired();
                }
                comm.stats_mut().span_close("sdc-verify");
            }
            if let Some((store, epoch)) = checkpoint {
                self.save_checked(comm, store, phases::SEGMENT_FFT, epoch, &ws.u)?;
            }
        }
        Ok(())
    }

    /// The math of phases 2–3 with no communicator, ledger, or crash
    /// points: `input_ext` (local input + ghost) in, post-block-DFT `u`
    /// out. Used by degraded-mode recovery to re-derive a dead rank's
    /// exchange frontier from the driver-held inputs.
    fn compute_u(&self, input_ext: &[c64]) -> Vec<c64> {
        let p = &self.params;
        let l = p.total_segments();
        let blocks = p.blocks_per_rank();
        let mut u = vec![c64::ZERO; blocks * l];
        if self.fuse_segment_fft {
            crate::conv::convolve_fused_fft(
                p,
                &self.window,
                input_ext,
                &mut u,
                &self.plan_l,
                &self.pool,
            );
        } else {
            convolve(
                p,
                &self.window,
                self.strategy,
                input_ext,
                &mut u,
                &self.pool,
            );
            batch::forward_rows_parallel(&self.plan_l, &self.pool, &mut u);
        }
        u
    }

    /// Computes only the requested *segments of interest*, distributed —
    /// the capability the algorithm is named for. The convolution and
    /// block DFTs run in full (they feed every segment), but the all-to-all
    /// ships only the wanted segments' data (volume `µN·|wanted|/L` instead
    /// of `µN`) and only their recovery FFTs run.
    ///
    /// Every rank passes the same `wanted` list (a collective argument).
    /// Returns this rank's owned ∩ wanted segments as
    /// `(global_segment_id, bins)` pairs.
    pub fn forward_segments(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        wanted: &[usize],
    ) -> Vec<(usize, Vec<c64>)> {
        let p = &self.params;
        assert_eq!(comm.size(), p.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), p.per_rank(), "wrong local input length");
        let l = p.total_segments();
        let m = p.m();
        let blocks = p.blocks_per_rank();
        let mut is_wanted = vec![false; l];
        for &s in wanted {
            assert!(s < l, "segment {s} out of range (L = {l})");
            is_wanted[s] = true;
        }

        // Ghost + convolution + block DFTs, exactly as in `forward`.
        let ghost = comm.exchange_ghost(local_input, p.ghost_len());
        let mut input_ext = Vec::with_capacity(local_input.len() + ghost.len());
        input_ext.extend_from_slice(local_input);
        input_ext.extend_from_slice(&ghost);
        let mut u = vec![c64::ZERO; blocks * l];
        let t = comm.stats_mut().phase_start();
        convolve(
            p,
            &self.window,
            self.strategy,
            &input_ext,
            &mut u,
            &self.pool,
        );
        comm.stats_mut().phase_end("convolution", t);
        let t = comm.stats_mut().phase_start();
        batch::forward_rows_parallel(&self.plan_l, &self.pool, &mut u);
        comm.stats_mut().phase_end("segment-fft", t);

        // Reduced exchange: per destination, only its wanted segments (in
        // destination-local order, which both sides can derive).
        let outgoing: Vec<Vec<c64>> = (0..p.procs)
            .map(|q| {
                let mut buf = Vec::new();
                for sl in 0..self.seg_counts[q] {
                    if is_wanted[self.seg_base[q] + sl] {
                        buf.extend(self.pack_for(&u, q, sl));
                    }
                }
                buf
            })
            .collect();
        let incoming = comm.all_to_all(outgoing);

        // Recover owned ∩ wanted, reading parts back in the same order.
        let me = comm.rank();
        let t = comm.stats_mut().phase_start();
        let mut out = Vec::new();
        let mut part_idx = 0usize;
        for sl in 0..self.seg_counts[me] {
            let s = self.seg_base[me] + sl;
            if !is_wanted[s] {
                continue;
            }
            let mut z = Vec::with_capacity(p.m_prime());
            for part in &incoming {
                z.extend_from_slice(&part[part_idx * blocks..(part_idx + 1) * blocks]);
            }
            part_idx += 1;
            let mut bins = vec![c64::ZERO; m];
            self.recover_into(z, &mut bins, 0);
            out.push((s, bins));
        }
        comm.stats_mut().phase_end("local-fft", t);
        out
    }

    /// Distributed installation self-check: runs the pipeline on a
    /// deterministic pseudo-random input, compares the gathered result
    /// against a single-process reference FFT, and returns the relative ℓ₂
    /// error (identical on every rank). Intended for small/medium `N` —
    /// every rank computes the full reference transform locally.
    pub fn self_check(&self, comm: &mut Comm) -> f64 {
        let p = &self.params;
        // Deterministic input every rank can regenerate.
        let mut state = 0x0DDB_1A5E_5BAD_5EEDu64 ^ (p.n as u64);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        };
        let x: Vec<c64> = (0..p.n).map(|_| c64::new(next(), next())).collect();
        let me = comm.rank();
        let mine = x[me * p.per_rank()..(me + 1) * p.per_rank()].to_vec();
        let y_local = self.forward(comm, &mine);

        // Gather the distributed spectrum (uniform layouts only give a
        // natural-order concatenation; self_check requires that).
        assert!(
            self.uniform_layout(),
            "self_check requires the uniform segment layout"
        );
        let parts = comm.allgather(y_local);
        // parts[src] is what *we* sent... allgather returns by source:
        // each rank contributed its own slice, so concatenate by rank.
        let got: Vec<c64> = parts.into_iter().flatten().collect();

        let mut want = x;
        Plan::new(p.n).forward(&mut want);
        soifft_num::error::rel_l2(&got, &want)
    }

    /// Offload-mode forward transform (paper §7): the local input lives in
    /// "host memory" and is staged to the coprocessor over `link` before
    /// the transform; the result is staged back. Functionally identical to
    /// [`SoiFft::forward`], with the two extra PCIe phases recorded in the
    /// ledger — the structure behind `T_off ≈ 2·T_pci + µ·T_mpi`.
    pub fn forward_offload(
        &self,
        comm: &mut Comm,
        link: &soifft_cluster::PcieLink,
        host_input: &[c64],
    ) -> Vec<c64> {
        let device_input = link.to_device(comm.stats_mut(), host_input);
        let device_output = self.forward(comm, &device_input);
        link.to_host(comm.stats_mut(), &device_output)
    }

    /// Computes this rank's slice of `x = F_N⁻¹ y` (normalized), by
    /// conjugation around the forward pipeline — the same communication
    /// structure (one all-to-all) in the synthesis direction.
    pub fn inverse(&self, comm: &mut Comm, local_input: &[c64]) -> Vec<c64> {
        assert!(
            self.seg_counts
                .iter()
                .all(|&c| c == self.params.segments_per_proc),
            "inverse requires the uniform segment layout (forward's input and \
             output distributions must coincide)"
        );
        let conjugated: Vec<c64> = local_input.iter().map(|z| z.conj()).collect();
        let mut x = self.forward(comm, &conjugated);
        let s = 1.0 / self.params.n as f64;
        for z in x.iter_mut() {
            *z = z.conj() * s;
        }
        x
    }

    /// Packs the values destined for rank `dst`, local segment index `sl`:
    /// `v_m[s]` for every local block, `s = seg_base[dst] + sl`.
    fn pack_for(&self, u: &[c64], dst: usize, sl: usize) -> Vec<c64> {
        let l = self.params.total_segments();
        let s = self.seg_base[dst] + sl;
        u.chunks_exact(l).map(|block| block[s]).collect()
    }

    /// Half-width wire elements of one `(dst, sl)` part appended to `buf`:
    /// the same values [`SoiFft::pack_for`] would ship, demoted to `c32`
    /// and bit-packed two per `c64` (odd block counts pad the final pair
    /// with zero, which the receiver drops).
    fn pack_part_lowprec(&self, u: &[c64], s: usize, buf: &mut Vec<c64>) {
        let l = self.params.total_segments();
        let mut values = u.chunks_exact(l).map(|block| c32::from_c64(block[s]));
        while let Some(a) = values.next() {
            let b = values.next().unwrap_or(c32::ZERO);
            buf.push(pack_c32_pair(a, b));
        }
    }

    /// [`SoiFft::pack_for`] in the half-width wire format.
    fn pack_for_lowprec(&self, u: &[c64], dst: usize, sl: usize) -> Vec<c64> {
        let mut buf = Vec::with_capacity(self.params.blocks_per_rank().div_ceil(2));
        self.pack_part_lowprec(u, self.seg_base[dst] + sl, &mut buf);
        buf
    }

    /// One `(dst, sl)` part in the planned precision's wire format.
    fn pack_for_wire(&self, u: &[c64], dst: usize, sl: usize) -> Vec<c64> {
        if self.precision.half_width_exchange() {
            self.pack_for_lowprec(u, dst, sl)
        } else {
            self.pack_for(u, dst, sl)
        }
    }

    /// [`SoiFft::pack_pooled`] in the half-width wire format: every
    /// destination's payload is `seg_counts[q]·⌈blocks/2⌉` wire elements —
    /// half the monolithic volume — still served from the communicator's
    /// buffer pool so the warm steady state stays allocation-free.
    fn pack_lowprec_pooled(&self, comm: &mut Comm, u: &[c64], outgoing: &mut [Vec<c64>]) {
        let hb = self.params.blocks_per_rank().div_ceil(2);
        for (q, slot) in outgoing.iter_mut().enumerate() {
            let mut buf = comm.acquire_buffer(self.seg_counts[q] * hb);
            for sl in 0..self.seg_counts[q] {
                self.pack_part_lowprec(u, self.seg_base[q] + sl, &mut buf);
            }
            *slot = buf;
        }
    }

    /// [`SoiFft::pack_outgoing`] into caller-owned slots filled from the
    /// communicator's buffer pool — the allocation-free pack of the
    /// workspace pipelines (a warm pool serves every slot from last
    /// call's recycled receive payloads).
    fn pack_pooled(&self, comm: &mut Comm, u: &[c64], outgoing: &mut [Vec<c64>]) {
        let p = &self.params;
        let l = p.total_segments();
        let blocks = p.blocks_per_rank();
        for (q, slot) in outgoing.iter_mut().enumerate() {
            let mut buf = comm.acquire_buffer(self.seg_counts[q] * blocks);
            for sl in 0..self.seg_counts[q] {
                let s = self.seg_base[q] + sl;
                buf.extend(u.chunks_exact(l).map(|block| block[s]));
            }
            *slot = buf;
        }
    }

    /// Outgoing buffer for each rank `q`: `[sl][m_local]` for its
    /// segments (the monolithic exchange layout).
    fn pack_outgoing(&self, u: &[c64]) -> Vec<Vec<c64>> {
        let p = &self.params;
        let blocks = p.blocks_per_rank();
        (0..p.procs)
            .map(|q| {
                let mut buf = Vec::with_capacity(self.seg_counts[q] * blocks);
                for sl in 0..self.seg_counts[q] {
                    buf.extend(self.pack_for(u, q, sl));
                }
                buf
            })
            .collect()
    }

    /// [`SoiFft::pack_outgoing`] with sender-side integrity tags: after
    /// each destination's payload, one extra element per segment carrying
    /// the FNV-1a checksum of that segment's part
    /// ([`verify::encode_checksum`]). Receivers strip and re-verify the
    /// tags after reassembly ([`SoiFft::receive_checked`]), closing the
    /// window between the link layer's wire checks and the recovery FFTs
    /// actually consuming the gathered data.
    fn pack_outgoing_tagged(&self, u: &[c64]) -> Vec<Vec<c64>> {
        let p = &self.params;
        let blocks = p.blocks_per_rank();
        (0..p.procs)
            .map(|q| {
                let mut buf = Vec::with_capacity(self.seg_counts[q] * (blocks + 1));
                for sl in 0..self.seg_counts[q] {
                    buf.extend(self.pack_for(u, q, sl));
                }
                let tags: Vec<c64> = (0..self.seg_counts[q])
                    .map(|sl| {
                        verify::encode_checksum(checksum(&buf[sl * blocks..(sl + 1) * blocks]))
                    })
                    .collect();
                buf.extend(tags);
                buf
            })
            .collect()
    }

    /// Post-exchange SDC stage. Applies any planned
    /// [`BitFlipSite::GatheredSegment`] flip to the received data
    /// (modeling corruption in the window between the link layer's
    /// receive verification and the recovery FFTs consuming the buffer);
    /// then, when validation is on, strips the sender-side checksum tags
    /// appended by [`SoiFft::pack_outgoing_tagged`] and re-verifies every
    /// `(source, segment)` part. Under `Recover`, a flagged part's
    /// reassembly is re-executed from the pristine received buffer — the
    /// corruption is receiver-side, so the bytes the wire delivered are
    /// the rollback source; escalation carries the *global* id of the
    /// owned segment the flagged part feeds.
    fn receive_checked(
        &self,
        comm: &mut Comm,
        incoming: Vec<Vec<c64>>,
    ) -> Result<Vec<Vec<c64>>, SoiRunError> {
        let p = &self.params;
        let blocks = p.blocks_per_rank();
        let me = comm.rank();
        let mine = self.seg_counts[me];

        let (mut data, tags): (Vec<Vec<c64>>, Vec<Vec<u64>>) = if self.validation.is_on() {
            incoming
                .into_iter()
                .map(|mut buf| {
                    let tags = buf.split_off(mine * blocks);
                    let tags = tags.iter().map(|&t| verify::decode_checksum(t)).collect();
                    (buf, tags)
                })
                .unzip()
        } else {
            (incoming, Vec::new())
        };

        let chunk = mine * blocks;
        let pristine = (self.validation.recovers()
            && comm.flip_planned(BitFlipSite::GatheredSegment))
        .then(|| data.clone());
        if chunk > 0 && comm.flip_planned(BitFlipSite::GatheredSegment) {
            let mut flat: Vec<c64> = data.iter().flatten().copied().collect();
            comm.inject_bit_flip(BitFlipSite::GatheredSegment, &mut flat);
            for (dst, src_chunk) in data.iter_mut().zip(flat.chunks_exact(chunk)) {
                dst.copy_from_slice(src_chunk);
            }
        }
        if !self.validation.is_on() {
            return Ok(data);
        }

        comm.stats_mut().span_open("sdc-verify");
        let mut attempts = 0u32;
        loop {
            let bad = (0..p.procs)
                .flat_map(|src| (0..mine).map(move |sl| (src, sl)))
                .find(|&(src, sl)| {
                    checksum(&data[src][sl * blocks..(sl + 1) * blocks]) != tags[src][sl]
                });
            let Some((src, sl)) = bad else { break };
            comm.stats_mut().note_sdc_detected();
            let repairable = self.validation.recovers() && pristine.is_some();
            if !repairable || attempts >= verify::RETRY_BUDGET {
                comm.stats_mut().span_close("sdc-verify");
                return Err(self.sdc_error(comm, "all-to-all", Some(self.seg_base[me] + sl)));
            }
            attempts += 1;
            comm.stats_mut().span_open("sdc-repair");
            let pr = pristine.as_ref().expect("repairable implies pristine");
            data[src][sl * blocks..(sl + 1) * blocks]
                .copy_from_slice(&pr[src][sl * blocks..(sl + 1) * blocks]);
            // A stuck-at fault corrupts the re-executed reassembly too.
            comm.inject_bit_flip(
                BitFlipSite::GatheredSegment,
                &mut data[src][sl * blocks..(sl + 1) * blocks],
            );
            comm.stats_mut().span_close("sdc-repair");
        }
        if attempts > 0 {
            comm.stats_mut().note_sdc_repaired();
        }
        comm.stats_mut().span_close("sdc-verify");
        Ok(data)
    }

    /// Checkpoint save with write-time verification: stores `data`, then
    /// — when validation is on — reads the committed checksum back and
    /// compares it against the *live* buffer. This catches a flip that
    /// landed on the snapshot image before the store hashed it: such an
    /// image is self-consistent, so the store's restore-time check (and
    /// its commit-time scrub) can never see it. Under `Recover` a flagged
    /// save is simply redone from the live buffer.
    fn save_checked(
        &self,
        comm: &mut Comm,
        store: &CheckpointStore,
        phase: &'static str,
        epoch: u64,
        data: &[c64],
    ) -> Result<(), SoiRunError> {
        comm.stats_mut().span_open("checkpoint-save");
        let result = self.save_checked_body(comm, store, phase, epoch, data);
        comm.stats_mut().span_close("checkpoint-save");
        result
    }

    /// [`SoiFft::save_checked`]'s body, split out so the
    /// `"checkpoint-save"` trace span closes on the error path too.
    fn save_checked_body(
        &self,
        comm: &mut Comm,
        store: &CheckpointStore,
        phase: &'static str,
        epoch: u64,
        data: &[c64],
    ) -> Result<(), SoiRunError> {
        let rank = comm.rank();
        if !comm.flip_planned(BitFlipSite::CheckpointImage) && !self.validation.is_on() {
            store.save(rank, phase, epoch, data);
            return Ok(());
        }
        let mut attempts = 0u32;
        loop {
            if comm.flip_planned(BitFlipSite::CheckpointImage) {
                // Flip a private copy so the planned fault corrupts the
                // stored bytes, not the live pipeline buffer.
                let mut image = data.to_vec();
                comm.inject_bit_flip(BitFlipSite::CheckpointImage, &mut image);
                store.save(rank, phase, epoch, &image);
            } else {
                store.save(rank, phase, epoch, data);
            }
            if !self.validation.is_on() {
                return Ok(());
            }
            if store.stored_checksum(rank, phase) == Some(checksum(data)) {
                if attempts > 0 {
                    comm.stats_mut().note_sdc_repaired();
                }
                return Ok(());
            }
            comm.stats_mut().note_sdc_detected();
            if !self.validation.recovers() || attempts >= verify::RETRY_BUDGET {
                return Err(self.sdc_error(comm, "checkpoint", None));
            }
            attempts += 1;
        }
    }

    /// A [`CheckpointStore::restore`] wrapped in a `"checkpoint-restore"`
    /// trace span, so resume-path restores show up in the profile.
    fn traced_restore(
        &self,
        comm: &mut Comm,
        store: &CheckpointStore,
        rank: usize,
        phase: &'static str,
    ) -> Result<Vec<c64>, soifft_cluster::CheckpointError> {
        comm.stats_mut().span_open("checkpoint-restore");
        let result = store.restore(rank, phase);
        comm.stats_mut().span_close("checkpoint-restore");
        result
    }

    /// Once-per-run FFT machinery check: verifies `F(x+αr) = F(x)+αF(r)`
    /// on seeded vectors through the row-FFT plan
    /// ([`verify::linearity_probe`]), catching corrupted plan state
    /// (twiddle tables, dispatch) that per-buffer checksums cannot see. A
    /// failure has no localized repair — the plan itself is suspect — so
    /// it escalates immediately under every validating policy.
    fn probe_machinery(&self, comm: &mut Comm) -> Result<(), SoiRunError> {
        if !self.validation.is_on() {
            return Ok(());
        }
        let seed = PROBE_SEED ^ comm.rank() as u64;
        comm.stats_mut().span_open("sdc-verify");
        let ok = verify::linearity_probe(&self.plan_l, seed, verify::PROBE_TOLERANCE);
        comm.stats_mut().span_close("sdc-verify");
        if ok {
            return Ok(());
        }
        comm.stats_mut().note_sdc_detected();
        Err(self.sdc_error(comm, "verify-probe", None))
    }

    /// A [`CommError::SilentCorruption`] escalation at `phase`, carrying
    /// the ledger with its recorded detections.
    fn sdc_error(&self, comm: &Comm, phase: &'static str, segment: Option<usize>) -> SoiRunError {
        SoiRunError::new(
            phase,
            CommError::SilentCorruption {
                rank: comm.rank(),
                segment,
            },
            comm.stats().clone(),
        )
    }

    /// The recovery FFTs of every owned segment against caller-owned
    /// buffers (`z`/`aux` of length `M'`, six-step `scratch`, `y` of
    /// `output_len(rank)`), from a monolithic-layout exchange result
    /// (`incoming[r]` holds `[sl][m_local]`). Records the `"local-fft"`
    /// phase; the allocation-free inner loop of the workspace pipelines.
    fn recover_segments_into(
        &self,
        comm: &mut Comm,
        incoming: &[Vec<c64>],
        z: &mut Vec<c64>,
        aux: &mut [c64],
        scratch: &mut SixStepScratch,
        y: &mut [c64],
    ) {
        let p = &self.params;
        let m = p.m();
        let blocks = p.blocks_per_rank();
        let mine = self.seg_counts[comm.rank()];
        let t = comm.stats_mut().phase_start();
        for sl in 0..mine {
            z.clear();
            for part in incoming {
                z.extend_from_slice(&part[sl * blocks..(sl + 1) * blocks]);
            }
            debug_assert_eq!(z.len(), p.m_prime());
            self.segment_fft
                .forward_scaled_with(z, aux, &self.demod_scale, scratch);
            y[sl * m..(sl + 1) * m].copy_from_slice(&z[..m]);
        }
        let fft_flops = mine as f64 * soifft_fft::fft_flops(p.m_prime());
        match self.sim_fft_seconds(fft_flops) {
            Some(sim_s) => comm.stats_mut().phase_end_sim("local-fft", t, sim_s),
            None => comm.stats_mut().phase_end("local-fft", t),
        }
    }

    /// Monolithic (or chunked) exchange followed by all segment FFTs,
    /// through the workspace: pack slots come from the communicator's
    /// buffer pool, the monolithic exchange recycles last call's received
    /// payloads, and this call's are recycled after recovery — the
    /// balance that keeps an iterated steady state allocation-free.
    fn recover_monolithic_into(&self, comm: &mut Comm, ws: &mut SoiWorkspace, y: &mut [c64]) {
        let p = &self.params;
        let blocks = p.blocks_per_rank();
        let mine = self.seg_counts[comm.rank()];
        comm.stats_mut().span_open("pack");
        self.pack_pooled(comm, &ws.u, &mut ws.outgoing);
        comm.stats_mut().span_close("pack");
        match self.exchange {
            ExchangePlan::Chunked(chunk) => {
                let outgoing = std::mem::take(&mut ws.outgoing);
                ws.incoming = if self.uniform_layout() {
                    comm.all_to_all_chunked(outgoing, chunk)
                } else {
                    // Heterogeneous layouts have asymmetric per-peer
                    // volumes: every source sends *me* `mine·blocks`.
                    let expected = vec![mine * blocks; p.procs];
                    comm.all_to_all_chunked_v(outgoing, chunk, &expected)
                };
                ws.outgoing = vec![Vec::new(); p.procs];
            }
            ExchangePlan::Proxied(chunk) => {
                assert!(
                    self.uniform_layout(),
                    "proxied exchange supports uniform segment layouts only"
                );
                let proxy = soifft_cluster::ProxyCore::new();
                let outgoing = std::mem::take(&mut ws.outgoing);
                ws.incoming = comm.all_to_all_proxied(&proxy, outgoing, chunk);
                ws.outgoing = vec![Vec::new(); p.procs];
            }
            _ => comm.all_to_all_into(&mut ws.outgoing, &mut ws.incoming),
        }
        self.recover_segments_into(
            comm,
            &ws.incoming,
            &mut ws.z,
            &mut ws.aux,
            &mut ws.seg_scratch,
            y,
        );
        // Hand the received payloads back so next call's pack (same
        // capacity classes on uniform layouts) is served from the pool.
        for buf in ws.incoming.drain(..) {
            comm.recycle_buffer(buf);
        }
    }

    /// [`SoiFft::recover_monolithic_into`] for the half-width precisions:
    /// the pack demotes and bit-packs the frontier (half the exchange
    /// volume), the same monolithic/chunked/proxied collectives move it,
    /// and each owned segment is unpacked and recovered in the planned
    /// precision — `f32` `F_{M'}` + demoted demodulation for
    /// [`Precision::F32`], promote-then-fused-`f64`-six-step for
    /// [`Precision::Split`]. Buffers all come from the workspace and the
    /// communicator's pool, so the warm steady state stays
    /// allocation-free, exactly like the double-precision path.
    fn recover_monolithic_lowprec_into(
        &self,
        comm: &mut Comm,
        ws: &mut SoiWorkspace,
        y: &mut [c64],
    ) {
        let p = &self.params;
        let blocks = p.blocks_per_rank();
        let hb = blocks.div_ceil(2);
        let mine = self.seg_counts[comm.rank()];
        comm.stats_mut().span_open("pack");
        self.pack_lowprec_pooled(comm, &ws.u, &mut ws.outgoing);
        comm.stats_mut().span_close("pack");
        match self.exchange {
            ExchangePlan::Chunked(chunk) => {
                let outgoing = std::mem::take(&mut ws.outgoing);
                ws.incoming = if self.uniform_layout() {
                    comm.all_to_all_chunked(outgoing, chunk)
                } else {
                    let expected = vec![mine * hb; p.procs];
                    comm.all_to_all_chunked_v(outgoing, chunk, &expected)
                };
                ws.outgoing = vec![Vec::new(); p.procs];
            }
            ExchangePlan::Proxied(chunk) => {
                assert!(
                    self.uniform_layout(),
                    "proxied exchange supports uniform segment layouts only"
                );
                let proxy = soifft_cluster::ProxyCore::new();
                let outgoing = std::mem::take(&mut ws.outgoing);
                ws.incoming = comm.all_to_all_proxied(&proxy, outgoing, chunk);
                ws.outgoing = vec![Vec::new(); p.procs];
            }
            _ => comm.all_to_all_into(&mut ws.outgoing, &mut ws.incoming),
        }
        let t = comm.stats_mut().phase_start();
        for sl in 0..mine {
            ws.z32.clear();
            for part in &ws.incoming {
                unpack_part_into(&part[sl * hb..(sl + 1) * hb], blocks, &mut ws.z32);
            }
            self.recover_lowprec_segment(
                &mut ws.z32,
                &mut ws.fft32_scratch,
                &mut ws.z,
                &mut ws.aux,
                &mut ws.seg_scratch,
                y,
                sl,
            );
        }
        let fft_flops = mine as f64 * soifft_fft::fft_flops(p.m_prime());
        match self.sim_fft_seconds(fft_flops) {
            Some(sim_s) => comm.stats_mut().phase_end_sim("local-fft", t, sim_s),
            None => comm.stats_mut().phase_end("local-fft", t),
        }
        for buf in ws.incoming.drain(..) {
            comm.recycle_buffer(buf);
        }
    }

    /// Recovery FFT + demodulation + projection of one assembled
    /// low-precision segment (`z32`, length `M'`) into `y`'s slot `sl`, in
    /// the planned precision. Caller-owned buffers keep the monolithic hot
    /// path allocation-free; cold callers pass freshly sized ones.
    #[allow(clippy::too_many_arguments)]
    fn recover_lowprec_segment(
        &self,
        z32: &mut [c32],
        fft32_scratch: &mut Vec<c32>,
        z: &mut Vec<c64>,
        aux: &mut [c64],
        seg_scratch: &mut SixStepScratch,
        y: &mut [c64],
        sl: usize,
    ) {
        let m = self.params.m();
        debug_assert_eq!(z32.len(), self.params.m_prime());
        match self.precision {
            Precision::F32 => {
                let plan = self
                    .plan_mp32
                    .as_ref()
                    .expect("with_precision(F32) plans the f32 segment FFT");
                fft32_scratch.resize(plan.scratch_len(), c32::ZERO);
                plan.forward_with_scratch(z32, fft32_scratch);
                soifft_num::kernels::mul_pointwise(&mut z32[..m], &self.demod_scale32[..m]);
                soifft_num::simd::promote_c32_c64(&z32[..m], &mut y[sl * m..(sl + 1) * m]);
            }
            Precision::Split | Precision::F64 => {
                z.clear();
                z.resize(z32.len(), c64::ZERO);
                soifft_num::simd::promote_c32_c64(z32, z);
                self.segment_fft
                    .forward_scaled_with(z, aux, &self.demod_scale, seg_scratch);
                y[sl * m..(sl + 1) * m].copy_from_slice(&z[..m]);
            }
        }
    }

    /// Assembles and recovers one segment from per-source parts in the
    /// planned precision's wire format (the per-segment and overlapped
    /// exchange forms, which — like their double-precision originals —
    /// allocate per segment rather than through the workspace).
    fn recover_slices(&self, parts: &[&[c64]], y: &mut [c64], sl: usize) {
        let p = &self.params;
        if !self.precision.half_width_exchange() {
            let mut z = Vec::with_capacity(p.m_prime());
            for part in parts {
                z.extend_from_slice(part);
            }
            self.recover_into(z, y, sl);
            return;
        }
        let blocks = p.blocks_per_rank();
        let mut z32 = Vec::with_capacity(p.m_prime());
        for part in parts {
            unpack_part_into(part, blocks, &mut z32);
        }
        let mut fft32_scratch = Vec::new();
        let mut z = Vec::with_capacity(p.m_prime());
        let mut aux = vec![c64::ZERO; p.m_prime()];
        let mut seg_scratch = self.segment_fft.make_scratch();
        self.recover_lowprec_segment(
            &mut z32,
            &mut fft32_scratch,
            &mut z,
            &mut aux,
            &mut seg_scratch,
            y,
            sl,
        );
    }

    /// Simulated seconds for a compute phase of `flops`, when virtual time
    /// is configured.
    fn sim_fft_seconds(&self, flops: f64) -> Option<f64> {
        self.sim.map(|s| flops / s.fft_flops_per_s)
    }

    /// True when every rank owns the same number of segments.
    fn uniform_layout(&self) -> bool {
        self.seg_counts
            .iter()
            .all(|&c| c == self.params.segments_per_proc)
    }

    /// Per-segment exchange: segment `σ`'s recovery runs between exchanges
    /// (the overlap structure of §6.1; wall-clock overlap needs async
    /// transports, but the packet-size and interleaving structure is
    /// faithful).
    fn recover_per_segment(&self, comm: &mut Comm, u: &[c64]) -> Vec<c64> {
        let p = &self.params;
        let mine = self.seg_counts[comm.rank()];
        let mut y = vec![c64::ZERO; mine * p.m()];
        // All ranks must participate in every collective round, so the
        // round count is the maximum segment count; ranks with fewer
        // segments ship/receive empty buffers in the tail rounds.
        let rounds = self.seg_counts.iter().copied().max().unwrap_or(0);
        for sl in 0..rounds {
            let outgoing: Vec<Vec<c64>> = (0..p.procs)
                .map(|q| {
                    if sl < self.seg_counts[q] {
                        self.pack_for_wire(u, q, sl)
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let incoming = comm.all_to_all(outgoing);
            if sl < mine {
                let t = comm.stats_mut().phase_start();
                let parts: Vec<&[c64]> = incoming.iter().map(Vec::as_slice).collect();
                self.recover_slices(&parts, &mut y, sl);
                comm.stats_mut().phase_end("local-fft", t);
            }
        }
        y
    }

    /// Send-ahead + polling recovery: every segment's packets go out
    /// immediately (tagged by destination-local segment index); each owned
    /// segment is recovered as soon as all of its parts have arrived,
    /// polling with non-blocking receives in arrival order.
    fn recover_overlapped(&self, comm: &mut Comm, u: &[c64]) -> Vec<c64> {
        use soifft_cluster::tags;
        let p = &self.params;
        let mine = self.seg_counts[comm.rank()];

        // Post everything up front (sends never block in this transport;
        // on real MPI these would be MPI_Isend).
        let t = comm.stats_mut().phase_start();
        for q in 0..p.procs {
            for sl in 0..self.seg_counts[q] {
                let tag = tags::USER + sl as u64;
                comm.send(q, tag, self.pack_for_wire(u, q, sl));
            }
        }

        // Poll: segments become ready in whatever order the parts land.
        let mut parts: Vec<Vec<Option<Vec<c64>>>> =
            (0..mine).map(|_| vec![None; p.procs]).collect();
        let mut missing: Vec<usize> = (0..mine).map(|_| p.procs).collect();
        let mut done = vec![false; mine];
        let mut y = vec![c64::ZERO; mine * p.m()];
        let mut completed = 0;
        while completed < mine {
            // Drain whatever has arrived for any still-incomplete segment.
            let mut progressed = false;
            for sl in 0..mine {
                if done[sl] {
                    continue;
                }
                let tag = tags::USER + sl as u64;
                for (src, part) in parts[sl].iter_mut().enumerate() {
                    if part.is_none() {
                        if let Some(data) = comm.try_recv(src, tag) {
                            *part = Some(data);
                            missing[sl] -= 1;
                            progressed = true;
                        }
                    }
                }
                if missing[sl] == 0 {
                    // Recover this segment now — later packets keep
                    // flowing while we compute (the overlap).
                    let slices: Vec<&[c64]> = parts[sl]
                        .iter()
                        .map(|part| {
                            part.as_ref()
                                .expect("missing[sl] == 0 implies every part present")
                                .as_slice()
                        })
                        .collect();
                    self.recover_slices(&slices, &mut y, sl);
                    done[sl] = true;
                    completed += 1;
                }
            }
            if !progressed && completed < mine {
                // Nothing new: block on the lowest missing part to avoid a
                // hot spin.
                if let Some(sl) = (0..mine).find(|&sl| !done[sl]) {
                    let tag = tags::USER + sl as u64;
                    if let Some(src) = (0..p.procs).find(|&s| parts[sl][s].is_none()) {
                        let data = comm.recv(src, tag);
                        parts[sl][src] = Some(data);
                        missing[sl] -= 1;
                    }
                }
            }
        }
        comm.stats_mut().phase_end("all-to-all", t);
        y
    }

    /// `F_{M'}` with fused demodulation, projected into the output slot
    /// for local segment `sl`.
    fn recover_into(&self, mut z: Vec<c64>, y: &mut [c64], sl: usize) {
        let m = self.params.m();
        let m_prime = self.params.m_prime();
        debug_assert_eq!(z.len(), m_prime);
        let mut aux = vec![c64::ZERO; m_prime];
        self.segment_fft
            .forward_scaled(&mut z, &mut aux, &self.demod_scale);
        y[sl * m..(sl + 1) * m].copy_from_slice(&z[..m]);
    }
}

/// Seed of the once-per-validated-run linearity probe (xor-ed with the
/// rank so ranks draw distinct probe vectors).
const PROBE_SEED: u64 = 0x50D1_F1A6_0B5E_55ED;

/// Publishes the process-global FFT plan-cache counters into this rank's
/// ledger at the end of a superstep. The counters are gauges (the cache
/// is shared by every rank in-process), so `RunProfile` aggregates them
/// as a max across ranks.
fn publish_plan_cache_gauges(comm: &mut Comm) {
    let s = soifft_fft::global_plan_cache_stats();
    comm.stats_mut()
        .note_plan_cache(s.hits, s.misses, s.evictions);
}

/// Exclusive prefix sums (`[0, c0, c0+c1, ...]`, length `counts.len()`).
fn prefix_sums(counts: &[usize]) -> Vec<usize> {
    let mut base = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        base.push(acc);
        acc += c;
    }
    base
}

/// Splits a global input among ranks (testing/benching helper): rank `r`
/// gets `x[r·N/P .. (r+1)·N/P)`.
pub fn scatter_input(x: &[c64], procs: usize) -> Vec<Vec<c64>> {
    assert_eq!(x.len() % procs, 0);
    let per = x.len() / procs;
    (0..procs)
        .map(|r| x[r * per..(r + 1) * per].to_vec())
        .collect()
}

/// Reassembles rank outputs into the global vector (testing/benching
/// helper).
pub fn gather_output(parts: Vec<Vec<c64>>) -> Vec<c64> {
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Rational;
    use soifft_cluster::Cluster;
    use soifft_num::error::rel_l2;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64::new((0.05 * t).sin() + 0.4, 0.3 * (0.11 * t).cos())
            })
            .collect()
    }

    fn reference_fft(x: &[c64]) -> Vec<c64> {
        let plan = Plan::new(x.len());
        let mut y = x.to_vec();
        plan.forward(&mut y);
        y
    }

    fn run_distributed(params: SoiParams, exchange: ExchangePlan) -> (Vec<c64>, Vec<c64>) {
        let x = signal(params.n);
        let inputs = scatter_input(&x, params.procs);
        let fft = SoiFft::new(params).unwrap().with_exchange(exchange);
        let outputs = Cluster::run(params.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        (gather_output(outputs), reference_fft(&x))
    }

    fn params(procs: usize, s: usize) -> SoiParams {
        SoiParams {
            n: 1 << 12,
            procs,
            segments_per_proc: s,
            mu: Rational::new(2, 1),
            conv_width: 20,
        }
    }

    fn run_precision(
        params: SoiParams,
        exchange: ExchangePlan,
        precision: Precision,
    ) -> (Vec<c64>, Vec<c64>) {
        let x = signal(params.n);
        let inputs = scatter_input(&x, params.procs);
        let fft = SoiFft::new(params)
            .unwrap()
            .with_exchange(exchange)
            .with_precision(precision);
        let outputs = Cluster::run(params.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        (gather_output(outputs), reference_fft(&x))
    }

    #[test]
    fn c32_pair_bit_packing_round_trips_exactly() {
        let values = [
            c32::new(1.5, -2.25),
            c32::new(f32::MIN_POSITIVE, -0.0),
            c32::new(3.4e38, -1.1e-38),
            c32::ZERO,
        ];
        for &a in &values {
            for &b in &values {
                let (ua, ub) = unpack_c32_pair(pack_c32_pair(a, b));
                assert_eq!(a.re.to_bits(), ua.re.to_bits());
                assert_eq!(a.im.to_bits(), ua.im.to_bits());
                assert_eq!(b.re.to_bits(), ub.re.to_bits());
                assert_eq!(b.im.to_bits(), ub.im.to_bits());
            }
        }
        // Odd element counts: the pad is packed and dropped on unpack.
        let packed = vec![
            pack_c32_pair(values[0], values[1]),
            pack_c32_pair(values[2], c32::ZERO),
        ];
        let mut out = Vec::new();
        unpack_part_into(&packed, 3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].re.to_bits(), values[2].re.to_bits());
    }

    #[test]
    fn f32_precision_tracks_reference_across_exchanges() {
        for exchange in [
            ExchangePlan::Monolithic,
            ExchangePlan::Chunked(37),
            ExchangePlan::PerSegment,
            ExchangePlan::Overlapped,
            ExchangePlan::Proxied(64),
        ] {
            let (got, want) = run_precision(params(4, 2), exchange, Precision::F32);
            let snr = crate::accuracy::snr_db(&got, &want);
            assert!(snr > 100.0, "{exchange:?}: SNR {snr:.1} dB");
        }
    }

    #[test]
    fn split_precision_tracks_reference_across_exchanges() {
        for exchange in [
            ExchangePlan::Monolithic,
            ExchangePlan::Chunked(37),
            ExchangePlan::PerSegment,
            ExchangePlan::Overlapped,
            ExchangePlan::Proxied(64),
        ] {
            let (got, want) = run_precision(params(4, 2), exchange, Precision::Split);
            let snr = crate::accuracy::snr_db(&got, &want);
            assert!(snr > 120.0, "{exchange:?}: SNR {snr:.1} dB");
        }
    }

    #[test]
    fn precision_ladder_orders_as_designed() {
        let (f64_out, want) = run_precision(params(4, 2), ExchangePlan::Monolithic, Precision::F64);
        let (split_out, _) =
            run_precision(params(4, 2), ExchangePlan::Monolithic, Precision::Split);
        let (f32_out, _) = run_precision(params(4, 2), ExchangePlan::Monolithic, Precision::F32);
        let snr64 = crate::accuracy::snr_db(&f64_out, &want);
        let snr_split = crate::accuracy::snr_db(&split_out, &want);
        let snr32 = crate::accuracy::snr_db(&f32_out, &want);
        assert!(
            snr64 > snr_split && snr_split > snr32,
            "ladder violated: f64 {snr64:.1} dB, split {snr_split:.1} dB, f32 {snr32:.1} dB"
        );
    }

    #[test]
    fn lowprec_exchange_plans_are_bit_identical() {
        for precision in [Precision::F32, Precision::Split] {
            let (mono, _) = run_precision(params(4, 4), ExchangePlan::Monolithic, precision);
            for exchange in [
                ExchangePlan::Chunked(53),
                ExchangePlan::PerSegment,
                ExchangePlan::Overlapped,
                ExchangePlan::Proxied(96),
            ] {
                let (other, _) = run_precision(params(4, 4), exchange, precision);
                assert_eq!(mono, other, "{precision:?} {exchange:?}");
            }
        }
    }

    #[test]
    fn lowprec_fused_front_end_matches_reference() {
        let x = signal(1 << 12);
        let p = params(4, 2);
        let inputs = scatter_input(&x, p.procs);
        for precision in [Precision::F32, Precision::Split] {
            let fft = SoiFft::new(p)
                .unwrap()
                .with_fused_segment_fft()
                .with_precision(precision);
            let got = gather_output(Cluster::run(p.procs, |comm| {
                fft.forward(comm, &inputs[comm.rank()])
            }));
            let snr = crate::accuracy::snr_db(&got, &reference_fft(&x));
            assert!(snr > 100.0, "{precision:?}: SNR {snr:.1} dB");
        }
    }

    #[test]
    fn lowprec_heterogeneous_layout_chunked() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p)
            .unwrap()
            .with_segment_counts(vec![1, 3, 1, 3])
            .with_exchange(ExchangePlan::Chunked(41))
            .with_precision(Precision::Split);
        let mut outs = vec![Vec::new(); p.procs];
        let collected = Cluster::run(p.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        for (slot, y) in outs.iter_mut().zip(collected) {
            *slot = y;
        }
        let got = gather_output(outs);
        let snr = crate::accuracy::snr_db(&got, &reference_fft(&x));
        assert!(snr > 120.0, "SNR {snr:.1} dB");
    }

    #[test]
    fn lowprec_inverse_round_trips() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap().with_precision(Precision::Split);
        let spectrum = Cluster::run(p.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        let back = gather_output(Cluster::run(p.procs, |comm| {
            fft.inverse(comm, &spectrum[comm.rank()])
        }));
        let snr = crate::accuracy::snr_db(&back, &x);
        assert!(snr > 110.0, "round-trip SNR {snr:.1} dB");
    }

    #[test]
    fn distributed_matches_reference_various_cluster_shapes() {
        for (procs, s) in [(1, 8), (2, 4), (4, 2), (8, 1), (4, 4)] {
            let (got, want) = run_distributed(params(procs, s), ExchangePlan::Monolithic);
            let err = rel_l2(&got, &want);
            assert!(err < 1e-7, "P={procs} S={s}: err={err:.3e}");
        }
    }

    #[test]
    fn chunked_exchange_gives_identical_results() {
        let p = params(4, 2);
        let (mono, want) = run_distributed(p, ExchangePlan::Monolithic);
        let (chunked, _) = run_distributed(p, ExchangePlan::Chunked(37));
        assert_eq!(mono, chunked);
        assert!(rel_l2(&mono, &want) < 1e-7);
    }

    #[test]
    fn per_segment_exchange_gives_identical_results() {
        let p = params(4, 4);
        let (mono, want) = run_distributed(p, ExchangePlan::Monolithic);
        let (seg, _) = run_distributed(p, ExchangePlan::PerSegment);
        assert_eq!(mono, seg);
        assert!(rel_l2(&mono, &want) < 1e-7);
    }

    #[test]
    fn proxied_exchange_gives_identical_results() {
        let p = params(4, 2);
        let (mono, want) = run_distributed(p, ExchangePlan::Monolithic);
        let (prox, _) = run_distributed(p, ExchangePlan::Proxied(100));
        assert_eq!(mono, prox);
        assert!(rel_l2(&mono, &want) < 1e-7);
    }

    #[test]
    fn overlapped_exchange_gives_identical_results() {
        for (procs, s) in [(4usize, 4usize), (2, 8), (8, 1)] {
            let p = params(procs, s);
            let (mono, want) = run_distributed(p, ExchangePlan::Monolithic);
            let (ovl, _) = run_distributed(p, ExchangePlan::Overlapped);
            assert_eq!(mono, ovl, "P={procs} S={s}");
            assert!(rel_l2(&mono, &want) < 1e-7);
        }
    }

    #[test]
    fn overlapped_exchange_heterogeneous() {
        let p = params(4, 2);
        let counts = vec![1usize, 3, 1, 3];
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p)
            .unwrap()
            .with_segment_counts(counts)
            .with_exchange(ExchangePlan::Overlapped);
        let got = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));
        let want = reference_fft(&x);
        assert!(rel_l2(&got, &want) < 1e-7);
    }

    #[test]
    fn distributed_matches_single_node_pipeline() {
        let p = params(4, 2);
        let x = signal(p.n);
        let (dist, _) = run_distributed(p, ExchangePlan::Monolithic);
        let local = crate::single::SoiFftLocal::new(p.n, p.total_segments(), p.mu, p.conv_width)
            .unwrap()
            .forward(&x);
        // Same algorithm, same window ⇒ results agree to rounding.
        assert!(rel_l2(&dist, &local) < 1e-10);
    }

    #[test]
    fn phase_ledger_shows_soi_structure() {
        // Fig 2's structure: ghost + ONE all-to-all (vs CT's three).
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let stats = Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        });
        for s in &stats {
            assert_eq!(
                s.count_of("all-to-all"),
                1,
                "SOI needs exactly one all-to-all"
            );
            assert_eq!(s.count_of("ghost"), 1);
            assert_eq!(s.count_of("convolution"), 1);
            assert!(s.seconds_in("local-fft") > 0.0);
            // Ghost volume: (B−d_µ)·L elements · 16 bytes.
            let ghost_bytes = (p.ghost_len() * 16) as u64;
            assert_eq!(s.bytes_in("ghost"), ghost_bytes);
            // All-to-all volume: S·blocks per destination, P destinations.
            let a2a = (p.segments_per_proc * p.blocks_per_rank() * p.procs * 16) as u64;
            assert_eq!(s.bytes_in("all-to-all"), a2a);
        }
    }

    #[test]
    fn paper_parameters_distributed() {
        // µ = 8/7, B = 72 at small scale: P = 4, S = 2, M = 7·2^6.
        let p = SoiParams {
            n: 7 * (1 << 6) * 8,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(8, 7),
            conv_width: 72,
        };
        p.validate().unwrap();
        let (got, want) = run_distributed(p, ExchangePlan::Monolithic);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-4, "err={err:.3e}");
    }

    #[test]
    fn self_check_reports_small_error_on_all_ranks() {
        let p = params(4, 2);
        let fft = SoiFft::new(p).unwrap();
        let errs = Cluster::run(p.procs, |comm| fft.self_check(comm));
        for (rank, &e) in errs.iter().enumerate() {
            assert!(e < 1e-7, "rank {rank}: {e:.3e}");
            assert!((e - errs[0]).abs() < 1e-15, "ranks must agree");
        }
    }

    #[test]
    fn partial_spectrum_matches_full_and_ships_less() {
        let p = params(4, 2); // L = 8
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let m = p.m();

        let full = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));

        let wanted = vec![1usize, 6];
        let runs = Cluster::run(p.procs, |comm| {
            let segs = fft.forward_segments(comm, &inputs[comm.rank()], &wanted);
            (segs, comm.stats().bytes_in("all-to-all"))
        });

        // Correct owners, correct values.
        let mut found = 0;
        for (rank, (segs, _)) in runs.iter().enumerate() {
            for (s, bins) in segs {
                assert_eq!(s / p.segments_per_proc, rank, "owner of segment {s}");
                assert!(wanted.contains(s));
                assert!(
                    rel_l2(bins, &full[s * m..(s + 1) * m]) < 1e-12,
                    "segment {s}"
                );
                found += 1;
            }
        }
        assert_eq!(found, wanted.len());

        // Volume: 2 of 8 segments ⇒ 1/4 of the full exchange.
        let full_bytes = (p.segments_per_proc * p.blocks_per_rank() * p.procs * 16) as u64;
        for (_, bytes) in &runs {
            assert_eq!(*bytes, full_bytes / 4);
        }
    }

    #[test]
    fn heterogeneous_segment_layout_matches_reference() {
        // 4 ranks playing "2 Xeons + 2 Phis": segment counts 1,3,1,3
        // (total 8 = the plan's S·P). Output is non-uniform: ranks 1 and 3
        // produce 3 segments' worth of spectrum each.
        let p = params(4, 2); // L = 8
        let counts = vec![1usize, 3, 1, 3];
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap().with_segment_counts(counts.clone());
        let outs = Cluster::run(p.procs, |comm| {
            let y = fft.forward(comm, &inputs[comm.rank()]);
            assert_eq!(y.len(), fft.output_len(comm.rank()));
            y
        });
        // Concatenated in rank order the segments are globally ordered.
        let got = gather_output(outs);
        let want = reference_fft(&x);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-7, "err={err:.3e}");
    }

    #[test]
    fn heterogeneous_layout_with_chunked_exchange_falls_back_safely() {
        let p = params(4, 2);
        let counts = vec![1usize, 3, 1, 3];
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p)
            .unwrap()
            .with_segment_counts(counts)
            .with_exchange(ExchangePlan::Chunked(64));
        let got = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));
        let want = reference_fft(&x);
        assert!(rel_l2(&got, &want) < 1e-7);
    }

    #[test]
    fn heterogeneous_layout_with_per_segment_exchange() {
        let p = params(4, 2);
        let counts = vec![2usize, 4, 0, 2]; // a rank may own none
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p)
            .unwrap()
            .with_segment_counts(counts)
            .with_exchange(ExchangePlan::PerSegment);
        let outs = Cluster::run(p.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        assert!(outs[2].is_empty());
        let got = gather_output(outs);
        let want = reference_fft(&x);
        assert!(rel_l2(&got, &want) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "counts must sum to L")]
    fn bad_segment_counts_rejected() {
        let p = params(4, 2);
        let _ = SoiFft::new(p)
            .unwrap()
            .with_segment_counts(vec![1, 2, 3, 4]);
    }

    #[test]
    fn fused_segment_fft_pipeline_matches_unfused() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let plain = SoiFft::new(p).unwrap();
        let fused = SoiFft::new(p).unwrap().with_fused_segment_fft();
        let a = gather_output(Cluster::run(p.procs, |comm| {
            plain.forward(comm, &inputs[comm.rank()])
        }));
        let b = gather_output(Cluster::run(p.procs, |comm| {
            fused.forward(comm, &inputs[comm.rank()])
        }));
        assert!(rel_l2(&b, &a) < 1e-12);
        // Ledger: the fused pipeline has no separate segment-fft phase.
        let stats = Cluster::run(p.procs, |comm| {
            fused.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        });
        for s in &stats {
            assert_eq!(s.count_of("segment-fft"), 0);
            assert_eq!(s.count_of("convolution"), 1);
        }
    }

    #[test]
    fn virtual_time_matches_hand_computed_model() {
        // Install paper-flavoured rates and check the sim ledger equals the
        // closed-form expectation exactly (the functional/model bridge).
        let p = params(4, 2);
        let sim = SimSpec {
            fft_flops_per_s: 1e9,
            conv_flops_per_s: 2e9,
            net_bytes_per_s: 1e8,
            net_latency_s: 1e-4,
        };
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap().with_sim(sim);
        let stats = Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        });
        for s in &stats {
            let conv_expect = p.conv_flops() / p.procs as f64 / sim.conv_flops_per_s;
            assert!((s.sim_seconds_in("convolution") - conv_expect).abs() < 1e-12);

            let seg_expect = p.blocks_per_rank() as f64 * soifft_fft::fft_flops(p.total_segments())
                / sim.fft_flops_per_s;
            assert!((s.sim_seconds_in("segment-fft") - seg_expect).abs() < 1e-12);

            let local_expect = p.segments_per_proc as f64 * soifft_fft::fft_flops(p.m_prime())
                / sim.fft_flops_per_s;
            assert!((s.sim_seconds_in("local-fft") - local_expect).abs() < 1e-12);

            // All-to-all: µ·(N/P)·16 bytes at the configured bandwidth.
            let bytes = (p.segments_per_proc * p.blocks_per_rank() * p.procs * 16) as f64;
            let a2a_expect = sim.net_latency_s + bytes / sim.net_bytes_per_s;
            assert!(
                (s.sim_seconds_in("all-to-all") - a2a_expect).abs() < 1e-12,
                "{} vs {}",
                s.sim_seconds_in("all-to-all"),
                a2a_expect
            );
        }
    }

    #[test]
    fn plan_without_sim_clears_stale_cost_model_on_reused_comm() {
        // Regression: a simulated plan installs a CostModel on the Comm's
        // ledger; a later plain plan on the SAME Comm must not keep
        // annotating phases with the stale model's virtual time.
        let p = params(4, 2);
        let sim = SimSpec {
            fft_flops_per_s: 1e9,
            conv_flops_per_s: 2e9,
            net_bytes_per_s: 1e8,
            net_latency_s: 1e-4,
        };
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let simulated = SoiFft::new(p).unwrap().with_sim(sim);
        let plain = SoiFft::new(p).unwrap();
        let stats = Cluster::run(p.procs, |comm| {
            simulated.forward(comm, &inputs[comm.rank()]);
            let after_sim = comm.stats().records().len();
            plain.forward(comm, &inputs[comm.rank()]);
            (after_sim, comm.stats().clone())
        });
        for (after_sim, s) in &stats {
            // First run is simulated: its comm phases carry sim time.
            assert!(s.records()[..*after_sim]
                .iter()
                .any(|r| r.sim_seconds.is_some()));
            // Second run is not: every later record must be wall-clock only.
            for r in &s.records()[*after_sim..] {
                assert_eq!(
                    r.sim_seconds, None,
                    "phase {:?} kept the stale cost model",
                    r.name
                );
            }
        }

        // The same leak applies to the fault-tolerant path.
        let stats = Cluster::run(p.procs, |comm| {
            let policy = ExchangePolicy::default();
            simulated
                .try_forward(comm, &inputs[comm.rank()], &policy)
                .unwrap();
            let after_sim = comm.stats().records().len();
            plain
                .try_forward(comm, &inputs[comm.rank()], &policy)
                .unwrap();
            (after_sim, comm.stats().clone())
        });
        for (after_sim, s) in &stats {
            for r in &s.records()[*after_sim..] {
                assert_eq!(r.sim_seconds, None, "try_forward leaked the cost model");
            }
        }
    }

    #[test]
    fn traced_superstep_nests_every_phase() {
        // With tracing on, the forward superstep emits one "superstep"
        // span whose children are the pipeline phases plus the pack span,
        // and the flat ledger is unchanged by tracing.
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let traced: Vec<CommStats> = Cluster::run_with(
            soifft_cluster::ClusterConfig::with_trace(),
            p.procs,
            |comm| {
                fft.forward(comm, &inputs[comm.rank()]);
                comm.stats().clone()
            },
        )
        .into_iter()
        .map(|o| match o {
            RankOutcome::Ok(s) => s,
            other => panic!("rank failed: {other:?}"),
        })
        .collect();
        let plain = Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()]);
            comm.stats().clone()
        });
        for (t, u) in traced.iter().zip(&plain) {
            let t_names: Vec<_> = t.records().iter().map(|r| r.name).collect();
            let u_names: Vec<_> = u.records().iter().map(|r| r.name).collect();
            assert_eq!(t_names, u_names, "tracing must not change the flat ledger");

            let events = t.trace_events();
            let supersteps: Vec<_> = events.iter().filter(|e| e.name == "superstep").collect();
            assert_eq!(supersteps.len(), 1);
            assert_eq!(supersteps[0].depth, 0);
            for name in [
                "ghost",
                "convolution",
                "segment-fft",
                "pack",
                "all-to-all",
                "local-fft",
            ] {
                let ev = events
                    .iter()
                    .find(|e| e.name == name)
                    .unwrap_or_else(|| panic!("missing span {name}"));
                assert_eq!(ev.depth, 1, "{name} must nest under the superstep");
            }
        }
    }

    #[test]
    fn offload_mode_matches_symmetric_and_records_pcie() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let sym = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));
        let link = soifft_cluster::PcieLink::new();
        let off_runs = Cluster::run(p.procs, |comm| {
            let y = fft.forward_offload(comm, &link, &inputs[comm.rank()]);
            (y, comm.stats().clone())
        });
        let off = gather_output(off_runs.iter().map(|(y, _)| y.clone()).collect());
        assert_eq!(off, sym, "offload must be bit-identical to symmetric");
        for (_, s) in &off_runs {
            assert_eq!(s.count_of("pcie-in"), 1);
            assert_eq!(s.count_of("pcie-out"), 1);
            assert_eq!(s.count_of("all-to-all"), 1);
        }
    }

    #[test]
    fn distributed_inverse_round_trips() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let spectra = Cluster::run(p.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        let back = Cluster::run(p.procs, |comm| fft.inverse(comm, &spectra[comm.rank()]));
        let got = gather_output(back);
        let err = rel_l2(&got, &x);
        assert!(err < 1e-7, "round trip err={err:.3e}");
    }

    #[test]
    fn try_forward_matches_forward_on_healthy_cluster() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let plain = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));
        let resilient = gather_output(Cluster::run(p.procs, |comm| {
            fft.try_forward(comm, &inputs[comm.rank()], &ExchangePolicy::default())
                .expect("healthy cluster")
        }));
        assert_eq!(plain, resilient);
    }

    #[test]
    fn try_forward_surfaces_structured_error_with_partial_stats() {
        use soifft_cluster::{run_cluster_with_faults, CrashSite, FaultPlan, RankOutcome};
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        // Rank 2 dies entering the all-to-all: the ghost phase completes,
        // then the exchange must fail with a structured error carrying the
        // partial ledger — on every survivor, within the deadline.
        let plan = FaultPlan::new(9).crash(2, CrashSite::AllToAll);
        let outcomes = run_cluster_with_faults(p.procs, plan, |comm| {
            let policy = soifft_cluster::ExchangePolicy {
                deadline: std::time::Duration::from_secs(2),
                max_rounds: 2,
            };
            fft.try_forward(comm, &inputs[comm.rank()], &policy)
        });
        assert!(matches!(outcomes[2], RankOutcome::Crashed));
        for rank in [0usize, 1, 3] {
            let run = outcomes[rank].clone().unwrap();
            let err = run.expect_err("survivors must see the failure");
            assert_eq!(err.phase, "all-to-all", "rank {rank}");
            assert!(
                matches!(err.error, soifft_cluster::CommError::PeerFailed { rank: 2 }),
                "rank {rank}: {:?}",
                err.error
            );
            // The partial ledger still shows the completed ghost phase.
            assert_eq!(err.stats.count_of("ghost"), 1);
        }
    }

    #[test]
    fn scatter_gather_round_trip() {
        let x = signal(64);
        let parts = scatter_input(&x, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].len(), 16);
        assert_eq!(gather_output(parts), x);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn wrong_cluster_size_panics() {
        let p = params(4, 2);
        let fft = SoiFft::new(p).unwrap();
        Cluster::run(2, |comm| {
            let input = vec![c64::ZERO; p.per_rank()];
            fft.forward(comm, &input);
        });
    }

    #[test]
    fn cancel_gate_decides_once_then_rearms() {
        let gate = CancelGate::new();
        assert!(
            gate.proceed_at(CancelGate::BOUNDARY_GHOST),
            "fresh gate proceeds"
        );
        gate.cancel();
        assert!(
            gate.proceed_at(CancelGate::BOUNDARY_GHOST),
            "a decided boundary must not flip, even after cancel"
        );
        assert!(
            !gate.proceed_at(CancelGate::BOUNDARY_ALL_TO_ALL),
            "undecided boundary observes the cancel"
        );
        gate.reset();
        assert!(!gate.is_cancelled());
        assert!(
            gate.proceed_at(CancelGate::BOUNDARY_ALL_TO_ALL),
            "reset re-arms"
        );
    }

    #[test]
    fn pre_cancelled_gate_sheds_before_any_collective() {
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let gate = CancelGate::new();
        gate.cancel();
        Cluster::run(p.procs, |comm| {
            let mut ws = fft.make_workspace();
            let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
            let policy = soifft_cluster::ExchangePolicy::default();
            let err = fft
                .try_forward_into_cancellable(
                    comm,
                    &inputs[comm.rank()],
                    &policy,
                    &gate,
                    &mut ws,
                    &mut y,
                )
                .expect_err("pre-cancelled run must shed");
            assert_eq!(err.phase, phases::GHOST);
            assert!(
                matches!(err.error, CommError::Cancelled { phase: "ghost" }),
                "{:?}",
                err.error
            );
            // Shed *before* execution: no ghost exchange was recorded.
            assert_eq!(err.stats.count_of("ghost"), 0);
        });
        // The same gate, re-armed, runs to completion with correct output.
        gate.reset();
        let outputs = Cluster::run(p.procs, |comm| {
            let mut ws = fft.make_workspace();
            let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
            let policy = soifft_cluster::ExchangePolicy::default();
            fft.try_forward_into_cancellable(
                comm,
                &inputs[comm.rank()],
                &policy,
                &gate,
                &mut ws,
                &mut y,
            )
            .expect("re-armed gate runs clean");
            y
        });
        let err = rel_l2(&gather_output(outputs), &reference_fft(&x));
        assert!(err < 1e-7, "err={err:.3e}");
    }

    #[test]
    fn racing_cancel_keeps_ranks_collectively_consistent() {
        // A cancel that lands while ranks are mid-superstep must never
        // diverge the collective: either every rank sheds at the same
        // boundary, or every rank completes. Race a rank-local cancel
        // against the pipeline across several trials.
        let p = params(4, 2);
        let x = signal(p.n);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        for trial in 0..6u64 {
            let gate = CancelGate::new();
            let phases_seen = Cluster::run(p.procs, |comm| {
                if comm.rank() == (trial as usize) % p.procs {
                    gate.cancel();
                }
                let mut ws = fft.make_workspace();
                let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
                let policy = soifft_cluster::ExchangePolicy::default();
                match fft.try_forward_into_cancellable(
                    comm,
                    &inputs[comm.rank()],
                    &policy,
                    &gate,
                    &mut ws,
                    &mut y,
                ) {
                    Ok(()) => None,
                    Err(e) => {
                        assert!(
                            matches!(e.error, CommError::Cancelled { .. }),
                            "{:?}",
                            e.error
                        );
                        Some(e.phase)
                    }
                }
            });
            let first = &phases_seen[0];
            assert!(
                phases_seen.iter().all(|o| o == first),
                "trial {trial}: ranks diverged: {phases_seen:?}"
            );
        }
    }
}
