//! A-priori accuracy estimation for an SOI plan.
//!
//! From the exact alias expansion (see [`crate::window`]), the relative
//! error of bin `sM + l` is bounded by
//!
//! ```text
//! Σ_{r≠0} |ŵ(µr/L − l/N)| / |ŵ(−l/N)|
//! ```
//!
//! times a signal-dependent factor of order 1 (it is exactly 1 for a flat
//! spectrum). [`alias_bound`] evaluates this with the window's numeric
//! spectrum on a sample grid of `l`; tests and the accuracy bench check
//! measured transform errors against it.

use crate::params::SoiParams;
use crate::window::Window;
use soifft_num::c64;

/// Signal-to-noise ratio of `got` against the oracle `want`, in decibels:
/// `10·log₁₀(Σ|want|² / Σ|got − want|²)`.
///
/// The metric the mixed-precision accuracy gates are written in (see
/// `tests/snr_accuracy.rs` and DESIGN.md §1j): an exact match returns
/// `f64::INFINITY`; a double-precision SOI run lands above ~250 dB, a
/// [`crate::Precision::Split`] run above ~130 dB, and a
/// [`crate::Precision::F32`] run above ~100 dB on well-conditioned
/// parameters.
///
/// # Panics
/// Panics if the lengths differ or `want` has zero energy.
pub fn snr_db(got: &[c64], want: &[c64]) -> f64 {
    assert_eq!(got.len(), want.len(), "length mismatch");
    let signal: f64 = want.iter().map(|v| v.norm_sqr()).sum();
    assert!(signal > 0.0, "oracle has zero energy; SNR undefined");
    let noise: f64 = got
        .iter()
        .zip(want)
        .map(|(g, w)| (*g - *w).norm_sqr())
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

/// Estimated worst-case relative leakage of the plan: the alias-to-passband
/// ratio maximized over a grid of `samples` output positions, summing alias
/// orders `|r| ≤ r_max` (2 is plenty; higher orders are negligible).
pub fn alias_bound(window: &Window, params: &SoiParams, samples: usize, r_max: i32) -> f64 {
    assert!(samples >= 1 && r_max >= 1);
    let l_total = params.total_segments() as f64;
    let mu = params.mu.as_f64();
    let n = params.n as f64;
    let m = params.m();
    let mut worst: f64 = 0.0;
    for i in 0..samples {
        // Spread sample points over [0, M), always including both edges.
        let l = if samples == 1 {
            0
        } else {
            (i * (m - 1)) / (samples - 1)
        };
        let f_pass = -(l as f64) / n;
        let pass = window.spectrum_numeric(f_pass).abs();
        let mut leak = 0.0;
        for r in 1..=r_max {
            for sign in [-1.0, 1.0] {
                let f = sign * mu * r as f64 / l_total + f_pass;
                leak += window.spectrum_numeric(f).abs();
            }
        }
        worst = worst.max(leak / pass);
    }
    worst
}

/// Relative tolerance for an energy-conservation (Parseval) check across an
/// unnormalized FFT of length `len`.
///
/// In exact arithmetic an unnormalized `len`-point DFT multiplies total
/// energy by exactly `len`; in floating point the relative drift grows with
/// the number of butterfly stages, roughly `ε·log2(len)` with a modest
/// constant. The returned bound is ~two orders above worst-case roundoff so
/// a healthy transform never trips it, yet ~ten orders below the energy
/// shift of a single high-exponent bit flip, which it therefore always
/// catches.
pub fn energy_tolerance(len: usize) -> f64 {
    let stages = (len.max(2) as f64).log2();
    1e-12 * stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Rational, SoiParams};
    use crate::single::SoiFftLocal;
    use crate::window::WindowKind;
    use soifft_fft::Plan;
    use soifft_num::c64;
    use soifft_num::error::rel_l2;

    fn params(b: usize) -> SoiParams {
        SoiParams {
            n: 1 << 10,
            procs: 1,
            segments_per_proc: 8,
            mu: Rational::new(2, 1),
            conv_width: b,
        }
    }

    #[test]
    fn bound_shrinks_with_wider_windows() {
        let bounds: Vec<f64> = [8, 12, 16, 24]
            .into_iter()
            .map(|b| {
                let p = params(b);
                let w = Window::new(WindowKind::GaussianSinc, &p);
                alias_bound(&w, &p, 9, 2)
            })
            .collect();
        for pair in bounds.windows(2) {
            assert!(pair[1] < pair[0] * 0.5, "bound did not shrink: {bounds:?}");
        }
        assert!(bounds[3] < 1e-7, "{bounds:?}");
    }

    #[test]
    fn measured_error_is_within_an_order_of_the_bound() {
        for b in [12, 16, 20] {
            let p = params(b);
            let w = Window::new(WindowKind::GaussianSinc, &p);
            let bound = alias_bound(&w, &p, 9, 2);

            let soi = SoiFftLocal::from_params(p, WindowKind::GaussianSinc).unwrap();
            let x: Vec<c64> = (0..p.n)
                .map(|i| c64::new((0.21 * i as f64).sin(), (0.13 * i as f64).cos()))
                .collect();
            let got = soi.forward(&x);
            let plan = Plan::new(p.n);
            let mut want = x.clone();
            plan.forward(&mut want);
            let measured = rel_l2(&got, &want);
            assert!(
                measured < bound * 30.0 + 1e-13,
                "B={b}: measured {measured:.3e} vs bound {bound:.3e}"
            );
        }
    }

    #[test]
    fn energy_tolerance_scales_with_depth_and_clears_roundoff() {
        assert!(energy_tolerance(1 << 16) > energy_tolerance(1 << 4));
        // Measured Parseval drift of a healthy FFT must sit far below the
        // tolerance for that length.
        let n = 1 << 10;
        let plan = Plan::new(n);
        let mut data: Vec<c64> = (0..n)
            .map(|i| c64::new((0.31 * i as f64).sin(), (0.17 * i as f64).cos()))
            .collect();
        let e_in: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        plan.forward(&mut data);
        let e_out: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let drift = ((e_out - e_in * n as f64) / (e_in * n as f64)).abs();
        assert!(drift < energy_tolerance(n) / 10.0, "drift {drift:.3e}");
    }

    #[test]
    fn single_sample_grid_works() {
        let p = params(16);
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let b1 = alias_bound(&w, &p, 1, 1);
        assert!(b1.is_finite() && b1 > 0.0);
    }
}
