//! Child-process body for multi-process SOI runs.
//!
//! The [`ProcSupervisor`](soifft_cluster::transport::proc::ProcSupervisor)
//! spawns each rank as a child OS process and describes the rank's place
//! in the cluster through the `SOIFFT_PROC_*` environment. This module is
//! the matching child side: [`child_main`] probes that environment, and
//! when present connects the multi-process transport, opens the shared
//! **disk-mode** checkpoint store, rebuilds the recovery context for its
//! generation, runs [`SoiFft::try_forward_recoverable`], and writes its
//! local spectrum — atomically — to a per-rank output file the parent can
//! compare bit-for-bit across fault-free and chaos runs.
//!
//! The same body serves the `proc_chaos` test harness, the
//! `examples/proc_run.rs` demo, and the chaos example's process-kill
//! scenario, so every caller exercises the exact production wiring.

use std::io;
use std::path::Path;
use std::sync::Arc;

use soifft_cluster::transport::proc::{ProcEndpoint, ProcTransport, CHILD_COMM_ABORT};
use soifft_cluster::{CheckpointStore, ClusterConfig, Comm, ExchangePolicy, RecoveryCtx};
use soifft_num::c64;

use crate::params::SoiParams;
use crate::pipeline::{scatter_input, SoiFft};

/// Deterministic pseudo-random input shared by parent and children (the
/// parent never ships the vector — both sides regenerate it from the
/// seed, so a respawned generation computes on identical bits).
pub fn seeded_input(n: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// Atomically (temp-write + rename) persists `rank`'s local spectrum so
/// a kill can never leave a half-written result under the live name.
///
/// # Errors
/// Filesystem errors from the write or rename.
pub fn write_rank_output(dir: &Path, rank: usize, data: &[c64]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(data.len() * 16);
    for z in data {
        bytes.extend_from_slice(&z.re.to_le_bytes());
        bytes.extend_from_slice(&z.im.to_le_bytes());
    }
    let tmp = dir.join(format!(".rank{rank}.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, dir.join(format!("rank{rank}.out")))
}

/// Reads back what [`write_rank_output`] persisted.
///
/// # Errors
/// Filesystem errors, or `InvalidData` when the file length is not a
/// whole number of complex values.
pub fn read_rank_output(dir: &Path, rank: usize) -> io::Result<Vec<c64>> {
    let bytes = std::fs::read(dir.join(format!("rank{rank}.out")))?;
    if bytes.len() % 16 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "output file is not a whole number of complex values",
        ));
    }
    Ok(bytes
        .chunks_exact(16)
        .map(|pair| {
            c64::new(
                f64::from_le_bytes(pair[..8].try_into().expect("slice is 8 bytes")),
                f64::from_le_bytes(pair[8..].try_into().expect("slice is 8 bytes")),
            )
        })
        .collect())
}

/// The supervised-child body: `None` when the `SOIFFT_PROC_*` environment
/// is absent (we are not a spawned rank), otherwise the exit code the
/// process should terminate with — `0` on success, [`CHILD_COMM_ABORT`]
/// when the run died with a typed comm error (a casualty of a peer
/// failure, for the supervisor to distinguish from a root-cause death).
#[must_use = "exit with the returned code so the supervisor can classify this rank"]
pub fn child_main(params: &SoiParams, seed: u64, out_dir: &Path) -> Option<i32> {
    let ep = ProcEndpoint::from_env()?;
    Some(run_child(&ep, params, seed, out_dir))
}

/// [`child_main`] after the environment probe, for callers that already
/// hold the [`ProcEndpoint`].
pub fn run_child(ep: &ProcEndpoint, params: &SoiParams, seed: u64, out_dir: &Path) -> i32 {
    let transport = match ProcTransport::connect(ep) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rank {}: transport connect failed: {e}", ep.rank);
            return 3;
        }
    };
    let mut comm = Comm::from_transport(Box::new(transport), &ClusterConfig::default());
    let store = match &ep.checkpoint_dir {
        Some(dir) => match CheckpointStore::persistent(ep.size, dir) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("rank {}: checkpoint dir unusable: {e}", ep.rank);
                return 3;
            }
        },
        None => Arc::new(CheckpointStore::new(ep.size)),
    };
    let ctx = RecoveryCtx::resume(store, ep.generation, ep.restarts);
    let plan = match SoiFft::new(*params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rank {}: bad SOI parameters: {e}", ep.rank);
            return 4;
        }
    };
    let input = seeded_input(params.n, seed);
    let local = scatter_input(&input, params.procs).swap_remove(ep.rank);
    match plan.try_forward_recoverable(&mut comm, &local, &ExchangePolicy::default(), &ctx) {
        Ok(y) => {
            if let Err(e) = write_rank_output(out_dir, ep.rank, &y) {
                eprintln!("rank {}: output write failed: {e}", ep.rank);
                return 3;
            }
            0
        }
        Err(err) => {
            eprintln!(
                "rank {}: aborting at phase {:?}: {}",
                ep.rank, err.phase, err.error
            );
            CHILD_COMM_ABORT
        }
    }
}
