//! SOI window design: the convolution kernel `w` and its spectrum.
//!
//! The whole accuracy story of SOI lives here. The algebra (see the crate
//! docs and DESIGN.md §2) shows the pipeline computes, exactly,
//!
//! ```text
//! ζ_s[l] = (1/σ)·Σ_r  ŵ(µr/L − l/N) · y[(sM + l − rM') mod N],   σ = L/µ
//! ```
//!
//! so the transform is recovered from the `r = 0` term by dividing by
//! `(1/σ)·ŵ(−l/N)` (demodulation `W⁻¹`), and the `r ≠ 0` terms — leakage
//! from the other segments, attenuated by the window's stopband — are the
//! algorithm's error. A good `w` therefore needs:
//!
//! * passband: `|ŵ|` ≈ flat (well away from 0) on `[−1/L, 0]` so
//!   demodulation is well-conditioned,
//! * stopband: `|ŵ|` ≈ 0 at every alias offset `±µr/L` from the passband —
//!   the guard band bought by oversampling is `(µ−1)/L` wide on each side,
//! * compact support: `w` must fit in `(B − d_µ)·L` samples so that every
//!   modulated copy `w(i − jσ)`, `j < n_µ`, stays inside the `B·L`-sample
//!   read window of one convolution chunk.
//!
//! The default design is a **modulated Gaussian-tapered sinc**: the ideal
//! band-pass (sinc) gives the flat passband, the Gaussian taper gives
//! `exp(−π·T_h·Δ)`-deep stopbands with the truncation and transition errors
//! balanced (`T_h` = half-support, `Δ` = transition width). Its spectrum
//! has the closed form `½[erf(α(ν+f_c)) − erf(α(ν−f_c))]`, so demodulation
//! constants cost `O(M)` — no large-transform precomputation. A
//! Kaiser-tapered variant (slightly better attenuation per unit
//! time-bandwidth, no closed-form spectrum) is selectable; its demodulation
//! constants are computed numerically, which is also available for the
//! Gaussian as a cross-check.

use soifft_num::c64;
use soifft_num::special::{bessel_i0, erf, sinc};

use crate::params::{SoiError, SoiParams};

/// Taper family for the modulated-sinc window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Gaussian taper; spectrum in closed form (erf), `O(M)` demodulation
    /// setup. The default.
    GaussianSinc,
    /// Kaiser (I₀) taper; marginally better stopband for the same support,
    /// demodulation constants computed by direct numerical transform
    /// (`O(M·B·L)` setup).
    KaiserSinc,
    /// Discrete-prolate (Slepian/DPSS) taper — the *optimal* concentration
    /// for the time-bandwidth budget, several orders of magnitude deeper
    /// stopbands than Gaussian/Kaiser at the paper's `(B, µ)` design
    /// points. The SC'12 SOI framework paper's specially-designed windows
    /// play this role; see DESIGN.md §6.4. Demodulation is numeric.
    ProlateSinc,
}

/// How the demodulation constants `ŵ(−l/N)` are obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemodMode {
    /// Closed-form spectrum (Gaussian taper only).
    Analytic,
    /// Direct numerical transform of the actual taps (any taper); uses the
    /// truncated window's true spectrum, so it is the more exact choice
    /// when `M·B·L` setup work is affordable.
    Numeric,
    /// `Numeric` when `M·B·L ≤ 2³⁰`, else `Analytic`.
    Auto,
}

/// Fraction of the `(µ−1)/L` guard band spent widening the flat passband
/// (the rest is transition width). Tuned empirically: smaller sharpens the
/// passband edge conditioning, larger deepens the stopband.
const PASSBAND_MARGIN: f64 = 0.25;

/// A fully built SOI window: taps in both access layouts plus the
/// demodulation diagonal.
#[derive(Clone, Debug)]
pub struct Window {
    kind: WindowKind,
    l: usize,
    b: usize,
    n_mu: usize,
    d_mu: usize,
    /// Window support `[0, t_support]` in samples, `(B − d_µ)·L`.
    t_support: f64,
    /// Modulation centre frequency `f₀ = −1/(2L)`.
    f0: f64,
    /// Passband half-width `f_c`.
    fc: f64,
    /// Gaussian σ_t (GaussianSinc) — also used to pick Kaiser β.
    sigma_t: f64,
    /// Kaiser β (KaiserSinc only).
    beta: f64,
    /// DPSS taper samples on the grid `t = g/n_µ`, `g ∈ [0, n_µ·T]`
    /// (ProlateSinc only) — every tap argument `i − jσ` lands exactly on
    /// this grid.
    prolate_grid: Option<Vec<f64>>,
    /// Row-major taps: `taps[j·B·L + i] = w(i − jσ)`, `j < n_µ`,
    /// `i < B·L`.
    taps: Vec<c64>,
    /// Per-column layout for the interchanged convolution:
    /// `taps_by_p[(p·n_µ + j)·B + b] = w(bL + p − jσ)`.
    taps_by_p: Vec<c64>,
    /// `demod[l] = σ / ŵ(−l/N)` for `l < M`.
    demod: Vec<c64>,
}

impl Window {
    /// Builds the window for `params` with [`DemodMode::Auto`].
    pub fn new(kind: WindowKind, params: &SoiParams) -> Self {
        Self::with_demod_mode(kind, params, DemodMode::Auto)
    }

    /// Builds the window with an explicit demodulation strategy.
    ///
    /// # Panics
    /// Panics if `DemodMode::Analytic` is requested for a Kaiser window
    /// (no closed-form spectrum), or if `params` are invalid. Use
    /// [`Window::try_with_demod_mode`] when the parameters come from
    /// untrusted input and a typed [`SoiError`] is wanted instead.
    pub fn with_demod_mode(kind: WindowKind, params: &SoiParams, mode: DemodMode) -> Self {
        match Self::try_with_demod_mode(kind, params, mode) {
            Ok(w) => w,
            Err(e) => panic!("invalid SOI parameters: {e}"),
        }
    }

    /// Fallible twin of [`Window::with_demod_mode`]: invalid parameters
    /// surface as the typed [`SoiError`] from
    /// [`SoiParams::validate`](crate::params::SoiParams::validate) instead
    /// of a panic. The `Analytic`-for-a-non-Gaussian-taper combination
    /// still asserts — that is a caller bug (the mode is a compile-time
    /// choice), not bad input data.
    pub fn try_with_demod_mode(
        kind: WindowKind,
        params: &SoiParams,
        mode: DemodMode,
    ) -> Result<Self, SoiError> {
        params.validate()?;
        let l = params.total_segments();
        let b = params.conv_width;
        let n_mu = params.mu.num();
        let d_mu = params.mu.den();
        let m = params.m();
        let n = params.n;
        let mu = params.mu.as_f64();

        // Geometry: support, modulation, passband, taper.
        let t_support = ((b - d_mu) * l) as f64;
        let t_half = t_support / 2.0;
        let f0 = -1.0 / (2.0 * l as f64);
        let guard = (mu - 1.0) / l as f64;
        let fc = 1.0 / (2.0 * l as f64) + PASSBAND_MARGIN * guard;
        let transition = (1.0 - PASSBAND_MARGIN) * guard;
        // Balanced Gaussian: truncation depth == stopband depth
        // (exponent π·T_h·Δ each; see module docs).
        let sigma_t = (t_half / (2.0 * std::f64::consts::PI * transition)).sqrt();
        // Kaiser β from the standard attenuation fit for the same
        // time-bandwidth product.
        let atten_db = 2.285 * 2.0 * std::f64::consts::PI * transition * t_support + 8.0;
        let beta = if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.078_86 * (atten_db - 21.0)
        } else {
            0.0
        };

        // DPSS taper, sampled on the 1/n_µ grid every tap argument uses.
        // The upsampled sequence of length `n_µ·T + 1` at half-bandwidth
        // `W_t/n_µ` approximates the continuous prolate with bandwidth
        // `W_t = transition` (the time-bandwidth budget goes entirely to
        // the transition, which is what makes prolate windows win).
        let prolate_grid = if kind == WindowKind::ProlateSinc {
            let grid_len = n_mu * (t_support as usize) + 1;
            let w_up = (transition / n_mu as f64).min(0.49);
            let mut taper = soifft_num::dpss::dpss0(grid_len, w_up);
            let peak = taper.iter().cloned().fold(0.0f64, f64::max);
            for v in taper.iter_mut() {
                *v /= peak;
            }
            Some(taper)
        } else {
            None
        };

        let mut w = Window {
            kind,
            l,
            b,
            n_mu,
            d_mu,
            t_support,
            f0,
            fc,
            sigma_t,
            beta,
            prolate_grid,
            taps: Vec::new(),
            taps_by_p: Vec::new(),
            demod: Vec::new(),
        };

        // Taps: w(i − jσ), σ = d_µ·L/n_µ.
        let bl = b * l;
        let sigma = (d_mu * l) as f64 / n_mu as f64;
        let mut taps = vec![c64::ZERO; n_mu * bl];
        for j in 0..n_mu {
            let shift = j as f64 * sigma;
            let row = &mut taps[j * bl..(j + 1) * bl];
            for (i, v) in row.iter_mut().enumerate() {
                *v = w.eval_time(i as f64 - shift);
            }
        }
        w.taps = taps;

        // Column-major copy for the interchanged convolution.
        let mut by_p = vec![c64::ZERO; l * n_mu * b];
        for p in 0..l {
            for j in 0..n_mu {
                for bb in 0..b {
                    by_p[(p * n_mu + j) * b + bb] = w.taps[j * bl + bb * l + p];
                }
            }
        }
        w.taps_by_p = by_p;

        // Demodulation diagonal.
        let has_closed_form = kind == WindowKind::GaussianSinc;
        let numeric = match mode {
            DemodMode::Numeric => true,
            DemodMode::Analytic => {
                assert!(
                    has_closed_form,
                    "only Gaussian windows have a closed-form spectrum (no closed-form \
                     spectrum for Kaiser/prolate); use Numeric/Auto"
                );
                false
            }
            DemodMode::Auto => !has_closed_form || (m as u128) * (bl as u128) <= 1u128 << 30,
        };
        let inv_sigma_recip = sigma; // demod multiplies by σ / ŵ.
        let mut demod = Vec::with_capacity(m);
        for ll in 0..m {
            let f = -(ll as f64) / n as f64;
            let what = if numeric {
                w.spectrum_numeric(f)
            } else {
                w.spectrum_analytic(f)
            };
            demod.push(c64::real(inv_sigma_recip) / what);
        }
        w.demod = demod;
        Ok(w)
    }

    /// Evaluates the continuous window at (possibly fractional) sample
    /// position `t`; zero outside `[0, t_support]`.
    pub fn eval_time(&self, t: f64) -> c64 {
        if !(0.0..=self.t_support).contains(&t) {
            return c64::ZERO;
        }
        let tau = t - self.t_support / 2.0;
        let envelope = 2.0 * self.fc * sinc(2.0 * self.fc * tau) * self.taper(tau);
        c64::cis(2.0 * std::f64::consts::PI * self.f0 * tau) * envelope
    }

    fn taper(&self, tau: f64) -> f64 {
        let t_half = self.t_support / 2.0;
        match self.kind {
            WindowKind::GaussianSinc => (-tau * tau / (2.0 * self.sigma_t * self.sigma_t)).exp(),
            WindowKind::KaiserSinc => {
                let x = 1.0 - (tau / t_half) * (tau / t_half);
                if x <= 0.0 {
                    0.0
                } else {
                    bessel_i0(self.beta * x.sqrt()) / bessel_i0(self.beta)
                }
            }
            WindowKind::ProlateSinc => {
                let grid = self.prolate_grid.as_ref().expect("built in constructor");
                // Grid position: every tap argument is an exact multiple of
                // 1/n_µ; linear interpolation keeps eval_time total for
                // arbitrary arguments.
                let pos = (tau + t_half) * self.n_mu as f64;
                if pos <= 0.0 {
                    return grid[0];
                }
                let g = pos.floor() as usize;
                if g + 1 >= grid.len() {
                    return *grid.last().expect("non-empty");
                }
                let frac = pos - g as f64;
                grid[g] * (1.0 - frac) + grid[g + 1] * frac
            }
        }
    }

    /// Closed-form spectrum (Gaussian taper, untruncated):
    /// `ŵ(f) = e^{−2πi f t₀} · ½[erf(α(ν+f_c)) − erf(α(ν−f_c))]`,
    /// `ν = f − f₀`, `α = √2·π·σ_t`.
    pub fn spectrum_analytic(&self, f: f64) -> c64 {
        assert!(
            self.kind == WindowKind::GaussianSinc,
            "closed-form spectrum exists only for the Gaussian taper"
        );
        let nu = f - self.f0;
        let alpha = std::f64::consts::SQRT_2 * std::f64::consts::PI * self.sigma_t;
        let mag = 0.5 * (erf(alpha * (nu + self.fc)) - erf(alpha * (nu - self.fc)));
        let t0 = self.t_support / 2.0;
        c64::cis(-2.0 * std::f64::consts::PI * f * t0) * mag
    }

    /// Numerical spectrum of the actual (truncated, sampled) taps:
    /// `Σ_t w(t) e^{−2πi f t}` over the `j = 0` tap row.
    pub fn spectrum_numeric(&self, f: f64) -> c64 {
        let bl = self.b * self.l;
        let row = &self.taps[..bl];
        let step = c64::cis(-2.0 * std::f64::consts::PI * f);
        let mut phase = c64::ONE;
        let mut acc = c64::ZERO;
        for &w in row {
            acc += w * phase;
            phase *= step;
        }
        acc
    }

    /// The taps for modulation index `j` (`j < n_µ`), length `B·L`:
    /// `w(i − jσ)`.
    pub fn taps_row(&self, j: usize) -> &[c64] {
        let bl = self.b * self.l;
        &self.taps[j * bl..(j + 1) * bl]
    }

    /// The compact per-column taps for input column `p`: an `n_µ × B`
    /// block, `taps_for_p(p)[j·B + b] = w(bL + p − jσ)` (the "X" elements of
    /// the paper's Fig 6(b)).
    pub fn taps_for_p(&self, p: usize) -> &[c64] {
        let stride = self.n_mu * self.b;
        &self.taps_by_p[p * stride..(p + 1) * stride]
    }

    /// The demodulation diagonal `D[l] = σ/ŵ(−l/N)`, length `M`.
    pub fn demod(&self) -> &[c64] {
        &self.demod
    }

    /// The taper family.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Number of distinct taps stored (`n_µ·B·L`, the paper's count).
    pub fn distinct_taps(&self) -> usize {
        self.n_mu * self.b * self.l
    }

    /// Passband half-width `f_c`.
    pub fn passband_halfwidth(&self) -> f64 {
        self.fc
    }

    /// Modulation centre `f₀ = −1/(2L)`.
    pub fn center_frequency(&self) -> f64 {
        self.f0
    }

    /// Segment count `L` this window was designed for.
    pub fn segments(&self) -> usize {
        self.l
    }

    /// Convolution width `B`.
    pub fn conv_width(&self) -> usize {
        self.b
    }

    /// `(n_µ, d_µ)`.
    pub fn mu_parts(&self) -> (usize, usize) {
        (self.n_mu, self.d_mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Rational, SoiParams};

    /// Test parameters chosen so the window is *good*: accuracy scales as
    /// `exp(−π(B−d_µ)(1−ρ)(µ−1)/2)`, so small tests need a generous
    /// oversampling factor. µ = 2, B = 16 gives ≈ 2e−8 stopbands.
    fn params() -> SoiParams {
        SoiParams {
            n: 1 << 10,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(2, 1),
            conv_width: 16,
        }
    }

    #[test]
    fn taps_have_compact_support_within_read_window() {
        let w = Window::new(WindowKind::GaussianSinc, &params());
        let bl = w.conv_width() * w.segments();
        for j in 0..w.mu_parts().0 {
            let row = w.taps_row(j);
            assert_eq!(row.len(), bl);
            // Support [jσ, jσ + T] ⊂ [0, BL): endpoints outside are zero.
            let sigma = (w.mu_parts().1 * w.segments()) as f64 / w.mu_parts().0 as f64;
            let lo = (j as f64 * sigma).floor() as usize;
            for (i, v) in row.iter().enumerate() {
                if i + 1 < lo {
                    assert_eq!(v.abs(), 0.0, "j={j} i={i} below support");
                }
            }
        }
    }

    #[test]
    fn taps_by_p_matches_row_layout() {
        let w = Window::new(WindowKind::GaussianSinc, &params());
        let (n_mu, _) = w.mu_parts();
        let l = w.segments();
        let b = w.conv_width();
        for p in [0, 1, l / 2, l - 1] {
            let cols = w.taps_for_p(p);
            for j in 0..n_mu {
                for bb in 0..b {
                    assert_eq!(
                        cols[j * b + bb],
                        w.taps_row(j)[bb * l + p],
                        "p={p} j={j} b={bb}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_and_numeric_spectra_agree_in_passband() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let l = w.segments();
        // Sample the passband and near transition.
        for k in 0..10 {
            let f = w.center_frequency() + (k as f64 - 5.0) / (10.0 * l as f64);
            let a = w.spectrum_analytic(f);
            let n = w.spectrum_numeric(f);
            assert!(
                (a - n).abs() < 1e-3 * (1.0 + n.abs()),
                "f={f}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn passband_is_flat_and_well_conditioned() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let n = p.n;
        let m = p.m();
        // |ŵ(−l/N)| must stay well away from zero across the passband.
        let mut min_mag = f64::INFINITY;
        let mut max_mag: f64 = 0.0;
        for l in (0..m).step_by(m / 50 + 1) {
            let mag = w.spectrum_numeric(-(l as f64) / n as f64).abs();
            min_mag = min_mag.min(mag);
            max_mag = max_mag.max(mag);
        }
        assert!(min_mag > 0.3 * max_mag, "min {min_mag} vs max {max_mag}");
    }

    #[test]
    fn stopband_is_deep_at_alias_offsets() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let l = p.total_segments();
        let mu = p.mu.as_f64();
        let pass = w.spectrum_numeric(w.center_frequency()).abs();
        for r in [1i32, -1, 2, -2] {
            // Worst case within the alias image of the passband.
            let mut worst: f64 = 0.0;
            for ll in 0..8 {
                let f = mu * r as f64 / l as f64 - (ll as f64 * p.m() as f64 / 8.0) / p.n as f64;
                worst = worst.max(w.spectrum_numeric(f).abs());
            }
            assert!(
                worst < 1e-4 * pass,
                "alias r={r}: leakage {worst:.3e} vs passband {pass:.3e}"
            );
        }
    }

    #[test]
    fn prolate_taps_lie_on_the_grid_exactly() {
        let p = params();
        let w = Window::new(WindowKind::ProlateSinc, &p);
        // Tap arguments i − jσ are multiples of 1/n_µ, so linear
        // interpolation in the taper never actually interpolates: the taps
        // must be symmetric like the underlying DPSS.
        let row = w.taps_row(0);
        let bl = w.conv_width() * w.segments();
        let t_support = ((w.conv_width() - w.mu_parts().1) * w.segments()) as f64;
        for i in 0..bl {
            let mirror = t_support - i as f64;
            if mirror >= 0.0 && mirror.fract() == 0.0 && (mirror as usize) < bl {
                let a = row[i].abs();
                let b = row[mirror as usize].abs();
                assert!((a - b).abs() < 1e-9 * (1.0 + a), "i={i}");
            }
        }
    }

    #[test]
    fn prolate_fractional_hop_grid_alignment() {
        // µ = 8/7 ⇒ σ = 7L/8: tap arguments i − jσ land on the 1/8 grid.
        // The j-th row must equal the j=0 row's continuous window shifted
        // by exactly jσ — check by comparing overlapping samples through
        // eval_time (which for ProlateSinc reads the shared 1/n_µ grid).
        let p = SoiParams {
            n: 7 * (1 << 7) * 8,
            procs: 1,
            segments_per_proc: 8,
            mu: Rational::new(8, 7),
            conv_width: 24,
        };
        p.validate().unwrap();
        let w = Window::new(WindowKind::ProlateSinc, &p);
        let l = p.total_segments();
        let sigma = 7.0 * l as f64 / 8.0;
        for j in [1usize, 3, 7] {
            let row = w.taps_row(j);
            for i in (0..p.conv_width * l).step_by(13) {
                let expect = w.eval_time(i as f64 - j as f64 * sigma);
                assert!(
                    (row[i] - expect).abs() < 1e-12,
                    "j={j} i={i}: {:?} vs {:?}",
                    row[i],
                    expect
                );
            }
        }
    }

    #[test]
    fn prolate_beats_gaussian_stopband_at_paper_params() {
        // µ = 8/7, B = 72 — the paper's evaluation design point, where the
        // Gaussian window is the weakest. The prolate taper must be at
        // least 100× better at the first alias.
        let p = SoiParams {
            n: 7 * (1 << 9) * 8,
            procs: 1,
            segments_per_proc: 8,
            mu: Rational::new(8, 7),
            conv_width: 72,
        };
        p.validate().unwrap();
        let l = p.total_segments();
        let mu = p.mu.as_f64();
        let leak = |kind: WindowKind| {
            let w = Window::new(kind, &p);
            let pass = w.spectrum_numeric(w.center_frequency()).abs();
            let mut worst: f64 = 0.0;
            for ll in 0..8 {
                let f = mu / l as f64 - (ll as f64 * p.m() as f64 / 8.0) / p.n as f64;
                worst = worst.max(w.spectrum_numeric(f).abs());
            }
            worst / pass
        };
        let gauss = leak(WindowKind::GaussianSinc);
        let prolate = leak(WindowKind::ProlateSinc);
        assert!(
            prolate < gauss / 100.0,
            "prolate {prolate:.3e} vs gaussian {gauss:.3e}"
        );
        assert!(prolate < 1e-9, "prolate leak {prolate:.3e}");
    }

    #[test]
    fn kaiser_window_also_has_deep_stopband() {
        let p = params();
        let w = Window::new(WindowKind::KaiserSinc, &p);
        let l = p.total_segments();
        let mu = p.mu.as_f64();
        let pass = w.spectrum_numeric(w.center_frequency()).abs();
        let alias = w.spectrum_numeric(mu / l as f64 - 0.5 / l as f64).abs();
        assert!(alias < 1e-4 * pass, "alias {alias:.3e} vs pass {pass:.3e}");
    }

    #[test]
    fn demod_matches_spectrum_inverse() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let sigma = p.total_segments() as f64 / p.mu.as_f64();
        let d = w.demod();
        assert_eq!(d.len(), p.m());
        for l in [0usize, 3, p.m() / 2, p.m() - 1] {
            let f = -(l as f64) / p.n as f64;
            let what = w.spectrum_numeric(f);
            let expect = c64::real(sigma) / what;
            assert!(
                (d[l] - expect).abs() < 1e-9 * expect.abs(),
                "l={l}: {:?} vs {:?}",
                d[l],
                expect
            );
        }
    }

    #[test]
    fn demod_modes_agree_to_truncation_level() {
        let p = params();
        let a = Window::with_demod_mode(WindowKind::GaussianSinc, &p, DemodMode::Analytic);
        let n = Window::with_demod_mode(WindowKind::GaussianSinc, &p, DemodMode::Numeric);
        for l in (0..p.m()).step_by(97) {
            let rel = (a.demod()[l] - n.demod()[l]).abs() / n.demod()[l].abs();
            assert!(rel < 1e-3, "l={l}: rel {rel:.3e}");
        }
    }

    #[test]
    #[should_panic(expected = "no closed-form spectrum")]
    fn kaiser_analytic_demod_rejected() {
        let p = params();
        let _ = Window::with_demod_mode(WindowKind::KaiserSinc, &p, DemodMode::Analytic);
    }

    #[test]
    fn metadata() {
        let p = params();
        let w = Window::new(WindowKind::GaussianSinc, &p);
        assert_eq!(w.kind(), WindowKind::GaussianSinc);
        assert_eq!(w.distinct_taps(), 2 * 16 * 8);
        assert_eq!(w.segments(), 8);
        assert_eq!(w.conv_width(), 16);
        assert_eq!(w.mu_parts(), (2, 1));
        assert!(w.passband_halfwidth() > 0.0);
        assert!(w.center_frequency() < 0.0);
    }
}
