//! Phase-boundary invariants for algorithm-based fault tolerance (ABFT).
//!
//! The SOI pipeline moves data through four compute phases (convolution,
//! segment FFT, all-to-all, recovery FFT) whose intermediate buffers live in
//! memory for milliseconds to seconds — long enough for a particle strike or
//! a marginal DIMM to flip a bit that the link layer's wire checksums never
//! see, because the corruption happens *before* send-side framing or *after*
//! receive-side verification. This module supplies the cheap mathematical
//! invariants that catch such silent data corruption (SDC) at each phase
//! boundary:
//!
//! * **Energy balance** ([`parseval_ok`]) — an unnormalized `L`-point DFT
//!   multiplies total energy by exactly `L` (Parseval), so
//!   `E_out ≈ L·E_in` within [`energy_tolerance`] is a one-pass `O(n)`
//!   check over a phase that costs `O(n log n)`.
//! * **Spectral checksums** ([`encode_checksum`] / [`decode_checksum`]) —
//!   per-segment FNV-1a checksums ([`soifft_cluster::checksum`]) computed by
//!   the *sender* ride alongside payloads through the all-to-all as one
//!   extra complex element per segment, and are re-verified by the receiver
//!   after reassembly. This covers the window between the link layer's
//!   receive check and the consumer actually reading the buffer.
//! * **Linearity probe** ([`linearity_probe`]) — a seeded random-vector
//!   check that `F(x + αr) = F(x) + αF(r)`, which exercises the FFT
//!   machinery itself (twiddle tables, plan state) rather than one buffer.
//!
//! What to do on a failed invariant is the pipeline's decision, expressed
//! as a [`ValidationPolicy`]: `Off` skips the checks, `CheckOnly` surfaces
//! [`soifft_cluster::CommError::SilentCorruption`] immediately, and
//! `Recover` re-executes only the flagged segment or phase on the owning
//! rank (bounded by [`RETRY_BUDGET`]) before escalating.

use soifft_fft::Plan;
use soifft_num::c64;
use soifft_num::error::rel_l2;

pub use crate::accuracy::energy_tolerance;
pub use soifft_cluster::ValidationPolicy;

/// Localized re-execution attempts a `Recover` pipeline makes per detected
/// corruption before escalating to
/// [`soifft_cluster::CommError::SilentCorruption`]. Two retries distinguish
/// a transient flip (first re-execution already yields a clean invariant)
/// from stuck-at corruption (every re-execution re-fails), without letting a
/// permanently faulty rank spin.
pub const RETRY_BUDGET: u32 = 2;

/// Relative tolerance of the [`linearity_probe`]: the probe compares two
/// `O(ε·log n)`-accurate transforms of `O(1)`-magnitude data, so anything
/// below ~1e-9 that still clears roundoff by orders of magnitude works.
pub const PROBE_TOLERANCE: f64 = 1e-11;

/// Total energy `Σ |z|²` of a buffer — the quantity conserved (up to the
/// transform length factor) by an unnormalized DFT.
pub fn energy(data: &[c64]) -> f64 {
    data.iter().map(|z| z.norm_sqr()).sum()
}

/// Parseval check across an unnormalized `len`-point DFT (or a batch of
/// them over the same total data): accepts when the post-transform energy
/// `e_out` matches `len · e_in` to within relative tolerance `tol`.
/// A non-finite `e_out` (a flip that produced NaN/Inf) always rejects.
pub fn parseval_ok(e_in: f64, e_out: f64, len: usize, tol: f64) -> bool {
    let expect = e_in * len as f64;
    let scale = expect.abs().max(f64::MIN_POSITIVE);
    e_out.is_finite() && ((e_out - expect) / scale).abs() <= tol
}

/// Packs an FNV-1a checksum into a complex element so it can travel through
/// the all-to-all alongside the payload it covers. The bit pattern is
/// preserved exactly (`f64::from_bits`), never interpreted as a number —
/// the value may be NaN or subnormal, which is fine because nothing does
/// arithmetic on it.
pub fn encode_checksum(sum: u64) -> c64 {
    c64::new(f64::from_bits(sum), 0.0)
}

/// Recovers the checksum packed by [`encode_checksum`].
pub fn decode_checksum(tag: c64) -> u64 {
    tag.re.to_bits()
}

/// Verifies `F(x + αr) = F(x) + αF(r)` on seeded pseudo-random vectors —
/// true for any correctly functioning linear transform regardless of the
/// data the pipeline is actually processing. Unlike the buffer checks above
/// this exercises the FFT *machinery* (twiddle tables, plan dispatch), so a
/// corrupted plan constant is caught even when every payload checksum
/// matches. Returns `true` when the identity holds to [`PROBE_TOLERANCE`]
/// (or `tol`, if larger is needed for exotic lengths).
pub fn linearity_probe(plan: &Plan, seed: u64, tol: f64) -> bool {
    let n = plan.len();
    if n == 0 {
        return true;
    }
    let mut state = seed;
    let mut draw = || {
        let u = splitmix(&mut state);
        // Map the top 53 bits onto [-1, 1).
        (u >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let x: Vec<c64> = (0..n).map(|_| c64::new(draw(), draw())).collect();
    let r: Vec<c64> = (0..n).map(|_| c64::new(draw(), draw())).collect();
    // A fixed irrational, non-real α so the superposition exercises both
    // components and no term degenerates to zero.
    let alpha = c64::new(0.618_033_988_749_894_9, -0.381_966_011_250_105_2);

    let mut combined: Vec<c64> = x.iter().zip(&r).map(|(&a, &b)| a + alpha * b).collect();
    let mut fx = x;
    let mut fr = r;
    plan.forward(&mut combined);
    plan.forward(&mut fx);
    plan.forward(&mut fr);
    let superposed: Vec<c64> = fx.iter().zip(&fr).map(|(&a, &b)| a + alpha * b).collect();
    rel_l2(&combined, &superposed) <= tol
}

/// SplitMix64 step — tiny seeded generator for the probe vectors. Kept
/// local so the probe's stream can never entangle with the fault
/// injector's RNG streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_cluster::checksum;

    #[test]
    fn parseval_accepts_a_healthy_fft() {
        let n = 1 << 9;
        let plan = Plan::new(n);
        let mut data: Vec<c64> = (0..n)
            .map(|i| c64::new((0.11 * i as f64).cos(), (0.07 * i as f64).sin()))
            .collect();
        let e_in = energy(&data);
        plan.forward(&mut data);
        assert!(parseval_ok(e_in, energy(&data), n, energy_tolerance(n)));
    }

    #[test]
    fn parseval_rejects_a_high_bit_flip() {
        let n = 1 << 9;
        let plan = Plan::new(n);
        let mut data: Vec<c64> = (0..n)
            .map(|i| c64::new((0.11 * i as f64).cos(), (0.07 * i as f64).sin()))
            .collect();
        let e_in = energy(&data);
        plan.forward(&mut data);
        // Flip the default injection bit (62: top exponent bit) in one word.
        data[n / 3].re = f64::from_bits(data[n / 3].re.to_bits() ^ (1u64 << 62));
        assert!(!parseval_ok(e_in, energy(&data), n, energy_tolerance(n)));
    }

    #[test]
    fn parseval_rejects_nan_energy() {
        assert!(!parseval_ok(1.0, f64::NAN, 8, 1e-9));
        assert!(!parseval_ok(1.0, f64::INFINITY, 8, 1e-9));
    }

    #[test]
    fn checksum_tag_round_trips_any_bit_pattern() {
        for sum in [
            0u64,
            u64::MAX,
            0x7FF8_0000_0000_0001,
            checksum(&[c64::new(1.5, -2.5)]),
        ] {
            assert_eq!(decode_checksum(encode_checksum(sum)), sum);
        }
    }

    #[test]
    fn linearity_probe_passes_on_a_healthy_plan() {
        for n in [64, 384, 1 << 10] {
            let plan = Plan::new(n);
            assert!(linearity_probe(&plan, 0xDEC0DE, PROBE_TOLERANCE), "n={n}");
        }
    }

    #[test]
    fn linearity_probe_is_deterministic_per_seed() {
        // Same seed must draw the same vectors: run twice and compare the
        // derived energies via the public surface (probe outcome plus a
        // directly re-drawn stream).
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..64 {
            assert_eq!(splitmix(&mut a), splitmix(&mut b));
        }
    }

    #[test]
    fn validation_policy_reexport_is_usable() {
        assert!(!ValidationPolicy::Off.is_on());
        assert!(ValidationPolicy::CheckOnly.is_on());
        assert!(ValidationPolicy::Recover.recovers());
    }
}
