//! Single-address-space SOI FFT.
//!
//! Runs the full factorization of Eq. 1 without a cluster: the all-to-all
//! becomes a local transpose. This is the correctness anchor (tested
//! against the direct DFT and the plain FFT library), the quickstart entry
//! point, and the kernel that node-local benches exercise.

use std::sync::Arc;

use soifft_fft::batch;
use soifft_fft::{Plan, SixStepFft, SixStepVariant};
use soifft_num::c64;
use soifft_num::transpose::transpose;
use soifft_par::Pool;

use crate::conv::{convolve, ConvStrategy};
use crate::params::{SoiError, SoiParams};
use crate::window::{Window, WindowKind};

/// A planned single-node SOI transform.
///
/// # Example
///
/// ```
/// use soifft_core::{Rational, SoiFftLocal};
/// use soifft_num::c64;
///
/// // 4096 points, 8 segments, µ = 2, width-16 window.
/// let soi = SoiFftLocal::new(4096, 8, Rational::new(2, 1), 16).unwrap();
/// let x: Vec<c64> = (0..4096)
///     .map(|i| c64::new((0.01 * i as f64).sin(), 0.0))
///     .collect();
/// let spectrum = soi.forward(&x);
/// // Round-trip through the inverse:
/// let back = soi.inverse(&spectrum);
/// let err = soifft_num::error::rel_l2(&back, &x);
/// assert!(err < 1e-6);
/// ```
pub struct SoiFftLocal {
    params: SoiParams,
    window: Arc<Window>,
    plan_l: Plan,
    segment_fft: SixStepFft,
    /// Demodulation diagonal padded to `M'` (zeros beyond `M`, which the
    /// projection discards anyway), fused into the segment FFT.
    demod_scale: Vec<c64>,
    strategy: ConvStrategy,
    pool: Pool,
}

impl SoiFftLocal {
    /// Plans a transform of length `n` split into `l` segments, with
    /// oversampling `mu` and convolution width `b`, using the default
    /// Gaussian-sinc window and buffered convolution.
    pub fn new(
        n: usize,
        l: usize,
        mu: crate::params::Rational,
        b: usize,
    ) -> Result<Self, SoiError> {
        let params = SoiParams {
            n,
            procs: 1,
            segments_per_proc: l,
            mu,
            conv_width: b,
        };
        Self::from_params(params, WindowKind::GaussianSinc)
    }

    /// Plans from explicit parameters (must have `procs == 1`; use
    /// [`crate::SoiFft`] for the distributed case).
    pub fn from_params(params: SoiParams, kind: WindowKind) -> Result<Self, SoiError> {
        assert_eq!(params.procs, 1, "SoiFftLocal is single-rank; use SoiFft");
        params.validate()?;
        let window = Arc::new(Window::new(kind, &params));
        let m = params.m();
        let m_prime = params.m_prime();
        let mut demod_scale = vec![c64::ZERO; m_prime];
        demod_scale[..m].copy_from_slice(&window.demod()[..m]);
        Ok(SoiFftLocal {
            plan_l: Plan::new(params.total_segments()),
            segment_fft: SixStepFft::new(m_prime, SixStepVariant::Fused),
            demod_scale,
            window,
            params,
            strategy: ConvStrategy::InterchangedBuffered,
            pool: Pool::serial(),
        })
    }

    /// Selects the convolution strategy (default: buffered interchange).
    pub fn with_strategy(mut self, strategy: ConvStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the intra-node pool (default: serial).
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The planned parameters.
    pub fn params(&self) -> &SoiParams {
        &self.params
    }

    /// The planned window (shared; e.g. for accuracy estimation).
    pub fn window(&self) -> &Arc<Window> {
        &self.window
    }

    /// Computes `y = F_N x` (forward DFT, unnormalized) via the SOI
    /// factorization. `input.len() == n`.
    pub fn forward(&self, input: &[c64]) -> Vec<c64> {
        let p = &self.params;
        assert_eq!(input.len(), p.n, "input length != N");
        let l = p.total_segments();
        let m = p.m();
        let m_prime = p.m_prime();

        // Ghost: single rank wraps around to its own start (circular DFT).
        let ghost = p.ghost_len();
        let mut input_ext = Vec::with_capacity(p.n + ghost);
        input_ext.extend_from_slice(input);
        input_ext.extend_from_slice(&input[..ghost]);

        // Convolution-and-oversampling: M' blocks of L.
        let mut u = vec![c64::ZERO; m_prime * l];
        convolve(
            p,
            &self.window,
            self.strategy,
            &input_ext,
            &mut u,
            &self.pool,
        );

        // Block DFTs (I_{M'} ⊗ F_L).
        batch::forward_rows_parallel(&self.plan_l, &self.pool, &mut u);

        // "All-to-all" = local stride permutation: z[s·M' + m] = v_m[s].
        let mut z = vec![c64::ZERO; m_prime * l];
        transpose(&u, &mut z, m_prime, l);

        // Per segment: F_{M'} with fused demodulation, then projection.
        let mut y = vec![c64::ZERO; p.n];
        let mut aux = vec![c64::ZERO; m_prime];
        for s in 0..l {
            let seg = &mut z[s * m_prime..(s + 1) * m_prime];
            self.segment_fft
                .forward_scaled(seg, &mut aux, &self.demod_scale);
            y[s * m..(s + 1) * m].copy_from_slice(&seg[..m]);
        }
        y
    }

    /// Computes only the requested *segments of interest* — the capability
    /// the algorithm is named for: each segment's recovery (`F_{M'}` +
    /// demodulation) is independent, so a band analysis that needs `k` of
    /// the `L` segments pays the convolution once plus only `k/L` of the
    /// recovery work. Returns `(segment_id, bins)` pairs, where `bins` are
    /// the `M` spectrum values `y[s·M .. (s+1)·M)`.
    ///
    /// # Panics
    /// Panics if a segment id is out of range or repeated.
    pub fn forward_segments(&self, input: &[c64], segments: &[usize]) -> Vec<(usize, Vec<c64>)> {
        let p = &self.params;
        assert_eq!(input.len(), p.n, "input length != N");
        let l = p.total_segments();
        let m = p.m();
        let m_prime = p.m_prime();
        {
            let mut seen = vec![false; l];
            for &s in segments {
                assert!(s < l, "segment {s} out of range (L = {l})");
                assert!(!seen[s], "segment {s} requested twice");
                seen[s] = true;
            }
        }

        let ghost = p.ghost_len();
        let mut input_ext = Vec::with_capacity(p.n + ghost);
        input_ext.extend_from_slice(input);
        input_ext.extend_from_slice(&input[..ghost]);

        let mut u = vec![c64::ZERO; m_prime * l];
        convolve(
            p,
            &self.window,
            self.strategy,
            &input_ext,
            &mut u,
            &self.pool,
        );
        batch::forward_rows_parallel(&self.plan_l, &self.pool, &mut u);

        // Gather only the wanted segments' time series (no full transpose).
        let mut out = Vec::with_capacity(segments.len());
        let mut aux = vec![c64::ZERO; m_prime];
        for &s in segments {
            let mut z: Vec<c64> = u.chunks_exact(l).map(|block| block[s]).collect();
            self.segment_fft
                .forward_scaled(&mut z, &mut aux, &self.demod_scale);
            z.truncate(m);
            out.push((s, z));
        }
        out
    }

    /// Computes `x = F_N⁻¹ y` (normalized by `1/N`) via conjugation around
    /// the forward SOI transform, so `inverse(forward(x)) ≈ x` to the
    /// window's accuracy.
    pub fn inverse(&self, input: &[c64]) -> Vec<c64> {
        let conjugated: Vec<c64> = input.iter().map(|z| z.conj()).collect();
        let mut x = self.forward(&conjugated);
        let s = 1.0 / self.params.n as f64;
        for z in x.iter_mut() {
            *z = z.conj() * s;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Rational;
    use soifft_num::error::{rel_l2, rel_linf};

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64::new(
                    (0.05 * t).sin() + 0.5 * (0.31 * t).cos(),
                    0.3 * (0.11 * t).sin() - 0.2,
                )
            })
            .collect()
    }

    fn reference_fft(x: &[c64]) -> Vec<c64> {
        let plan = Plan::new(x.len());
        let mut y = x.to_vec();
        plan.forward(&mut y);
        y
    }

    #[test]
    fn matches_fft_with_strong_window() {
        // µ = 2, B = 24: stopband ≈ e^{−27} ⇒ near machine precision.
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 24).unwrap();
        let x = signal(n);
        let got = soi.forward(&x);
        let want = reference_fft(&x);
        let err = rel_l2(&got, &want);
        assert!(err < 1e-9, "err={err:.3e}");
    }

    #[test]
    fn moderate_window_moderate_error() {
        // µ = 2, B = 16 ⇒ ~1e−7 scale error.
        let n = 1 << 11;
        let soi = SoiFftLocal::new(n, 16, Rational::new(2, 1), 16).unwrap();
        let x = signal(n);
        let err = rel_l2(&soi.forward(&x), &reference_fft(&x));
        assert!(err < 1e-5, "err={err:.3e}");
    }

    #[test]
    fn paper_mu_eight_sevenths() {
        // The evaluation's µ = 8/7 with a width-72 window on N = 7·2^9·8.
        let l = 8;
        let m = 7 * (1 << 9);
        let n = l * m;
        let soi = SoiFftLocal::new(n, l, Rational::new(8, 7), 72).unwrap();
        let x = signal(n);
        let err = rel_l2(&soi.forward(&x), &reference_fft(&x));
        // Our Gaussian-sinc design reaches ~1e−5 at these parameters
        // (DESIGN.md §2); the paper's custom windows do better in absolute
        // terms but the algorithmic structure is identical.
        assert!(err < 1e-4, "err={err:.3e}");
    }

    #[test]
    fn mu_five_fourths_is_much_more_accurate() {
        let l = 8;
        let m = 4 * (1 << 7);
        let n = l * m; // 4096
        let soi = SoiFftLocal::new(n, l, Rational::new(5, 4), 72).unwrap();
        let x = signal(n);
        let err = rel_l2(&soi.forward(&x), &reference_fft(&x));
        assert!(err < 1e-8, "err={err:.3e}");
    }

    #[test]
    fn impulse_and_tone_inputs() {
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 24).unwrap();
        // Impulse → flat spectrum.
        let mut x = vec![c64::ZERO; n];
        x[17] = c64::ONE;
        let got = soi.forward(&x);
        let want = reference_fft(&x);
        assert!(rel_linf(&got, &want) < 1e-8);
        // Pure tone → single bin (tests segment boundaries: bin in the
        // middle of segment 5).
        let k = 5 * (n / 8) + n / 16;
        let x: Vec<c64> = (0..n)
            .map(|i| c64::root_of_unity(n, -((i * k) as i64)))
            .collect();
        let got = soi.forward(&x);
        assert!(
            (got[k].re - n as f64).abs() < 1e-5 * n as f64,
            "{:?}",
            got[k]
        );
        let off_energy: f64 = got
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != k)
            .map(|(_, v)| v.norm_sqr())
            .sum();
        assert!(off_energy.sqrt() < 1e-5 * n as f64, "{off_energy}");
    }

    #[test]
    fn strategies_give_same_transform() {
        let n = 1 << 10;
        let x = signal(n);
        let base = SoiFftLocal::new(n, 8, Rational::new(2, 1), 16)
            .unwrap()
            .forward(&x);
        for strategy in ConvStrategy::ALL {
            let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 16)
                .unwrap()
                .with_strategy(strategy);
            let got = soi.forward(&x);
            assert!(rel_linf(&got, &base) < 1e-12, "{strategy:?}");
        }
    }

    #[test]
    fn pool_does_not_change_results() {
        let n = 1 << 10;
        let x = signal(n);
        let serial = SoiFftLocal::new(n, 8, Rational::new(2, 1), 16)
            .unwrap()
            .forward(&x);
        let parallel = SoiFftLocal::new(n, 8, Rational::new(2, 1), 16)
            .unwrap()
            .with_pool(Pool::new(3))
            .forward(&x);
        assert!(rel_linf(&parallel, &serial) < 1e-13);
    }

    #[test]
    fn prolate_window_recovers_mkl_class_accuracy_at_paper_params() {
        // µ = 8/7, B = 72 (the paper's evaluation setting): the Gaussian
        // design reaches ~1e−5 relative error, the prolate (optimal
        // concentration) design should be ~1e−9 or better — comparable to
        // what the paper reports for its custom windows.
        let l = 8;
        let m = 7 * (1 << 9);
        let n = l * m;
        let params = SoiParams {
            n,
            procs: 1,
            segments_per_proc: l,
            mu: Rational::new(8, 7),
            conv_width: 72,
        };
        let x = signal(n);
        let want = reference_fft(&x);
        let gauss = SoiFftLocal::from_params(params, WindowKind::GaussianSinc)
            .unwrap()
            .forward(&x);
        let prolate = SoiFftLocal::from_params(params, WindowKind::ProlateSinc)
            .unwrap()
            .forward(&x);
        let e_gauss = rel_l2(&gauss, &want);
        let e_prolate = rel_l2(&prolate, &want);
        assert!(
            e_prolate < e_gauss / 100.0,
            "prolate {e_prolate:.3e} vs gaussian {e_gauss:.3e}"
        );
        assert!(e_prolate < 1e-8, "prolate end-to-end error {e_prolate:.3e}");
    }

    #[test]
    fn kaiser_window_works_end_to_end() {
        let n = 1 << 10;
        let params = SoiParams {
            n,
            procs: 1,
            segments_per_proc: 8,
            mu: Rational::new(2, 1),
            conv_width: 20,
        };
        let soi = SoiFftLocal::from_params(params, WindowKind::KaiserSinc).unwrap();
        let x = signal(n);
        let err = rel_l2(&soi.forward(&x), &reference_fft(&x));
        assert!(err < 1e-6, "err={err:.3e}");
    }

    #[test]
    fn forward_segments_matches_full_transform() {
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 20).unwrap();
        let x = signal(n);
        let full = soi.forward(&x);
        let m = n / 8;
        for wanted in [vec![0usize], vec![3, 5], vec![7, 0, 4], (0..8).collect()] {
            let partial = soi.forward_segments(&x, &wanted);
            assert_eq!(partial.len(), wanted.len());
            for (s, bins) in &partial {
                assert_eq!(bins.len(), m);
                assert!(
                    rel_linf(bins, &full[s * m..(s + 1) * m]) < 1e-12,
                    "segment {s}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_segments_rejects_bad_ids() {
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 16).unwrap();
        let x = signal(n);
        soi.forward_segments(&x, &[8]);
    }

    #[test]
    fn inverse_round_trips_through_forward() {
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 24).unwrap();
        let x = signal(n);
        let y = soi.forward(&x);
        let back = soi.inverse(&y);
        let err = rel_l2(&back, &x);
        assert!(err < 1e-8, "round trip err={err:.3e}");
        // And inverse alone matches the reference inverse DFT.
        let mut want = x.clone();
        let plan = Plan::new(n);
        plan.inverse(&mut want);
        let got = soi.inverse(&x);
        assert!(rel_l2(&got, &want) < 1e-8);
    }

    #[test]
    fn invalid_params_are_rejected() {
        // L does not divide N.
        assert!(SoiFftLocal::new(1000, 7, Rational::new(2, 1), 8).is_err());
        // µ ≤ 1.
        assert!(SoiFftLocal::new(1024, 8, Rational::new(1, 1), 8).is_err());
    }

    #[test]
    fn accessors() {
        let soi = SoiFftLocal::new(1 << 10, 8, Rational::new(2, 1), 16).unwrap();
        assert_eq!(soi.params().n, 1 << 10);
        assert_eq!(soi.window().segments(), 8);
    }
}
