//! Rank body for TCP-mesh SOI runs.
//!
//! The [`TcpSupervisor`](soifft_cluster::transport::tcp::TcpSupervisor)
//! runs each rank as a thread over a real TCP mesh (loopback in the
//! chaos tests, separate hosts in the two-terminal
//! `examples/tcp_run.rs` demo). This module is the matching rank body:
//! [`run_tcp_rank`] regenerates the seeded input, scatters its local
//! share, and drives [`SoiFft::try_forward_recoverable`], mapping a
//! pipeline failure back to the typed [`CommError`] the supervisor
//! classifies — a partition surfaces here as `Err(PeerDown)` on every
//! rank, which is exactly the signal that consumes a restart and
//! respawns the mesh into a bumped generation.
//!
//! Input regeneration and checkpoint resume mirror
//! [`procrun`](crate::procrun) (the multi-process sibling), so a TCP
//! run recovered through a respawn is bit-identical to its fault-free
//! twin — the property `tests/tcp_chaos.rs` asserts.

use soifft_cluster::{Comm, CommError, ExchangePolicy, RecoveryCtx};
use soifft_num::c64;

use crate::params::SoiParams;
use crate::pipeline::{scatter_input, SoiFft};
use crate::procrun::seeded_input;

/// One rank's SOI forward transform over an established mesh: plan,
/// scatter the seeded input, run the recoverable pipeline, return the
/// local spectrum.
///
/// # Errors
/// [`CommError::InvalidArgument`] for unbuildable parameters, otherwise
/// whatever typed failure the pipeline surfaced (`PeerDown` under a
/// partition that exhausted the staleness budget, `PeerFailed` after a
/// crash, `Timeout` at a deadline).
pub fn run_tcp_rank(
    comm: &mut Comm,
    ctx: &RecoveryCtx,
    params: &SoiParams,
    seed: u64,
) -> Result<Vec<c64>, CommError> {
    let plan = SoiFft::new(*params).map_err(|_| CommError::InvalidArgument {
        what: "SOI parameters rejected by the planner",
    })?;
    let input = seeded_input(params.n, seed);
    let local = scatter_input(&input, params.procs).swap_remove(comm.rank());
    plan.try_forward_recoverable(comm, &local, &ExchangePolicy::default(), ctx)
        .map_err(|e| e.error)
}
