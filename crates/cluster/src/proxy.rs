//! The §5.1 reverse-communication MPI proxy.
//!
//! On Stampede, Xeon Phi ranks could not drive InfiniBand efficiently for
//! long messages; the paper routes them through a *proxy*: a dedicated
//! host core that pulls data out of coprocessor memory (DMA over PCIe),
//! pushes it to the wire (RDMA), and handshakes with the coprocessor
//! through a shared queue — with the PCIe pulls *pipelined* against the
//! wire pushes chunk by chunk.
//!
//! [`ProxyCore`] is that dedicated core: a background worker owned by the
//! rank. [`Comm::send_via_proxy`] splits a message into chunks and
//! enqueues, per chunk, a staging copy (the "DMA") followed by the actual
//! send (the "RDMA") — the compute thread returns immediately and chunk
//! `k+1`'s staging overlaps chunk `k`'s delivery, exactly the §5.1
//! pipeline. The receiver reassembles with
//! [`Comm::recv_proxied`].

use soifft_num::c64;
use soifft_par::WorkQueue;

use crate::{tags, Comm, Message};

/// A rank's dedicated proxy core (background staging/sending thread).
pub struct ProxyCore {
    queue: WorkQueue,
}

impl Default for ProxyCore {
    fn default() -> Self {
        Self::new()
    }
}

impl ProxyCore {
    /// Spawns the proxy worker.
    pub fn new() -> Self {
        ProxyCore {
            queue: WorkQueue::new("mpi-proxy"),
        }
    }

    /// Blocks until every enqueued transfer has been handed to the wire
    /// (the coprocessor-side "handshake complete" wait).
    pub fn flush(&self) {
        self.queue.drain();
    }
}

impl Comm {
    /// Sends `data` to `dst` through the proxy core: the payload is split
    /// into `chunk_elems`-element chunks, each staged (copied — the PCIe
    /// DMA stand-in) and forwarded on the proxy thread while this thread
    /// continues. Bytes are accounted immediately; call
    /// [`ProxyCore::flush`] (or drop the core) to guarantee delivery has
    /// been initiated before reusing buffers that alias the transfer.
    ///
    /// The receiver must use [`Comm::recv_proxied`] with the same total
    /// length.
    pub fn send_via_proxy(
        &mut self,
        proxy: &ProxyCore,
        dst: usize,
        tag: u64,
        data: Vec<c64>,
        chunk_elems: usize,
    ) {
        assert!(dst < self.size, "destination rank out of range");
        assert!(chunk_elems > 0, "chunk size must be positive");
        let bytes = (data.len() * std::mem::size_of::<c64>()) as u64;
        self.stats.add_bytes_sent(bytes);
        // A detached transport handle the proxy thread can push through
        // concurrently with this thread (both shipped backends provide
        // one; a hypothetical backend without concurrent senders gets
        // the staged chunks delivered inline instead).
        let sender = self.transport.async_sender(dst).map(std::sync::Arc::new);
        let src = self.rank;
        // Reserve the whole sequence range up front (staging happens on
        // this thread, delivery on the proxy thread). The proxied path is
        // the host-side RDMA pipeline and bypasses link-fault injection;
        // checksums are still stamped so mixed traffic verifies cleanly.
        let n_chunks = data.len().div_ceil(chunk_elems).max(1);
        let first_seq = self.next_seq;
        self.next_seq += n_chunks as u64;
        let verify = self.verify;
        let generation = self.generation;
        let mut offset = 0usize;
        let mut chunk_idx = 0u64;
        // One proxy job per chunk: stage (copy) then push to the wire.
        while offset < data.len() || (data.is_empty() && offset == 0) {
            let end = (offset + chunk_elems).min(data.len());
            let staged: Vec<c64> = data[offset..end].to_vec(); // "DMA"
            let checksum = if verify { crate::checksum(&staged) } else { 0 };
            let seq = first_seq + chunk_idx;
            chunk_idx += 1;
            let msg = Message {
                src,
                tag,
                seq,
                checksum,
                generation,
                data: staged,
            };
            match &sender {
                Some(tx) => {
                    let tx = std::sync::Arc::clone(tx);
                    proxy.queue.push(move || {
                        // "RDMA": hand the staged chunk to the interconnect.
                        tx.send(msg);
                    });
                }
                None => {
                    let _ = self.wire(dst, msg);
                }
            }
            if end == data.len() {
                break;
            }
            offset = end;
        }
    }

    /// Receives a proxied message of `total_elems` elements from `src`
    /// (reassembling the chunk stream in order).
    pub fn recv_proxied(&mut self, src: usize, tag: u64, total_elems: usize) -> Vec<c64> {
        let mut out = Vec::with_capacity(total_elems);
        while out.len() < total_elems {
            let chunk = self.recv(src, tag);
            out.extend_from_slice(&chunk);
        }
        assert_eq!(out.len(), total_elems, "chunk stream overshot");
        out
    }

    /// All-to-all routed through the proxy core (§5.1's long-message
    /// path): all ranks' chunks are staged/pushed by their proxy threads
    /// concurrently with the posting loop. Symmetric volumes assumed (as
    /// in [`Comm::all_to_all_chunked`]).
    pub fn all_to_all_proxied(
        &mut self,
        proxy: &ProxyCore,
        outgoing: Vec<Vec<c64>>,
        chunk_elems: usize,
    ) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        self.maybe_crash(crate::CrashSite::AllToAll);
        let t = self.stats.phase_start();
        let lens: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        for (dst, buf) in outgoing.into_iter().enumerate() {
            self.send_via_proxy(proxy, dst, tags::ALL_TO_ALL_CHUNK, buf, chunk_elems);
        }
        let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, slot) in incoming.iter_mut().enumerate() {
            *slot = self.recv_proxied(src, tags::ALL_TO_ALL_CHUNK, lens[src]);
        }
        proxy.flush();
        self.stats.phase_end("all-to-all", t);
        incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    #[test]
    fn proxied_send_recv_round_trip() {
        let out = Cluster::run(2, |comm| {
            let proxy = ProxyCore::new();
            if comm.rank() == 0 {
                let data: Vec<c64> = (0..100).map(|i| c64::new(i as f64, -2.0)).collect();
                comm.send_via_proxy(&proxy, 1, tags::USER, data, 7);
                proxy.flush();
                Vec::new()
            } else {
                comm.recv_proxied(0, tags::USER, 100)
            }
        });
        assert_eq!(out[1].len(), 100);
        for (i, v) in out[1].iter().enumerate() {
            assert_eq!(*v, c64::new(i as f64, -2.0));
        }
    }

    #[test]
    fn proxied_empty_message() {
        let out = Cluster::run(2, |comm| {
            let proxy = ProxyCore::new();
            if comm.rank() == 0 {
                comm.send_via_proxy(&proxy, 1, tags::USER, Vec::new(), 4);
                proxy.flush();
                0
            } else {
                comm.recv_proxied(0, tags::USER, 0).len()
            }
        });
        assert_eq!(out[1], 0);
    }

    #[test]
    fn proxied_all_to_all_matches_blocking() {
        let p = 4;
        let make = |r: usize| -> Vec<Vec<c64>> {
            (0..p)
                .map(|d| {
                    (0..23)
                        .map(|j| c64::new((r * p + d) as f64, j as f64))
                        .collect()
                })
                .collect()
        };
        let blocking = Cluster::run(p, |comm| comm.all_to_all(make(comm.rank())));
        let proxied = Cluster::run(p, |comm| {
            let proxy = ProxyCore::new();
            comm.all_to_all_proxied(&proxy, make(comm.rank()), 5)
        });
        assert_eq!(blocking, proxied);
    }

    #[test]
    fn bytes_accounted_once_per_payload() {
        let out = Cluster::run(2, |comm| {
            let proxy = ProxyCore::new();
            let data = vec![c64::ZERO; 64];
            let peer = 1 - comm.rank();
            comm.send_via_proxy(&proxy, peer, tags::USER, data, 8);
            proxy.flush();
            let got = comm.recv_proxied(peer, tags::USER, 64);
            (got.len(), comm.stats().total_bytes_sent())
        });
        for (len, bytes) in &out {
            assert_eq!(*len, 64);
            assert_eq!(*bytes, 64 * 16);
        }
    }
}
