//! Failure taxonomy and recovery primitives.
//!
//! The paper's SOI FFT exists to survive a 512-node cluster, where links
//! stall, ranks straggle, and nodes die mid-run. The seed runtime assumed a
//! perfect network: `recv` blocked forever, `send` panicked on a hung peer,
//! and one rank's panic poisoned the shared barrier so every survivor hung.
//! This module supplies the pieces that replace those assumptions:
//!
//! * [`CommError`] — the typed failure taxonomy every fallible operation
//!   returns ([`Timeout`](CommError::Timeout),
//!   [`PeerFailed`](CommError::PeerFailed),
//!   [`ChecksumMismatch`](CommError::ChecksumMismatch),
//!   [`Shutdown`](CommError::Shutdown)),
//! * [`RankOutcome`] — what the panic-capturing launcher
//!   ([`Cluster::run_with`](crate::Cluster::run_with)) reports per rank
//!   instead of propagating the first panic,
//! * [`RetryPolicy`] — the bounded-retransmit/exponential-backoff knobs of
//!   the link layer (how injected drops and corruption are absorbed),
//! * [`ExchangePolicy`] — deadline + round budget for the resilient
//!   collectives ([`Comm::all_to_all_resilient`](crate::Comm)),
//! * [`CancellableBarrier`] — a drop-in barrier that unblocks *all*
//!   survivors with [`CommError::PeerFailed`] when any rank dies, instead
//!   of deadlocking like `std::sync::Barrier`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use soifft_num::c64;

/// A typed communication failure.
///
/// Infallible wrappers ([`Comm::send`](crate::Comm::send),
/// [`Comm::recv`](crate::Comm::recv), [`Comm::barrier`](crate::Comm::barrier))
/// convert these into rank panics that the launcher captures as
/// [`RankOutcome::Err`]; the fallible API (`try_*`, `*_deadline`,
/// `*_resilient`) returns them directly.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommError {
    /// A deadline elapsed, or the link-layer retransmit budget was
    /// exhausted without a successful delivery.
    Timeout,
    /// A peer rank crashed (panicked or was fault-injected to crash); the
    /// collective cannot complete.
    PeerFailed {
        /// The rank that failed.
        rank: usize,
    },
    /// A peer rank's OS *process* died (exited, was `kill -9`ed, or
    /// stopped heartbeating past the staleness timeout) — the
    /// process-level sibling of [`PeerFailed`](CommError::PeerFailed),
    /// reported by the multi-process transport's failure detector.
    PeerDown {
        /// The rank whose process is gone.
        rank: usize,
    },
    /// A message arrived whose payload does not match its checksum and the
    /// retransmit budget could not produce a clean copy.
    ChecksumMismatch {
        /// The sender of the corrupt message.
        src: usize,
        /// The message tag.
        tag: u64,
    },
    /// The cluster is shutting down (peer endpoints dropped mid-operation).
    Shutdown,
    /// A recovery attempt needed a checkpoint snapshot that is missing or
    /// fails its integrity check — the run cannot resume from this rank's
    /// saved state.
    CheckpointCorrupt {
        /// The rank whose snapshot is unusable.
        rank: usize,
    },
    /// A phase invariant (Parseval energy balance, linearity probe, or a
    /// per-segment spectral checksum) detected silent data corruption in a
    /// compute buffer — corruption the link layer cannot see — and the
    /// validation policy either runs in report-only mode or exhausted its
    /// localized re-execution budget without producing clean data.
    SilentCorruption {
        /// The rank that owns the corrupt buffer.
        rank: usize,
        /// The local segment index the corruption was localized to, when
        /// the failing invariant has per-segment resolution (`None` for
        /// whole-phase invariants like the front-end energy balance).
        segment: Option<usize>,
    },
    /// A fallible (`try_*`) entry point was called with arguments it can
    /// never satisfy (e.g. a ghost region larger than the local buffer,
    /// a destination rank outside the cluster, or a zero retry budget).
    /// The infallible collectives keep their documented `assert!`s; the
    /// `try_*` family reports the same misuse as a typed error so a
    /// caller probing a configuration does not bring the rank down.
    InvalidArgument {
        /// What was wrong with the call.
        what: &'static str,
    },
    /// The operation was cancelled cooperatively before completing — a
    /// deadline-carrying caller (the serving layer) decided at a phase
    /// boundary that finishing the transform is pointless, and every rank
    /// of the collective took the same decision (see `soifft-core`'s
    /// `CancelGate`). Not a fault: no peer died, nothing timed out, and
    /// the cluster remains fully usable.
    Cancelled {
        /// The phase boundary at which the collective stopped.
        phase: &'static str,
    },
}

impl CommError {
    /// True for failures that a retry at a higher level may absorb
    /// (timeouts, corruption); false for structural failures (a dead peer,
    /// a shut-down cluster) where retrying cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CommError::Timeout | CommError::ChecksumMismatch { .. }
        )
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout => write!(f, "operation timed out (retransmit budget exhausted)"),
            CommError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            CommError::PeerDown { rank } => {
                write!(
                    f,
                    "peer rank {rank} process is down (exit or heartbeat loss)"
                )
            }
            CommError::ChecksumMismatch { src, tag } => {
                write!(
                    f,
                    "checksum mismatch on message from rank {src} (tag {tag})"
                )
            }
            CommError::Shutdown => write!(f, "cluster shut down mid-operation"),
            CommError::CheckpointCorrupt { rank } => {
                write!(f, "checkpoint for rank {rank} is missing or corrupt")
            }
            CommError::SilentCorruption { rank, segment } => match segment {
                Some(s) => write!(
                    f,
                    "silent data corruption detected on rank {rank}, segment {s}, \
                     beyond the repair budget"
                ),
                None => write!(
                    f,
                    "silent data corruption detected on rank {rank}, beyond the repair budget"
                ),
            },
            CommError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            CommError::Cancelled { phase } => {
                write!(f, "cancelled cooperatively at the {phase} boundary")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// One rank's result from a fault-tolerant launch
/// ([`Cluster::run_with`](crate::Cluster::run_with)).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RankOutcome<T> {
    /// The rank's closure returned normally.
    Ok(T),
    /// The rank aborted with a typed communication failure (e.g. a
    /// survivor unblocked by a peer's crash).
    Err(CommError),
    /// The rank was killed by an injected crash
    /// ([`FaultPlan::crash`](crate::FaultPlan::crash)).
    Crashed,
    /// The rank panicked for any other reason (the payload's message).
    Panicked(String),
}

impl<T> RankOutcome<T> {
    /// True when the rank completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, RankOutcome::Ok(_))
    }

    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            RankOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// The typed failure, if this rank ended in one.
    pub fn err(&self) -> Option<&CommError> {
        match self {
            RankOutcome::Err(e) => Some(e),
            _ => None,
        }
    }

    /// Unwraps the success value.
    ///
    /// # Panics
    /// Panics with a descriptive message if the rank did not complete.
    pub fn unwrap(self) -> T {
        match self {
            RankOutcome::Ok(v) => v,
            RankOutcome::Err(e) => panic!("rank failed: {e}"),
            RankOutcome::Crashed => panic!("rank crashed (fault injection)"),
            RankOutcome::Panicked(msg) => panic!("rank panicked: {msg}"),
        }
    }
}

/// Link-layer retransmit policy: how many delivery attempts a single
/// message gets and how the backoff between attempts grows.
///
/// Injected drops and corruptions consume attempts; each failed attempt
/// sleeps `base_backoff · 2^attempt` before the next (the classic
/// exponential backoff, scaled down to keep simulated runs fast). When the
/// budget is exhausted the send fails with [`CommError::Timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts per message (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff · 2^k`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff * 2u32.saturating_pow(attempt.min(16))
    }
}

/// Deadline and round budget for the resilient collectives.
///
/// Each *round* of [`Comm::all_to_all_resilient`](crate::Comm) gets
/// `deadline` of wall clock; if any rank reports failure in the
/// end-of-round consensus, every rank retries on fresh tags, up to
/// `max_rounds` rounds total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangePolicy {
    /// Wall-clock budget per exchange round (and per consensus step).
    pub deadline: Duration,
    /// Total rounds before the exchange fails with the last error.
    pub max_rounds: u32,
}

impl Default for ExchangePolicy {
    fn default() -> Self {
        ExchangePolicy {
            deadline: Duration::from_secs(5),
            max_rounds: 3,
        }
    }
}

/// Failure-detection and link-repair timing for the real-process and
/// TCP transports.
///
/// These knobs used to be hard-coded constants scattered through the
/// process supervisor; chaos tests tighten them to fail fast, slow CI
/// boxes loosen them to avoid false positives. They travel inside
/// [`ClusterConfig`](crate::ClusterConfig) so a single config object
/// describes the whole failure ladder: how often liveness is polled,
/// how often a rank beacons, how long silence is tolerated, and how
/// aggressively a broken link is re-dialed before the peer is declared
/// down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureDetection {
    /// How often the supervisor/detector re-checks liveness (child exit
    /// statuses, heartbeat staleness, link downtime).
    pub poll_period: Duration,
    /// Interval between liveness beacons on an otherwise idle link.
    pub heartbeat_interval: Duration,
    /// Continuous silence (no frames, no successful reconnect) after
    /// which a peer is declared [`CommError::PeerDown`]. This is the
    /// *staleness budget*: a partition shorter than this heals
    /// transparently, a longer one escalates to respawn.
    pub staleness_timeout: Duration,
    /// First re-dial delay after a connection drops.
    pub reconnect_base_backoff: Duration,
    /// Cap on the exponentially growing re-dial delay.
    pub reconnect_max_backoff: Duration,
}

impl Default for FailureDetection {
    fn default() -> Self {
        FailureDetection {
            poll_period: Duration::from_millis(5),
            heartbeat_interval: Duration::from_millis(50),
            staleness_timeout: Duration::from_millis(1000),
            reconnect_base_backoff: Duration::from_millis(10),
            reconnect_max_backoff: Duration::from_millis(250),
        }
    }
}

impl FailureDetection {
    /// The re-dial delay after `attempt` failed reconnects (0-based):
    /// `base · 2^attempt`, capped at `reconnect_max_backoff`.
    pub fn reconnect_backoff(&self, attempt: u32) -> Duration {
        (self.reconnect_base_backoff * 2u32.saturating_pow(attempt.min(16)))
            .min(self.reconnect_max_backoff)
    }
}

/// How the distributed pipelines defend against silent data corruption.
///
/// The link layer already checksums every wire message; this policy
/// governs the *compute-side* (algorithm-based fault tolerance) checks —
/// phase-boundary invariants like Parseval energy balance, a seeded
/// linearity probe, and per-segment spectral checksums carried through
/// the all-to-all (see `soifft-core`'s `verify` module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationPolicy {
    /// No invariant checks (the seed behaviour): a compute-side bit flip
    /// completes the run with a confidently wrong spectrum.
    #[default]
    Off,
    /// Compute every invariant and report the first violation as
    /// [`CommError::SilentCorruption`], without attempting repair.
    CheckOnly,
    /// Detect, localize, and repair: re-execute only the flagged
    /// segment/phase on the owning rank (using live inputs or the
    /// checkpoint store as the rollback source), escalating to
    /// [`CommError::SilentCorruption`] after a bounded retry budget.
    Recover,
}

impl ValidationPolicy {
    /// True when invariants are computed at all.
    pub fn is_on(&self) -> bool {
        !matches!(self, ValidationPolicy::Off)
    }

    /// True when detection is followed by localized re-execution.
    pub fn recovers(&self) -> bool {
        matches!(self, ValidationPolicy::Recover)
    }
}

/// FNV-1a over the bit representation of a complex buffer — the
/// per-message checksum used to detect injected corruption.
///
/// Mixes whole 64-bit words rather than bytes, across four independent
/// FNV lanes folded together at the end: xor-then-multiply by an odd
/// prime is injective per step, so any single-bit difference flips one
/// lane and therefore the digest, while the lanes hide the multiply
/// latency behind instruction-level parallelism. The ABFT layer hashes
/// every exchange frontier with this, so it sits on the validated hot
/// path.
pub fn checksum(data: &[c64]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut lanes = [SEED, SEED ^ 0x9E37, SEED ^ 0x79B9, SEED ^ 0xE3779B9];
    let mut pairs = data.chunks_exact(2);
    for pair in &mut pairs {
        lanes[0] = (lanes[0] ^ pair[0].re.to_bits()).wrapping_mul(PRIME);
        lanes[1] = (lanes[1] ^ pair[0].im.to_bits()).wrapping_mul(PRIME);
        lanes[2] = (lanes[2] ^ pair[1].re.to_bits()).wrapping_mul(PRIME);
        lanes[3] = (lanes[3] ^ pair[1].im.to_bits()).wrapping_mul(PRIME);
    }
    for z in pairs.remainder() {
        lanes[0] = (lanes[0] ^ z.re.to_bits()).wrapping_mul(PRIME);
        lanes[1] = (lanes[1] ^ z.im.to_bits()).wrapping_mul(PRIME);
    }
    lanes
        .into_iter()
        .fold(SEED, |h, lane| (h ^ lane).wrapping_mul(PRIME))
}

/// A barrier that can be cancelled when a rank dies.
///
/// Drop-in replacement for `std::sync::Barrier` in the cluster runtime:
/// [`wait`](CancellableBarrier::wait) returns `Ok(())` when all parties
/// arrive, or `Err(`[`CommError::PeerFailed`]`)` on every waiter (current
/// *and* future) once [`cancel`](CancellableBarrier::cancel) has been
/// called — survivors unblock instead of deadlocking.
pub struct CancellableBarrier {
    parties: usize,
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

struct BarrierInner {
    count: usize,
    generation: u64,
    cancelled_by: Option<usize>,
}

impl CancellableBarrier {
    /// A barrier for `parties` ranks.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "need at least one party");
        CancellableBarrier {
            parties,
            inner: Mutex::new(BarrierInner {
                count: 0,
                generation: 0,
                cancelled_by: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all parties arrive (`Ok`) or the barrier is cancelled
    /// (`Err(PeerFailed)` with the cancelling rank).
    pub fn wait(&self) -> Result<(), CommError> {
        let mut g = self.inner.lock().expect("barrier lock poisoned");
        if let Some(rank) = g.cancelled_by {
            return Err(CommError::PeerFailed { rank });
        }
        g.count += 1;
        if g.count == self.parties {
            g.count = 0;
            g.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = g.generation;
        loop {
            g = self.cv.wait(g).expect("barrier lock poisoned");
            if let Some(rank) = g.cancelled_by {
                return Err(CommError::PeerFailed { rank });
            }
            if g.generation != gen {
                return Ok(());
            }
        }
    }

    /// Like [`wait`](CancellableBarrier::wait) but gives up after
    /// `timeout`, withdrawing this party's arrival and returning
    /// [`CommError::Timeout`] — the deadline that keeps a barrier from
    /// ever hanging on a silent peer.
    pub fn wait_for(&self, timeout: Duration) -> Result<(), CommError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.lock().expect("barrier lock poisoned");
        if let Some(rank) = g.cancelled_by {
            return Err(CommError::PeerFailed { rank });
        }
        g.count += 1;
        if g.count == self.parties {
            g.count = 0;
            g.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = g.generation;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                // Withdraw the arrival so a later retry can't release the
                // barrier with a stale count — but only if this round is
                // still pending (a release may have raced the deadline).
                if g.generation == gen && g.count > 0 {
                    g.count -= 1;
                }
                return if g.generation != gen {
                    Ok(())
                } else {
                    Err(CommError::Timeout)
                };
            }
            let (guard, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .expect("barrier lock poisoned");
            g = guard;
            if let Some(rank) = g.cancelled_by {
                return Err(CommError::PeerFailed { rank });
            }
            if g.generation != gen {
                return Ok(());
            }
        }
    }

    /// Cancels the barrier on behalf of `rank` (a dying rank, from the
    /// launcher's panic handler): all current and future waiters get
    /// `Err(PeerFailed { rank })`.
    pub fn cancel(&self, rank: usize) {
        let mut g = self.inner.lock().expect("barrier lock poisoned");
        if g.cancelled_by.is_none() {
            g.cancelled_by = Some(rank);
        }
        self.cv.notify_all();
    }
}

/// Shared cluster health: which ranks have died. Checked by every blocking
/// primitive so survivors unblock promptly.
pub(crate) struct ClusterState {
    any_failed: AtomicBool,
    failed: Mutex<Vec<usize>>,
}

impl ClusterState {
    pub(crate) fn new() -> Self {
        ClusterState {
            any_failed: AtomicBool::new(false),
            failed: Mutex::new(Vec::new()),
        }
    }

    /// Records `rank` as dead.
    pub(crate) fn mark_failed(&self, rank: usize) {
        self.failed.lock().expect("state lock poisoned").push(rank);
        self.any_failed.store(true, Ordering::SeqCst);
    }

    /// First failed rank, if any (fast path: one atomic load).
    pub(crate) fn check(&self) -> Option<usize> {
        if !self.any_failed.load(Ordering::SeqCst) {
            return None;
        }
        self.failed
            .lock()
            .expect("state lock poisoned")
            .first()
            .copied()
    }

    /// True if `rank` specifically has failed.
    pub(crate) fn has_failed(&self, rank: usize) -> bool {
        self.any_failed.load(Ordering::SeqCst)
            && self
                .failed
                .lock()
                .expect("state lock poisoned")
                .contains(&rank)
    }
}

/// Panic payload used by the infallible wrappers to carry a typed error
/// through the unwind to the launcher.
pub(crate) struct CommFailure(pub(crate) CommError);

/// Panic payload of an injected rank crash.
pub(crate) struct InjectedCrash {
    #[allow(dead_code)] // read when formatting outcomes / future telemetry
    pub(crate) rank: usize,
}

/// Raises `e` as a rank-fatal unwind carrying the typed error (captured by
/// the launcher and reported as [`RankOutcome::Err`]).
///
/// `resume_unwind` rather than `panic_any`: the unwind is an expected,
/// typed control-flow path, so it must not trip the process panic hook
/// and spray a backtrace for every injected fault.
pub(crate) fn raise(e: CommError) -> ! {
    std::panic::resume_unwind(Box::new(CommFailure(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn checksum_detects_single_bit_flip() {
        let data: Vec<c64> = (0..64).map(|i| c64::new(i as f64, -(i as f64))).collect();
        let sum = checksum(&data);
        let mut bad = data.clone();
        bad[17].re = f64::from_bits(bad[17].re.to_bits() ^ 1);
        assert_ne!(sum, checksum(&bad));
        assert_eq!(sum, checksum(&data));
    }

    #[test]
    fn checksum_of_empty_is_stable() {
        assert_eq!(checksum(&[]), checksum(&[]));
    }

    #[test]
    fn barrier_releases_all_parties() {
        let b = Arc::new(CancellableBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Ok(()));
        }
    }

    #[test]
    fn cancelled_barrier_unblocks_waiters() {
        let b = Arc::new(CancellableBarrier::new(3));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.wait())
        };
        // Give the waiter time to block, then cancel on behalf of rank 2.
        std::thread::sleep(Duration::from_millis(20));
        b.cancel(2);
        assert_eq!(
            waiter.join().unwrap(),
            Err(CommError::PeerFailed { rank: 2 })
        );
        // Future waiters fail immediately too.
        assert_eq!(b.wait(), Err(CommError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_micros(10),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(10));
        assert_eq!(p.backoff(1), Duration::from_micros(20));
        assert_eq!(p.backoff(3), Duration::from_micros(80));
    }

    #[test]
    fn transience_classification() {
        assert!(CommError::Timeout.is_transient());
        assert!(CommError::ChecksumMismatch { src: 0, tag: 1 }.is_transient());
        assert!(!CommError::PeerFailed { rank: 0 }.is_transient());
        assert!(!CommError::Shutdown.is_transient());
        // Corruption past the repair budget is structural: retrying the
        // same computation on the same hardware fault cannot help.
        assert!(!CommError::SilentCorruption {
            rank: 0,
            segment: None
        }
        .is_transient());
        // Cancellation is a decision, not a fault; retrying would defeat
        // the point of cancelling.
        assert!(!CommError::Cancelled { phase: "ghost" }.is_transient());
    }

    #[test]
    fn silent_corruption_reports_localization() {
        let whole_phase = CommError::SilentCorruption {
            rank: 3,
            segment: None,
        };
        assert!(whole_phase.to_string().contains("rank 3"));
        let localized = CommError::SilentCorruption {
            rank: 1,
            segment: Some(5),
        };
        assert!(localized.to_string().contains("segment 5"));
    }

    #[test]
    fn validation_policy_classification() {
        assert_eq!(ValidationPolicy::default(), ValidationPolicy::Off);
        assert!(!ValidationPolicy::Off.is_on());
        assert!(ValidationPolicy::CheckOnly.is_on());
        assert!(!ValidationPolicy::CheckOnly.recovers());
        assert!(ValidationPolicy::Recover.is_on());
        assert!(ValidationPolicy::Recover.recovers());
    }
}
