//! Deterministic fault injection for chaos-testing the cluster runtime.
//!
//! A [`FaultPlan`] is a seeded description of the chaos to inject: message
//! drops, delivery delays, duplicates, payload corruption, and a targeted
//! rank crash at a chosen phase. Installed via
//! [`Cluster::run_with`](crate::Cluster::run_with) (or the
//! [`run_cluster_with_faults`](crate::run_cluster_with_faults) shorthand),
//! each rank gets its own [`FaultInjector`] whose pseudo-random stream is
//! derived from `seed ⊕ rank` — decisions depend only on the plan, the
//! rank, and that rank's (deterministic) send sequence, never on thread
//! scheduling, so **identical seed + plan ⇒ identical injected events and
//! identical outcomes** (asserted by the determinism proptest).
//!
//! Message faults act at the *link layer* inside
//! [`Comm::try_send`](crate::Comm::try_send): a dropped or corrupted copy
//! consumes one retransmit attempt (with exponential backoff per
//! [`RetryPolicy`](crate::RetryPolicy)); duplicates and corrupt copies that
//! do reach the wire are filtered by the receiver via sequence numbers and
//! checksums. A crash is a rank-fatal event: the victim panics at the
//! chosen [`CrashSite`] and the launcher converts that into
//! [`RankOutcome::Crashed`](crate::RankOutcome::Crashed) while survivors
//! unblock with [`CommError::PeerFailed`](crate::CommError::PeerFailed).

use std::time::Duration;

use soifft_num::c64;

/// What the injector decides to do with one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the message normally.
    Deliver,
    /// Silently drop this copy (the link layer will retransmit).
    Drop,
    /// Delay delivery by the given duration, then deliver.
    Delay(Duration),
    /// Deliver the message twice (receiver must deduplicate).
    Duplicate,
    /// Deliver a bit-corrupted copy (receiver's checksum rejects it; the
    /// link layer retransmits).
    Corrupt,
}

/// Where an injected rank crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// On entering the ghost (nearest-neighbour) exchange.
    Ghost,
    /// On entering any all-to-all collective.
    AllToAll,
    /// On entering a barrier.
    Barrier,
    /// After the rank's `n`-th successful send (fine-grained placement —
    /// e.g. mid-exchange).
    AfterSends(u64),
    /// On entering the named *compute* phase (e.g. `"segment-fft"`), via
    /// the pipeline's [`Comm::crash_point`](crate::Comm::crash_point)
    /// hooks — kills a rank between collectives, where only
    /// checkpoint/restart (not link-layer retry) can save the run.
    Phase(&'static str),
}

/// A targeted rank crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank to kill.
    pub rank: usize,
    /// Where in the communication schedule it dies.
    pub site: CrashSite,
    /// How many incarnations die (the rank crashes in epochs
    /// `0..count`, then runs clean — a repeated-crash schedule
    /// exercising the supervisor's restart budget). Plain,
    /// non-supervised launches only ever see epoch 0.
    pub count: u32,
}

/// A seeded, deterministic description of faults to inject.
///
/// Probabilities are per *delivery attempt*. `fault_limit` bounds how many
/// faulty attempts any single message can suffer before the injector lets
/// a clean copy through — keeping injected faults *transient* so the
/// bounded link-layer retransmit can absorb them. Set it at or above the
/// retry budget (e.g. [`FaultPlan::permanent`]) to model hard failures.
///
/// # Example
///
/// ```
/// use soifft_cluster::{CrashSite, FaultPlan};
/// let plan = FaultPlan::new(42)
///     .drop(0.2)
///     .corrupt(0.1)
///     .crash(2, CrashSite::AllToAll);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    delay_p: f64,
    delay: Duration,
    duplicate_p: f64,
    corrupt_p: f64,
    fault_limit: u32,
    only_rank: Option<usize>,
    crash: Option<CrashSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (builder entry point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_micros(200),
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            fault_limit: 2,
            only_rank: None,
            crash: None,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each delivery attempt with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_p = p;
        self
    }

    /// Delay each delivery with probability `p` by `dur`.
    pub fn delay(mut self, p: f64, dur: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.delay_p = p;
        self.delay = dur;
        self
    }

    /// Duplicate each delivery with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_p = p;
        self
    }

    /// Bit-corrupt each delivery attempt with probability `p`.
    pub fn corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_p = p;
        self
    }

    /// Cap the number of faulty attempts per message at `limit` (after
    /// which the injector delivers cleanly). Default 2 — transient under
    /// the default 4-attempt [`RetryPolicy`](crate::RetryPolicy).
    pub fn fault_limit(mut self, limit: u32) -> Self {
        self.fault_limit = limit;
        self
    }

    /// Make message faults permanent: no per-message fault cap, so a
    /// `drop(1.0)` plan defeats every retransmit (models a severed link).
    pub fn permanent(mut self) -> Self {
        self.fault_limit = u32::MAX;
        self
    }

    /// Restrict message faults to sends *by* `rank` (crashes are always
    /// targeted separately).
    pub fn on_rank(mut self, rank: usize) -> Self {
        self.only_rank = Some(rank);
        self
    }

    /// Kill `rank` when it reaches `site`.
    pub fn crash(mut self, rank: usize, site: CrashSite) -> Self {
        self.crash = Some(CrashSpec {
            rank,
            site,
            count: 1,
        });
        self
    }

    /// Kill `rank` at `site` for its first `times` incarnations (it runs
    /// clean from epoch `times` on) — the repeated-crash schedule that
    /// exercises a supervisor's restart budget.
    pub fn crash_times(mut self, rank: usize, site: CrashSite, times: u32) -> Self {
        self.crash = Some(CrashSpec {
            rank,
            site,
            count: times,
        });
        self
    }

    /// The configured crash, if any.
    pub fn crash_spec(&self) -> Option<CrashSpec> {
        self.crash
    }

    /// Builds the per-rank injector for `rank` in a cluster of `size`
    /// (epoch 0 — the plain, non-supervised launch).
    pub fn injector_for(&self, rank: usize, size: usize) -> FaultInjector {
        self.injector_for_epoch(rank, size, 0)
    }

    /// Builds the per-rank injector for incarnation `epoch` of `rank`.
    ///
    /// The crash trigger is active only while `epoch < count` (so a
    /// respawned rank eventually survives), and the pseudo-random stream
    /// mixes the epoch in — each incarnation sees fresh-but-deterministic
    /// message faults. Epoch 0 is stream-identical to [`FaultPlan::injector_for`].
    pub fn injector_for_epoch(&self, rank: usize, size: usize, epoch: u64) -> FaultInjector {
        assert!(rank < size, "rank out of range");
        if let Some(c) = self.crash {
            assert!(c.rank < size, "crash target rank out of range");
        }
        let mut plan = self.clone();
        if plan.crash.is_some_and(|c| epoch >= u64::from(c.count)) {
            plan.crash = None;
        }
        let seed = self.seed
            ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ epoch.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        FaultInjector {
            plan,
            rank,
            rng: SplitMix::new(seed),
            sends: 0,
            events: FaultEvents::default(),
        }
    }
}

/// Counters of injected events on one rank (deterministic for a fixed
/// plan; useful for asserting a chaos run actually exercised faults).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEvents {
    /// Delivery attempts dropped.
    pub drops: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Deliveries duplicated.
    pub duplicates: u64,
    /// Delivery attempts corrupted.
    pub corruptions: u64,
}

impl FaultEvents {
    /// Total injected events.
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.corruptions
    }
}

/// One rank's deterministic fault source (derived from a [`FaultPlan`]).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank: usize,
    rng: SplitMix,
    sends: u64,
    events: FaultEvents,
}

impl FaultInjector {
    /// Decides the fate of delivery attempt `attempt` (0-based) of this
    /// rank's next message. Draws from the deterministic stream in a fixed
    /// order regardless of which faults are enabled, so enabling one fault
    /// class does not perturb another's decisions.
    pub fn action(&mut self, attempt: u32) -> FaultAction {
        let (d, c, dup, del) = (
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
        );
        if self.plan.only_rank.is_some_and(|r| r != self.rank) {
            return FaultAction::Deliver;
        }
        if attempt >= self.plan.fault_limit {
            // Cap reached: guarantee forward progress under the retry
            // budget (faults stay transient).
            return FaultAction::Deliver;
        }
        if d < self.plan.drop_p {
            self.events.drops += 1;
            return FaultAction::Drop;
        }
        if c < self.plan.corrupt_p {
            self.events.corruptions += 1;
            return FaultAction::Corrupt;
        }
        if dup < self.plan.duplicate_p {
            self.events.duplicates += 1;
            return FaultAction::Duplicate;
        }
        if del < self.plan.delay_p {
            self.events.delays += 1;
            return FaultAction::Delay(self.plan.delay);
        }
        FaultAction::Deliver
    }

    /// Corrupts `data` in place (single deterministic bit flip).
    pub fn corrupt_payload(&mut self, data: &mut [c64]) {
        if data.is_empty() {
            return;
        }
        let i = (self.rng.next_u64() as usize) % data.len();
        data[i].re = f64::from_bits(data[i].re.to_bits() ^ 1);
    }

    /// Records a completed send (advances the [`CrashSite::AfterSends`]
    /// trigger).
    pub fn note_send(&mut self) {
        self.sends += 1;
    }

    /// True if this rank must crash now, given it just reached `site`
    /// (exact site match; [`CrashSite::AfterSends`] triggers are checked by
    /// [`FaultInjector::crash_due_sends`] instead).
    pub fn crash_due(&self, site: CrashSite) -> bool {
        match self.plan.crash {
            Some(c) if c.rank == self.rank => c.site == site,
            _ => false,
        }
    }

    /// True if this rank's [`CrashSite::AfterSends`] trigger has fired
    /// (checked by the send path after every successful delivery).
    pub fn crash_due_sends(&self) -> bool {
        matches!(
            self.plan.crash,
            Some(CrashSpec { rank, site: CrashSite::AfterSends(n), .. })
                if rank == self.rank && self.sends >= n
        )
    }

    /// The injected-event counters so far.
    pub fn events(&self) -> FaultEvents {
        self.events
    }

    /// The rank this injector belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

/// SplitMix64 — tiny, seedable, good-enough generator for fault decisions.
#[derive(Clone, Debug)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_streams_are_deterministic() {
        let plan = FaultPlan::new(7).drop(0.3).corrupt(0.2).duplicate(0.1);
        let mut a = plan.injector_for(1, 4);
        let mut b = plan.injector_for(1, 4);
        for attempt in 0..200 {
            assert_eq!(a.action(attempt % 3), b.action(attempt % 3));
        }
        assert_eq!(a.events(), b.events());
        assert!(
            a.events().total() > 0,
            "plan with p>0 must inject something"
        );
    }

    #[test]
    fn ranks_get_independent_streams() {
        let plan = FaultPlan::new(7).drop(0.5);
        let mut a = plan.injector_for(0, 2);
        let mut b = plan.injector_for(1, 2);
        let sa: Vec<_> = (0..64).map(|_| a.action(0)).collect();
        let sb: Vec<_> = (0..64).map(|_| b.action(0)).collect();
        assert_ne!(sa, sb, "rank streams should differ");
    }

    #[test]
    fn fault_limit_guarantees_delivery() {
        let plan = FaultPlan::new(3).drop(1.0).fault_limit(2);
        let mut inj = plan.injector_for(0, 1);
        assert_eq!(inj.action(0), FaultAction::Drop);
        assert_eq!(inj.action(1), FaultAction::Drop);
        assert_eq!(inj.action(2), FaultAction::Deliver);
    }

    #[test]
    fn permanent_plan_never_relents() {
        let plan = FaultPlan::new(3).drop(1.0).permanent();
        let mut inj = plan.injector_for(0, 1);
        for attempt in 0..50 {
            assert_eq!(inj.action(attempt), FaultAction::Drop);
        }
    }

    #[test]
    fn only_rank_scopes_message_faults() {
        let plan = FaultPlan::new(9).drop(1.0).on_rank(1);
        let mut other = plan.injector_for(0, 2);
        assert_eq!(other.action(0), FaultAction::Deliver);
        let mut target = plan.injector_for(1, 2);
        assert_eq!(target.action(0), FaultAction::Drop);
    }

    #[test]
    fn crash_sites_trigger_for_target_only() {
        let plan = FaultPlan::new(1).crash(2, CrashSite::AllToAll);
        let victim = plan.injector_for(2, 4);
        let bystander = plan.injector_for(1, 4);
        assert!(victim.crash_due(CrashSite::AllToAll));
        assert!(!victim.crash_due(CrashSite::Barrier));
        assert!(!bystander.crash_due(CrashSite::AllToAll));
    }

    #[test]
    fn after_sends_crash_counts_sends() {
        let plan = FaultPlan::new(1).crash(0, CrashSite::AfterSends(2));
        let mut inj = plan.injector_for(0, 2);
        assert!(!inj.crash_due_sends());
        inj.note_send();
        assert!(!inj.crash_due_sends());
        inj.note_send();
        assert!(inj.crash_due_sends());
        assert!(
            !inj.crash_due(CrashSite::Barrier),
            "site triggers stay independent"
        );
    }

    #[test]
    fn phase_crash_site_matches_by_name() {
        let plan = FaultPlan::new(4).crash(1, CrashSite::Phase("segment-fft"));
        let victim = plan.injector_for(1, 4);
        assert!(victim.crash_due(CrashSite::Phase("segment-fft")));
        assert!(!victim.crash_due(CrashSite::Phase("convolution")));
        assert!(!victim.crash_due(CrashSite::AllToAll));
    }

    #[test]
    fn crash_schedule_expires_after_count_epochs() {
        let plan = FaultPlan::new(4).crash_times(2, CrashSite::AllToAll, 2);
        for epoch in 0..2 {
            let inj = plan.injector_for_epoch(2, 4, epoch);
            assert!(
                inj.crash_due(CrashSite::AllToAll),
                "epoch {epoch} still crashes"
            );
        }
        let healed = plan.injector_for_epoch(2, 4, 2);
        assert!(!healed.crash_due(CrashSite::AllToAll), "epoch 2 runs clean");
        // The AfterSends trigger expires the same way.
        let plan = FaultPlan::new(4).crash(0, CrashSite::AfterSends(0));
        let mut inj = plan.injector_for_epoch(0, 2, 1);
        inj.note_send();
        assert!(!inj.crash_due_sends());
    }

    #[test]
    fn epoch_zero_stream_matches_plain_injector() {
        let plan = FaultPlan::new(11).drop(0.4).corrupt(0.2);
        let mut plain = plan.injector_for(3, 4);
        let mut epoch0 = plan.injector_for_epoch(3, 4, 0);
        for attempt in 0..128 {
            assert_eq!(plain.action(attempt % 3), epoch0.action(attempt % 3));
        }
        let mut epoch1 = plan.injector_for_epoch(3, 4, 1);
        let s0: Vec<_> = (0..64).map(|_| plain.action(0)).collect();
        let s1: Vec<_> = (0..64).map(|_| epoch1.action(0)).collect();
        assert_ne!(s0, s1, "incarnations should see fresh fault streams");
    }

    #[test]
    fn corrupt_payload_flips_exactly_one_bit() {
        let plan = FaultPlan::new(5).corrupt(1.0);
        let mut inj = plan.injector_for(0, 1);
        let orig: Vec<c64> = (0..16).map(|i| c64::new(i as f64, 1.0)).collect();
        let mut data = orig.clone();
        inj.corrupt_payload(&mut data);
        let diffs = orig.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }
}
