//! Deterministic fault injection for chaos-testing the cluster runtime.
//!
//! A [`FaultPlan`] is a seeded description of the chaos to inject: message
//! drops, delivery delays, duplicates, payload corruption, and a targeted
//! rank crash at a chosen phase. Installed via
//! [`Cluster::run_with`](crate::Cluster::run_with) (or the
//! [`run_cluster_with_faults`](crate::run_cluster_with_faults) shorthand),
//! each rank gets its own [`FaultInjector`] whose pseudo-random stream is
//! derived from `seed ⊕ rank` — decisions depend only on the plan, the
//! rank, and that rank's (deterministic) send sequence, never on thread
//! scheduling, so **identical seed + plan ⇒ identical injected events and
//! identical outcomes** (asserted by the determinism proptest).
//!
//! Message faults act at the *link layer* inside
//! [`Comm::try_send`](crate::Comm::try_send): a dropped or corrupted copy
//! consumes one retransmit attempt (with exponential backoff per
//! [`RetryPolicy`](crate::RetryPolicy)); duplicates and corrupt copies that
//! do reach the wire are filtered by the receiver via sequence numbers and
//! checksums. A crash is a rank-fatal event: the victim panics at the
//! chosen [`CrashSite`] and the launcher converts that into
//! [`RankOutcome::Crashed`](crate::RankOutcome::Crashed) while survivors
//! unblock with [`CommError::PeerFailed`](crate::CommError::PeerFailed).

use std::time::Duration;

use soifft_num::c64;

/// What the injector decides to do with one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the message normally.
    Deliver,
    /// Silently drop this copy (the link layer will retransmit).
    Drop,
    /// Delay delivery by the given duration, then deliver.
    Delay(Duration),
    /// Deliver the message twice (receiver must deduplicate).
    Duplicate,
    /// Deliver a bit-corrupted copy (receiver's checksum rejects it; the
    /// link layer retransmits).
    Corrupt,
}

/// Where an injected rank crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashSite {
    /// On entering the ghost (nearest-neighbour) exchange.
    Ghost,
    /// On entering any all-to-all collective.
    AllToAll,
    /// On entering a barrier.
    Barrier,
    /// After the rank's `n`-th successful send (fine-grained placement —
    /// e.g. mid-exchange).
    AfterSends(u64),
    /// On entering the named *compute* phase (e.g. `"segment-fft"`), via
    /// the pipeline's [`Comm::crash_point`](crate::Comm::crash_point)
    /// hooks — kills a rank between collectives, where only
    /// checkpoint/restart (not link-layer retry) can save the run.
    Phase(&'static str),
}

/// A compute-side buffer an injected bit flip targets.
///
/// These are the silent-data-corruption sites the link layer *provably
/// cannot catch*: wire checksums cover a payload only between the moment
/// the sender hashes it and the moment the receiver verifies it. A flip
/// that lands in a buffer before it is hashed (a convolution or FFT
/// output sitting in memory), after it is reassembled (a gathered
/// segment), or in a checkpoint image as it is written, passes every
/// link-layer check and yields a confidently wrong spectrum — unless the
/// pipeline's phase invariants (`soifft-core`'s `verify` module) catch it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BitFlipSite {
    /// The output buffer of a rank's local FFT (the SOI block DFTs or a
    /// CT column/row FFT), flipped while it waits for the next phase.
    LocalFftBuffer,
    /// The SOI convolution output `u = W x`, flipped between the
    /// convolution and the block DFTs that consume it.
    ConvBuffer,
    /// A checkpoint snapshot, flipped as the image is written — *before*
    /// the store takes its FNV-1a checksum, so a later restore verifies
    /// clean and silently resumes from corrupt state.
    CheckpointImage,
    /// A reassembled segment on the receiving rank, flipped *after* the
    /// all-to-all delivered (and checksum-verified) every part.
    GatheredSegment,
}

/// A targeted compute-side bit flip (see [`BitFlipSite`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitFlipSpec {
    /// The rank whose buffer is flipped.
    pub rank: usize,
    /// Which buffer the flip lands in.
    pub site: BitFlipSite,
    /// Which bit of the chosen `f64` word is flipped (0–63). The word
    /// (and its real/imaginary half) is drawn from the injector's
    /// dedicated flip stream. Defaults to 62 — a high exponent bit, the
    /// worst case for the victim: one word's magnitude changes by orders
    /// of magnitude and the spectrum is grossly wrong everywhere.
    pub bit: u32,
    /// How many times the flip fires per rank incarnation. The default 1
    /// models a single upset (a localized re-execution then runs clean);
    /// `u32::MAX` models a hard fault that defeats every retry, driving
    /// the validation layer's bounded-budget escalation.
    pub count: u32,
}

/// A targeted rank crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank to kill.
    pub rank: usize,
    /// Where in the communication schedule it dies.
    pub site: CrashSite,
    /// How many incarnations die (the rank crashes in epochs
    /// `0..count`, then runs clean — a repeated-crash schedule
    /// exercising the supervisor's restart budget). Plain,
    /// non-supervised launches only ever see epoch 0.
    pub count: u32,
}

/// A seeded, deterministic description of faults to inject.
///
/// Probabilities are per *delivery attempt*. `fault_limit` bounds how many
/// faulty attempts any single message can suffer before the injector lets
/// a clean copy through — keeping injected faults *transient* so the
/// bounded link-layer retransmit can absorb them. Set it at or above the
/// retry budget (e.g. [`FaultPlan::permanent`]) to model hard failures.
///
/// # Example
///
/// ```
/// use soifft_cluster::{CrashSite, FaultPlan};
/// let plan = FaultPlan::new(42)
///     .drop(0.2)
///     .corrupt(0.1)
///     .crash(2, CrashSite::AllToAll);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    delay_p: f64,
    delay: Duration,
    duplicate_p: f64,
    corrupt_p: f64,
    fault_limit: u32,
    only_rank: Option<usize>,
    crash: Option<CrashSpec>,
    flip: Option<BitFlipSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (builder entry point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_micros(200),
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            fault_limit: 2,
            only_rank: None,
            crash: None,
            flip: None,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each delivery attempt with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_p = p;
        self
    }

    /// Delay each delivery with probability `p` by `dur`.
    pub fn delay(mut self, p: f64, dur: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.delay_p = p;
        self.delay = dur;
        self
    }

    /// Duplicate each delivery with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_p = p;
        self
    }

    /// Bit-corrupt each delivery attempt with probability `p`.
    pub fn corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_p = p;
        self
    }

    /// Cap the number of faulty attempts per message at `limit` (after
    /// which the injector delivers cleanly). Default 2 — transient under
    /// the default 4-attempt [`RetryPolicy`](crate::RetryPolicy).
    pub fn fault_limit(mut self, limit: u32) -> Self {
        self.fault_limit = limit;
        self
    }

    /// Make message faults permanent: no per-message fault cap, so a
    /// `drop(1.0)` plan defeats every retransmit (models a severed link).
    pub fn permanent(mut self) -> Self {
        self.fault_limit = u32::MAX;
        self
    }

    /// Restrict message faults to sends *by* `rank` (crashes are always
    /// targeted separately).
    pub fn on_rank(mut self, rank: usize) -> Self {
        self.only_rank = Some(rank);
        self
    }

    /// Kill `rank` when it reaches `site`.
    pub fn crash(mut self, rank: usize, site: CrashSite) -> Self {
        self.crash = Some(CrashSpec {
            rank,
            site,
            count: 1,
        });
        self
    }

    /// Kill `rank` at `site` for its first `times` incarnations (it runs
    /// clean from epoch `times` on) — the repeated-crash schedule that
    /// exercises a supervisor's restart budget.
    pub fn crash_times(mut self, rank: usize, site: CrashSite, times: u32) -> Self {
        self.crash = Some(CrashSpec {
            rank,
            site,
            count: times,
        });
        self
    }

    /// The configured crash, if any.
    pub fn crash_spec(&self) -> Option<CrashSpec> {
        self.crash
    }

    /// Flip one bit of `rank`'s buffer at `site`, once, in epoch 0 (the
    /// default high-exponent bit 62 — see [`BitFlipSpec::bit`]).
    pub fn bit_flip(self, rank: usize, site: BitFlipSite) -> Self {
        self.bit_flip_times(rank, site, 1)
    }

    /// Flip one bit of `rank`'s buffer at `site` on its first `times`
    /// visits per incarnation. `u32::MAX` models a hard fault: every
    /// localized re-execution re-corrupts, so a `Recover` validation
    /// policy exhausts its retry budget and escalates.
    pub fn bit_flip_times(mut self, rank: usize, site: BitFlipSite, times: u32) -> Self {
        self.flip = Some(BitFlipSpec {
            rank,
            site,
            bit: 62,
            count: times,
        });
        self
    }

    /// Overrides which bit the configured flip targets (0–63; low mantissa
    /// bits make the corruption subtle, exponent bits make it gross).
    ///
    /// # Panics
    /// Panics if no flip is configured or `bit > 63`.
    pub fn flip_bit(mut self, bit: u32) -> Self {
        assert!(bit < 64, "bit index out of range");
        let spec = self.flip.as_mut().expect("configure a bit flip first");
        spec.bit = bit;
        self
    }

    /// The configured bit flip, if any.
    pub fn flip_spec(&self) -> Option<BitFlipSpec> {
        self.flip
    }

    /// Builds the per-rank injector for `rank` in a cluster of `size`
    /// (epoch 0 — the plain, non-supervised launch).
    pub fn injector_for(&self, rank: usize, size: usize) -> FaultInjector {
        self.injector_for_epoch(rank, size, 0)
    }

    /// Builds the per-rank injector for incarnation `epoch` of `rank`.
    ///
    /// The crash trigger is active only while `epoch < count` (so a
    /// respawned rank eventually survives), and the pseudo-random stream
    /// mixes the epoch in — each incarnation sees fresh-but-deterministic
    /// message faults. Epoch 0 is stream-identical to [`FaultPlan::injector_for`].
    pub fn injector_for_epoch(&self, rank: usize, size: usize, epoch: u64) -> FaultInjector {
        assert!(rank < size, "rank out of range");
        if let Some(c) = self.crash {
            assert!(c.rank < size, "crash target rank out of range");
        }
        let mut plan = self.clone();
        if plan.crash.is_some_and(|c| epoch >= u64::from(c.count)) {
            plan.crash = None;
        }
        // A bit flip is a single upset event: it fires (up to its
        // per-incarnation count) in epoch 0 only, so a supervised respawn
        // recomputes clean — mirroring how crash schedules expire.
        if epoch > 0 {
            plan.flip = None;
        }
        let seed = self.seed
            ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ epoch.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        FaultInjector {
            plan,
            rank,
            rng: SplitMix::new(seed),
            // An independent stream for flip word selection, so enabling a
            // flip never perturbs the link-fault decisions (and vice
            // versa) — the determinism proptest relies on this isolation.
            flip_rng: SplitMix::new(seed ^ 0xB5AD_4ECE_DA1C_E2A9),
            sends: 0,
            flips_fired: 0,
            events: FaultEvents::default(),
        }
    }
}

/// Counters of injected events on one rank (deterministic for a fixed
/// plan; useful for asserting a chaos run actually exercised faults).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEvents {
    /// Delivery attempts dropped.
    pub drops: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Deliveries duplicated.
    pub duplicates: u64,
    /// Delivery attempts corrupted.
    pub corruptions: u64,
    /// Compute-side bit flips applied ([`BitFlipSite`] sites).
    pub bit_flips: u64,
}

impl FaultEvents {
    /// Total injected events.
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.corruptions + self.bit_flips
    }
}

/// One rank's deterministic fault source (derived from a [`FaultPlan`]).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank: usize,
    rng: SplitMix,
    flip_rng: SplitMix,
    sends: u64,
    flips_fired: u32,
    events: FaultEvents,
}

impl FaultInjector {
    /// Decides the fate of delivery attempt `attempt` (0-based) of this
    /// rank's next message. Draws from the deterministic stream in a fixed
    /// order regardless of which faults are enabled, so enabling one fault
    /// class does not perturb another's decisions.
    pub fn action(&mut self, attempt: u32) -> FaultAction {
        let (d, c, dup, del) = (
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
            self.rng.next_f64(),
        );
        if self.plan.only_rank.is_some_and(|r| r != self.rank) {
            return FaultAction::Deliver;
        }
        if attempt >= self.plan.fault_limit {
            // Cap reached: guarantee forward progress under the retry
            // budget (faults stay transient).
            return FaultAction::Deliver;
        }
        if d < self.plan.drop_p {
            self.events.drops += 1;
            return FaultAction::Drop;
        }
        if c < self.plan.corrupt_p {
            self.events.corruptions += 1;
            return FaultAction::Corrupt;
        }
        if dup < self.plan.duplicate_p {
            self.events.duplicates += 1;
            return FaultAction::Duplicate;
        }
        if del < self.plan.delay_p {
            self.events.delays += 1;
            return FaultAction::Delay(self.plan.delay);
        }
        FaultAction::Deliver
    }

    /// Corrupts `data` in place (single deterministic bit flip).
    pub fn corrupt_payload(&mut self, data: &mut [c64]) {
        if data.is_empty() {
            return;
        }
        let i = (self.rng.next_u64() as usize) % data.len();
        data[i].re = f64::from_bits(data[i].re.to_bits() ^ 1);
    }

    /// True while the plan still has a bit flip pending for this rank at
    /// `site` (non-consuming — lets call sites skip defensive copies when
    /// no flip can fire).
    pub fn flip_planned(&self, site: BitFlipSite) -> bool {
        matches!(
            self.plan.flip,
            Some(spec) if spec.rank == self.rank
                && spec.site == site
                && self.flips_fired < spec.count
        )
    }

    /// Applies the planned bit flip to `data` if it targets this rank and
    /// `site` and its per-incarnation budget remains: one seeded word of
    /// `data` (real or imaginary half) gets bit [`BitFlipSpec::bit`]
    /// flipped. Returns the flipped element index, or `None` when nothing
    /// fired.
    pub fn apply_bit_flip(&mut self, site: BitFlipSite, data: &mut [c64]) -> Option<usize> {
        if !self.flip_planned(site) || data.is_empty() {
            return None;
        }
        let spec = self.plan.flip.expect("flip_planned implies a spec");
        let word = self.flip_rng.next_u64() as usize % (2 * data.len());
        let z = &mut data[word / 2];
        let half = if word.is_multiple_of(2) {
            &mut z.re
        } else {
            &mut z.im
        };
        *half = f64::from_bits(half.to_bits() ^ (1u64 << spec.bit));
        self.flips_fired += 1;
        self.events.bit_flips += 1;
        Some(word / 2)
    }

    /// Records a completed send (advances the [`CrashSite::AfterSends`]
    /// trigger).
    pub fn note_send(&mut self) {
        self.sends += 1;
    }

    /// True if this rank must crash now, given it just reached `site`
    /// (exact site match; [`CrashSite::AfterSends`] triggers are checked by
    /// [`FaultInjector::crash_due_sends`] instead).
    pub fn crash_due(&self, site: CrashSite) -> bool {
        match self.plan.crash {
            Some(c) if c.rank == self.rank => c.site == site,
            _ => false,
        }
    }

    /// True if this rank's [`CrashSite::AfterSends`] trigger has fired
    /// (checked by the send path after every successful delivery).
    pub fn crash_due_sends(&self) -> bool {
        matches!(
            self.plan.crash,
            Some(CrashSpec { rank, site: CrashSite::AfterSends(n), .. })
                if rank == self.rank && self.sends >= n
        )
    }

    /// The injected-event counters so far.
    pub fn events(&self) -> FaultEvents {
        self.events
    }

    /// The rank this injector belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

/// SplitMix64 — tiny, seedable, good-enough generator for fault decisions.
#[derive(Clone, Debug)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_streams_are_deterministic() {
        let plan = FaultPlan::new(7).drop(0.3).corrupt(0.2).duplicate(0.1);
        let mut a = plan.injector_for(1, 4);
        let mut b = plan.injector_for(1, 4);
        for attempt in 0..200 {
            assert_eq!(a.action(attempt % 3), b.action(attempt % 3));
        }
        assert_eq!(a.events(), b.events());
        assert!(
            a.events().total() > 0,
            "plan with p>0 must inject something"
        );
    }

    #[test]
    fn ranks_get_independent_streams() {
        let plan = FaultPlan::new(7).drop(0.5);
        let mut a = plan.injector_for(0, 2);
        let mut b = plan.injector_for(1, 2);
        let sa: Vec<_> = (0..64).map(|_| a.action(0)).collect();
        let sb: Vec<_> = (0..64).map(|_| b.action(0)).collect();
        assert_ne!(sa, sb, "rank streams should differ");
    }

    #[test]
    fn fault_limit_guarantees_delivery() {
        let plan = FaultPlan::new(3).drop(1.0).fault_limit(2);
        let mut inj = plan.injector_for(0, 1);
        assert_eq!(inj.action(0), FaultAction::Drop);
        assert_eq!(inj.action(1), FaultAction::Drop);
        assert_eq!(inj.action(2), FaultAction::Deliver);
    }

    #[test]
    fn permanent_plan_never_relents() {
        let plan = FaultPlan::new(3).drop(1.0).permanent();
        let mut inj = plan.injector_for(0, 1);
        for attempt in 0..50 {
            assert_eq!(inj.action(attempt), FaultAction::Drop);
        }
    }

    #[test]
    fn only_rank_scopes_message_faults() {
        let plan = FaultPlan::new(9).drop(1.0).on_rank(1);
        let mut other = plan.injector_for(0, 2);
        assert_eq!(other.action(0), FaultAction::Deliver);
        let mut target = plan.injector_for(1, 2);
        assert_eq!(target.action(0), FaultAction::Drop);
    }

    #[test]
    fn crash_sites_trigger_for_target_only() {
        let plan = FaultPlan::new(1).crash(2, CrashSite::AllToAll);
        let victim = plan.injector_for(2, 4);
        let bystander = plan.injector_for(1, 4);
        assert!(victim.crash_due(CrashSite::AllToAll));
        assert!(!victim.crash_due(CrashSite::Barrier));
        assert!(!bystander.crash_due(CrashSite::AllToAll));
    }

    #[test]
    fn after_sends_crash_counts_sends() {
        let plan = FaultPlan::new(1).crash(0, CrashSite::AfterSends(2));
        let mut inj = plan.injector_for(0, 2);
        assert!(!inj.crash_due_sends());
        inj.note_send();
        assert!(!inj.crash_due_sends());
        inj.note_send();
        assert!(inj.crash_due_sends());
        assert!(
            !inj.crash_due(CrashSite::Barrier),
            "site triggers stay independent"
        );
    }

    #[test]
    fn phase_crash_site_matches_by_name() {
        let plan = FaultPlan::new(4).crash(1, CrashSite::Phase("segment-fft"));
        let victim = plan.injector_for(1, 4);
        assert!(victim.crash_due(CrashSite::Phase("segment-fft")));
        assert!(!victim.crash_due(CrashSite::Phase("convolution")));
        assert!(!victim.crash_due(CrashSite::AllToAll));
    }

    #[test]
    fn crash_schedule_expires_after_count_epochs() {
        let plan = FaultPlan::new(4).crash_times(2, CrashSite::AllToAll, 2);
        for epoch in 0..2 {
            let inj = plan.injector_for_epoch(2, 4, epoch);
            assert!(
                inj.crash_due(CrashSite::AllToAll),
                "epoch {epoch} still crashes"
            );
        }
        let healed = plan.injector_for_epoch(2, 4, 2);
        assert!(!healed.crash_due(CrashSite::AllToAll), "epoch 2 runs clean");
        // The AfterSends trigger expires the same way.
        let plan = FaultPlan::new(4).crash(0, CrashSite::AfterSends(0));
        let mut inj = plan.injector_for_epoch(0, 2, 1);
        inj.note_send();
        assert!(!inj.crash_due_sends());
    }

    #[test]
    fn epoch_zero_stream_matches_plain_injector() {
        let plan = FaultPlan::new(11).drop(0.4).corrupt(0.2);
        let mut plain = plan.injector_for(3, 4);
        let mut epoch0 = plan.injector_for_epoch(3, 4, 0);
        for attempt in 0..128 {
            assert_eq!(plain.action(attempt % 3), epoch0.action(attempt % 3));
        }
        let mut epoch1 = plan.injector_for_epoch(3, 4, 1);
        let s0: Vec<_> = (0..64).map(|_| plain.action(0)).collect();
        let s1: Vec<_> = (0..64).map(|_| epoch1.action(0)).collect();
        assert_ne!(s0, s1, "incarnations should see fresh fault streams");
    }

    #[test]
    fn bit_flip_fires_once_on_target_rank_and_site() {
        let plan = FaultPlan::new(13).bit_flip(1, BitFlipSite::ConvBuffer);
        let mut victim = plan.injector_for(1, 4);
        let mut bystander = plan.injector_for(0, 4);
        let orig: Vec<c64> = (0..32).map(|i| c64::new(i as f64 + 1.0, -1.0)).collect();

        let mut data = orig.clone();
        assert!(bystander
            .apply_bit_flip(BitFlipSite::ConvBuffer, &mut data)
            .is_none());
        assert!(victim
            .apply_bit_flip(BitFlipSite::LocalFftBuffer, &mut data)
            .is_none());
        assert_eq!(data, orig, "wrong rank/site must not touch the buffer");

        let idx = victim
            .apply_bit_flip(BitFlipSite::ConvBuffer, &mut data)
            .expect("flip fires");
        let diffs = orig.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one element flipped");
        assert_ne!(data[idx], orig[idx]);
        assert_eq!(victim.events().bit_flips, 1);

        // Budget spent: a re-execution of the phase runs clean.
        let mut again = orig.clone();
        assert!(victim
            .apply_bit_flip(BitFlipSite::ConvBuffer, &mut again)
            .is_none());
        assert!(!victim.flip_planned(BitFlipSite::ConvBuffer));
    }

    #[test]
    fn bit_flip_targets_the_requested_bit() {
        let plan = FaultPlan::new(13)
            .bit_flip(0, BitFlipSite::GatheredSegment)
            .flip_bit(3);
        let mut inj = plan.injector_for(0, 1);
        let orig: Vec<c64> = (0..8).map(|i| c64::new(i as f64, i as f64)).collect();
        let mut data = orig.clone();
        let idx = inj
            .apply_bit_flip(BitFlipSite::GatheredSegment, &mut data)
            .unwrap();
        let xor = (orig[idx].re.to_bits() ^ data[idx].re.to_bits())
            | (orig[idx].im.to_bits() ^ data[idx].im.to_bits());
        assert_eq!(xor, 1 << 3, "exactly bit 3 of one half flipped");
    }

    #[test]
    fn permanent_bit_flip_defeats_reexecution() {
        let plan = FaultPlan::new(21).bit_flip_times(0, BitFlipSite::LocalFftBuffer, u32::MAX);
        let mut inj = plan.injector_for(0, 2);
        let mut data: Vec<c64> = (0..4).map(|i| c64::new(i as f64, 0.0)).collect();
        for _ in 0..8 {
            assert!(inj
                .apply_bit_flip(BitFlipSite::LocalFftBuffer, &mut data)
                .is_some());
        }
        assert_eq!(inj.events().bit_flips, 8);
    }

    #[test]
    fn bit_flip_expires_after_epoch_zero() {
        let plan = FaultPlan::new(5).bit_flip(2, BitFlipSite::CheckpointImage);
        let mut respawned = plan.injector_for_epoch(2, 4, 1);
        let mut data = vec![c64::new(1.0, 2.0); 4];
        assert!(!respawned.flip_planned(BitFlipSite::CheckpointImage));
        assert!(respawned
            .apply_bit_flip(BitFlipSite::CheckpointImage, &mut data)
            .is_none());
    }

    #[test]
    fn bit_flip_word_choice_is_deterministic() {
        let plan = FaultPlan::new(77).bit_flip(0, BitFlipSite::ConvBuffer);
        let run = || {
            let mut inj = plan.injector_for(0, 2);
            let mut data = vec![c64::new(1.5, -0.5); 64];
            inj.apply_bit_flip(BitFlipSite::ConvBuffer, &mut data)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flip_stream_does_not_perturb_link_fault_stream() {
        let base = FaultPlan::new(7).drop(0.3).corrupt(0.2);
        let with_flip = base.clone().bit_flip(1, BitFlipSite::ConvBuffer);
        let mut a = base.injector_for(1, 4);
        let mut b = with_flip.injector_for(1, 4);
        let mut data = vec![c64::new(1.0, 1.0); 16];
        b.apply_bit_flip(BitFlipSite::ConvBuffer, &mut data);
        for attempt in 0..128 {
            assert_eq!(a.action(attempt % 3), b.action(attempt % 3));
        }
    }

    #[test]
    fn corrupt_payload_flips_exactly_one_bit() {
        let plan = FaultPlan::new(5).corrupt(1.0);
        let mut inj = plan.injector_for(0, 1);
        let orig: Vec<c64> = (0..16).map(|i| c64::new(i as f64, 1.0)).collect();
        let mut data = orig.clone();
        inj.corrupt_payload(&mut data);
        let diffs = orig.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }
}
