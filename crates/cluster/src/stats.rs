//! Per-rank communication and phase accounting.
//!
//! Figures 1/2 of the paper are structural diagrams (how many collective
//! steps each factorization needs); Fig 9 is a per-phase execution-time
//! breakdown. Both are regenerated from this ledger: collectives and
//! user-marked compute phases append [`PhaseRecord`]s in execution order,
//! and byte counters track communication volume so functional runs can be
//! checked against the model's `16N/bw` predictions.

use std::time::Instant;

use crate::trace::{TraceBuf, TraceEvent};

/// One completed phase: name, wall-clock seconds, bytes sent during it,
/// and (when a cost model is active) the *simulated* seconds the phase
/// would take on the modeled hardware.
#[derive(Clone, Debug)]
pub struct PhaseRecord {
    /// Phase label (`"all-to-all"`, `"ghost"`, `"local-fft"`, ...).
    pub name: &'static str,
    /// Wall-clock duration of the phase on this rank.
    pub seconds: f64,
    /// Bytes this rank sent while the phase was open.
    pub bytes_sent: u64,
    /// Virtual-time duration under the configured cost model (DESIGN.md
    /// §1: functional correctness runs on threads, paper-scale timing
    /// comes from models — this field is where the two meet).
    pub sim_seconds: Option<f64>,
    /// Link-layer retransmissions that occurred while this phase was
    /// open (previously these aggregated globally, hiding *which*
    /// collective was fighting a lossy link).
    pub retransmits: u64,
    /// Payload-pool evictions charged while this phase was open.
    pub pool_evictions: u64,
}

/// Per-rank communication cost model for virtual-time accounting: one
/// rank's view of the interconnect (e.g. the paper's 3 GiB/s per-node
/// all-to-all bandwidth).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Sustained bytes per second this rank can inject.
    pub bytes_per_s: f64,
    /// Per-phase latency floor in seconds.
    pub latency_s: f64,
}

/// How a supervised run ended, fault-recovery-wise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No recovery machinery was exercised (fault-free run, or recovery
    /// was not enabled).
    #[default]
    None,
    /// The run lost at least one rank incarnation and still completed.
    Recovered {
        /// Supervisor restarts consumed (0 when only degraded-mode
        /// recomputation was needed).
        restarts: u32,
        /// Output segments recomputed by surviving ranks in degraded mode
        /// (0 when a respawn carried the run to completion).
        recomputed_segments: usize,
    },
}

/// A rank's accumulated ledger.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    records: Vec<PhaseRecord>,
    total_bytes_sent: u64,
    messages_sent: u64,
    cost: Option<CostModel>,
    retransmits: u64,
    corrupt_discarded: u64,
    duplicates_discarded: u64,
    stale_discarded: u64,
    sdc_detected: u64,
    sdc_repaired: u64,
    sdc_false_positives: u64,
    queue_high_watermark: usize,
    recovery: RecoveryOutcome,
    comm_allocs: u64,
    pool_busy_s: f64,
    pool_tasks: u64,
    pool_evictions: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_evictions: u64,
    jobs_shed: u64,
    serve_retries: u64,
    queue_wait_s: f64,
    heartbeats_sent: u64,
    heartbeats_missed: u64,
    recv_timeouts: u64,
    link_reconnects: u64,
    link_partition_s: f64,
    bytes_by_peer: Vec<u64>,
    trace: Option<TraceBuf>,
}

/// Token returned by [`CommStats::phase_start`]; closed by
/// [`CommStats::phase_end`].
#[derive(Debug)]
pub struct PhaseToken {
    start: Instant,
    bytes_at_start: u64,
    retransmits_at_start: u64,
    pool_evictions_at_start: u64,
}

impl CommStats {
    /// Records an outgoing message of `bytes`.
    pub fn add_bytes_sent(&mut self, bytes: u64) {
        self.total_bytes_sent += bytes;
        self.messages_sent += 1;
    }

    /// Records a link-layer retransmission (a delivery attempt consumed by
    /// an injected drop or corruption).
    pub fn note_retransmit(&mut self) {
        self.retransmits += 1;
    }

    /// Records an arriving message discarded for a checksum mismatch.
    pub fn note_corrupt_discarded(&mut self) {
        self.corrupt_discarded += 1;
    }

    /// Records an arriving message discarded as an already-seen duplicate.
    pub fn note_duplicate_discarded(&mut self) {
        self.duplicates_discarded += 1;
    }

    /// Records an arriving message discarded because it was sent by a dead
    /// incarnation (its generation tag predates the current epoch).
    pub fn note_stale_discarded(&mut self) {
        self.stale_discarded += 1;
    }

    /// Records a phase invariant flagging silent data corruption in a
    /// compute buffer (ABFT detection — distinct from
    /// [`CommStats::note_corrupt_discarded`], which counts *wire*
    /// corruption caught by message checksums).
    pub fn note_sdc_detected(&mut self) {
        self.sdc_detected += 1;
    }

    /// Records a detected corruption repaired by localized re-execution
    /// (the re-run's invariants verified clean).
    pub fn note_sdc_repaired(&mut self) {
        self.sdc_repaired += 1;
    }

    /// Records an invariant violation that an immediate re-verification of
    /// the *unchanged* data contradicted — a spurious detection (tolerance
    /// set too tight), not corruption.
    pub fn note_sdc_false_positive(&mut self) {
        self.sdc_false_positives += 1;
    }

    /// Folds an observed destination-queue depth into the high watermark.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.queue_high_watermark = self.queue_high_watermark.max(depth);
    }

    /// Folds heartbeat activity harvested from the transport: `sent`
    /// liveness beacons emitted by this rank, `missed` peers it saw
    /// declared dead by heartbeat staleness.
    pub fn note_heartbeats(&mut self, sent: u64, missed: u64) {
        self.heartbeats_sent += sent;
        self.heartbeats_missed += missed;
    }

    /// Records a blocking receive (or backpressured send) giving up at
    /// its deadline with [`CommError::Timeout`](crate::CommError::Timeout).
    pub fn note_recv_timeout(&mut self) {
        self.recv_timeouts += 1;
    }

    /// Folds link-layer activity harvested from the transport: per-link
    /// reconnects, seconds of healed link downtime, and wire bytes
    /// pushed toward each peer (connection-oriented backends only; the
    /// in-process and pipe backends report all-zero deltas).
    pub fn note_link_activity(&mut self, delta: &crate::transport::LinkDelta) {
        self.link_reconnects += delta.reconnects;
        self.link_partition_s += delta.partition_seconds;
        if self.bytes_by_peer.len() < delta.bytes_by_peer.len() {
            self.bytes_by_peer.resize(delta.bytes_by_peer.len(), 0);
        }
        for (mine, theirs) in self.bytes_by_peer.iter_mut().zip(&delta.bytes_by_peer) {
            *mine += theirs;
        }
    }

    /// Transport reconnects that healed a dropped link transparently
    /// (each one is a fault the layers above never saw).
    pub fn link_reconnects(&self) -> u64 {
        self.link_reconnects
    }

    /// Total seconds outbound links spent down before healing — time
    /// the mesh absorbed inside the staleness budget rather than
    /// escalating to a peer-down declaration.
    pub fn link_partition_seconds(&self) -> f64 {
        self.link_partition_s
    }

    /// Wire bytes pushed toward each peer rank (frame headers
    /// included), indexed by destination; empty until a
    /// connection-oriented transport reports traffic.
    pub fn bytes_by_peer(&self) -> &[u64] {
        &self.bytes_by_peer
    }

    /// Heartbeat beacons this rank's transport emitted.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent
    }

    /// Peers this rank saw declared dead by heartbeat staleness.
    pub fn heartbeats_missed(&self) -> u64 {
        self.heartbeats_missed
    }

    /// Deadline expiries on blocking receive paths (typed `Timeout`s that
    /// replaced what the seed runtime would have spent hanging).
    pub fn recv_timeouts(&self) -> u64 {
        self.recv_timeouts
    }

    /// Pre-grows the phase-record log by `extra` entries so the appends
    /// inside an upcoming measured window (each collective closes a phase)
    /// don't reallocate it. Zero-allocation harnesses call this before
    /// their counting window.
    pub fn reserve_records(&mut self, extra: usize) {
        self.records.reserve(extra);
    }

    /// Clears the phase-record log, keeping its capacity. Long-running
    /// drivers (the serving engine's rank loop) fold the records they
    /// care about into their own aggregates per batch and clear, so the
    /// ledger stays bounded without re-allocating in the steady state.
    /// Counters and the trace buffer are untouched.
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Opens a phase (timing starts now). The token snapshots the
    /// retransmit and pool-eviction counters too, so the closing record
    /// attributes those events to the phase they occurred in.
    pub fn phase_start(&self) -> PhaseToken {
        PhaseToken {
            start: Instant::now(),
            bytes_at_start: self.total_bytes_sent,
            retransmits_at_start: self.retransmits,
            pool_evictions_at_start: self.pool_evictions,
        }
    }

    /// Closes a phase, appending its record. If a [`CostModel`] is set and
    /// the phase sent bytes, its simulated communication time is recorded.
    pub fn phase_end(&mut self, name: &'static str, token: PhaseToken) {
        let bytes = self.total_bytes_sent - token.bytes_at_start;
        let seconds = token.start.elapsed().as_secs_f64();
        let sim = self
            .cost
            .filter(|_| bytes > 0)
            .map(|c| c.latency_s + bytes as f64 / c.bytes_per_s);
        if let Some(trace) = &mut self.trace {
            trace.leaf(name, token.start, seconds, bytes, sim);
        }
        self.records.push(PhaseRecord {
            name,
            seconds,
            bytes_sent: bytes,
            sim_seconds: sim,
            retransmits: self.retransmits - token.retransmits_at_start,
            pool_evictions: self.pool_evictions - token.pool_evictions_at_start,
        });
    }

    /// Closes a phase with an explicitly computed simulated duration
    /// (compute phases, where the caller knows the flop count and the
    /// modeled machine's rate).
    pub fn phase_end_sim(&mut self, name: &'static str, token: PhaseToken, sim_seconds: f64) {
        let bytes = self.total_bytes_sent - token.bytes_at_start;
        let seconds = token.start.elapsed().as_secs_f64();
        if let Some(trace) = &mut self.trace {
            trace.leaf(name, token.start, seconds, bytes, Some(sim_seconds));
        }
        self.records.push(PhaseRecord {
            name,
            seconds,
            bytes_sent: bytes,
            sim_seconds: Some(sim_seconds),
            retransmits: self.retransmits - token.retransmits_at_start,
            pool_evictions: self.pool_evictions - token.pool_evictions_at_start,
        });
    }

    /// Installs a communication cost model; subsequent byte-moving phases
    /// get `sim_seconds = latency + bytes/bandwidth`.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = Some(cost);
    }

    /// Removes any installed cost model; subsequent phases record wall
    /// time only. Plans without a virtual-time spec call this so a
    /// `Comm` reused across plans does not keep accruing simulated time
    /// from a previous plan's model.
    pub fn clear_cost_model(&mut self) {
        self.cost = None;
    }

    /// Turns on hierarchical tracing for this ledger. `origin` is the
    /// zero point for event timestamps; the cluster driver passes one
    /// shared instant to every rank of an epoch so cross-rank timelines
    /// align in the exporters.
    pub fn enable_trace(&mut self, origin: Instant) {
        self.trace = Some(TraceBuf::new(origin));
    }

    /// Whether hierarchical tracing is active.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Closed trace events (empty when tracing is disabled).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.as_ref().map_or(&[], |t| t.events())
    }

    /// Opens a named span. A no-op unless tracing is enabled — the
    /// disabled path is a single `Option` discriminant test.
    pub fn span_open(&mut self, name: &'static str) {
        if let Some(trace) = &mut self.trace {
            trace.open(name, self.total_bytes_sent);
        }
    }

    /// Closes the innermost span, which must be `name`. No-op when
    /// tracing is disabled.
    pub fn span_close(&mut self, name: &'static str) {
        if let Some(trace) = &mut self.trace {
            trace.close(name, self.total_bytes_sent, None);
        }
    }

    /// Records a communication-layer staging copy (a chunk that could
    /// not be moved out of its source buffer and had to be copied into
    /// a fresh allocation before sending).
    pub fn note_comm_alloc(&mut self) {
        self.comm_allocs += 1;
    }

    /// Communication-layer staging copies made on behalf of this rank.
    pub fn comm_allocs(&self) -> u64 {
        self.comm_allocs
    }

    /// Records `n` buffers the payload freelist declined or dropped to
    /// honour its retained-bytes ceiling.
    pub fn note_pool_evictions(&mut self, n: u64) {
        self.pool_evictions += n;
    }

    /// Buffers evicted from the payload freelist under its retained-bytes
    /// ceiling. A steadily growing count under a fixed workload means the
    /// ceiling is below the working set; growth only under shape churn is
    /// the cap doing its job.
    pub fn pool_evictions(&self) -> u64 {
        self.pool_evictions
    }

    /// Publishes an FFT plan-cache counter snapshot into this ledger.
    ///
    /// The plan cache is process-global (shared by every rank of a
    /// simulated cluster), so these are **gauges**, not per-rank deltas:
    /// each call folds the latest snapshot in monotonically (max), and
    /// cross-rank aggregation takes the max rather than the sum. The SOI
    /// pipeline republishes the global cache counters at the end of every
    /// superstep.
    pub fn note_plan_cache(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.plan_cache_hits = self.plan_cache_hits.max(hits);
        self.plan_cache_misses = self.plan_cache_misses.max(misses);
        self.plan_cache_evictions = self.plan_cache_evictions.max(evictions);
    }

    /// Plan-cache lookups served without building (latest snapshot seen).
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_cache_hits
    }

    /// Plan-cache lookups that built a plan (latest snapshot seen). A
    /// steadily growing count under a fixed workload means plans are being
    /// evicted and rebuilt — raise the cache capacity or stop churning
    /// shapes.
    pub fn plan_cache_misses(&self) -> u64 {
        self.plan_cache_misses
    }

    /// Plans dropped by the cache's LRU bound (latest snapshot seen).
    pub fn plan_cache_evictions(&self) -> u64 {
        self.plan_cache_evictions
    }

    /// Records a serving-layer job shed before execution (expired deadline
    /// or collective shed decision at a batch boundary).
    pub fn note_job_shed(&mut self) {
        self.jobs_shed += 1;
    }

    /// Serving-layer jobs shed before execution on this rank's engine.
    pub fn jobs_shed(&self) -> u64 {
        self.jobs_shed
    }

    /// Records a serving-layer batch retry (a transient failure absorbed
    /// by re-running in-flight work after backoff).
    pub fn note_serve_retry(&mut self) {
        self.serve_retries += 1;
    }

    /// Serving-layer batch retries absorbed on this rank's engine.
    pub fn serve_retries(&self) -> u64 {
        self.serve_retries
    }

    /// Accumulates seconds a serving-layer job spent queued before its
    /// batch was dispatched on this rank.
    pub fn add_queue_wait(&mut self, seconds: f64) {
        self.queue_wait_s += seconds;
    }

    /// Total serving-layer queue-wait seconds accumulated on this rank.
    pub fn queue_wait_seconds(&self) -> f64 {
        self.queue_wait_s
    }

    /// Folds a pool-worker busy snapshot into this ledger (busy seconds
    /// and task count from an instrumented `soifft_par::Pool`).
    pub fn add_pool_metrics(&mut self, busy_s: f64, tasks: u64) {
        self.pool_busy_s += busy_s;
        self.pool_tasks += tasks;
    }

    /// Accumulated pool-worker busy seconds.
    pub fn pool_busy_seconds(&self) -> f64 {
        self.pool_busy_s
    }

    /// Accumulated pool-worker task executions.
    pub fn pool_tasks(&self) -> u64 {
        self.pool_tasks
    }

    /// Total simulated seconds across phases named `name` (0.0 if no model
    /// was active).
    pub fn sim_seconds_in(&self, name: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .filter_map(|r| r.sim_seconds)
            .sum()
    }

    /// Times `f` as a named phase and returns its result.
    pub fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t = self.phase_start();
        let out = f();
        self.phase_end(name, t);
        out
    }

    /// All phase records in execution order.
    pub fn records(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// Total bytes sent by this rank across all phases.
    pub fn total_bytes_sent(&self) -> u64 {
        self.total_bytes_sent
    }

    /// Total messages sent by this rank.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Link-layer retransmissions forced by injected drops/corruption.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Arriving messages discarded for checksum mismatch.
    pub fn corrupt_discarded(&self) -> u64 {
        self.corrupt_discarded
    }

    /// Arriving messages discarded as duplicates.
    pub fn duplicates_discarded(&self) -> u64 {
        self.duplicates_discarded
    }

    /// Arriving messages discarded as stale (sent by a dead incarnation
    /// from an earlier supervision epoch).
    pub fn stale_discarded(&self) -> u64 {
        self.stale_discarded
    }

    /// Invariant violations flagged by the validation layer (ABFT
    /// detections of compute-side corruption).
    pub fn sdc_detected(&self) -> u64 {
        self.sdc_detected
    }

    /// Detections repaired by localized re-execution.
    pub fn sdc_repaired(&self) -> u64 {
        self.sdc_repaired
    }

    /// Spurious detections (flagged, then re-verified clean unchanged).
    pub fn sdc_false_positives(&self) -> u64 {
        self.sdc_false_positives
    }

    /// How the run this ledger belongs to ended, recovery-wise (set by the
    /// supervised drivers).
    pub fn recovery(&self) -> RecoveryOutcome {
        self.recovery
    }

    /// Stamps the run's recovery outcome onto this ledger.
    pub fn set_recovery(&mut self, outcome: RecoveryOutcome) {
        self.recovery = outcome;
    }

    /// Merges another ledger into this one: phase records are appended in
    /// order, counters summed, watermarks maxed. Used when a surviving
    /// rank does a dead rank's work in degraded mode and its accounting
    /// must land somewhere. Cost model and recovery outcome are untouched.
    pub fn absorb(&mut self, other: &CommStats) {
        self.records.extend(other.records.iter().cloned());
        self.total_bytes_sent += other.total_bytes_sent;
        self.messages_sent += other.messages_sent;
        self.retransmits += other.retransmits;
        self.corrupt_discarded += other.corrupt_discarded;
        self.duplicates_discarded += other.duplicates_discarded;
        self.stale_discarded += other.stale_discarded;
        self.sdc_detected += other.sdc_detected;
        self.sdc_repaired += other.sdc_repaired;
        self.sdc_false_positives += other.sdc_false_positives;
        self.queue_high_watermark = self.queue_high_watermark.max(other.queue_high_watermark);
        self.comm_allocs += other.comm_allocs;
        self.pool_busy_s += other.pool_busy_s;
        self.pool_tasks += other.pool_tasks;
        self.pool_evictions += other.pool_evictions;
        // Plan-cache counters are process-global gauges: max, not sum.
        self.plan_cache_hits = self.plan_cache_hits.max(other.plan_cache_hits);
        self.plan_cache_misses = self.plan_cache_misses.max(other.plan_cache_misses);
        self.plan_cache_evictions = self.plan_cache_evictions.max(other.plan_cache_evictions);
        self.jobs_shed += other.jobs_shed;
        self.serve_retries += other.serve_retries;
        self.queue_wait_s += other.queue_wait_s;
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeats_missed += other.heartbeats_missed;
        self.recv_timeouts += other.recv_timeouts;
        self.link_reconnects += other.link_reconnects;
        self.link_partition_s += other.link_partition_s;
        if self.bytes_by_peer.len() < other.bytes_by_peer.len() {
            self.bytes_by_peer.resize(other.bytes_by_peer.len(), 0);
        }
        for (mine, theirs) in self.bytes_by_peer.iter_mut().zip(&other.bytes_by_peer) {
            *mine += theirs;
        }
        if let (Some(mine), Some(theirs)) = (&mut self.trace, &other.trace) {
            mine.absorb(theirs);
        }
    }

    /// Deepest destination queue this rank ever observed right after one of
    /// its sends (bounded clusters: never exceeds the configured capacity).
    pub fn queue_high_watermark(&self) -> usize {
        self.queue_high_watermark
    }

    /// Sum of the durations of all phases with `name`.
    pub fn seconds_in(&self, name: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.seconds)
            .sum()
    }

    /// Number of phases recorded with `name` (e.g. counting all-to-alls to
    /// verify the Fig 1 vs Fig 2 structure).
    pub fn count_of(&self, name: &str) -> usize {
        self.records.iter().filter(|r| r.name == name).count()
    }

    /// Bytes sent during phases with `name`.
    pub fn bytes_in(&self, name: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.bytes_sent)
            .sum()
    }

    /// Retransmissions that occurred during phases with `name` (the
    /// per-phase attribution; [`CommStats::retransmits`] is the global
    /// total including any outside a phase).
    pub fn retransmits_in(&self, name: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.retransmits)
            .sum()
    }

    /// Pool evictions charged during phases with `name`.
    pub fn pool_evictions_in(&self, name: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.pool_evictions)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger() {
        let s = CommStats::default();
        assert_eq!(s.total_bytes_sent(), 0);
        assert_eq!(s.messages_sent(), 0);
        assert!(s.records().is_empty());
        assert_eq!(s.seconds_in("anything"), 0.0);
        assert_eq!(s.count_of("anything"), 0);
    }

    #[test]
    fn bytes_attributed_to_open_phase() {
        let mut s = CommStats::default();
        s.add_bytes_sent(100); // outside any phase
        let t = s.phase_start();
        s.add_bytes_sent(40);
        s.add_bytes_sent(2);
        s.phase_end("exchange", t);
        assert_eq!(s.total_bytes_sent(), 142);
        assert_eq!(s.messages_sent(), 3);
        assert_eq!(s.bytes_in("exchange"), 42);
        assert_eq!(s.count_of("exchange"), 1);
    }

    #[test]
    fn timed_records_duration() {
        let mut s = CommStats::default();
        let v = s.timed("compute", || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            7
        });
        assert_eq!(v, 7);
        assert!(
            s.seconds_in("compute") >= 0.004,
            "{}",
            s.seconds_in("compute")
        );
        assert_eq!(s.records()[0].name, "compute");
    }

    #[test]
    fn cost_model_produces_simulated_times() {
        let mut s = CommStats::default();
        s.set_cost_model(CostModel {
            bytes_per_s: 1000.0,
            latency_s: 0.5,
        });
        let t = s.phase_start();
        s.add_bytes_sent(2000);
        s.phase_end("exchange", t);
        // 0.5 s latency + 2000/1000 s transfer.
        assert!((s.sim_seconds_in("exchange") - 2.5).abs() < 1e-12);
        // Phases without traffic get no simulated time from the comm model.
        let t = s.phase_start();
        s.phase_end("compute", t);
        assert_eq!(s.sim_seconds_in("compute"), 0.0);
        assert!(s.records()[1].sim_seconds.is_none());
    }

    #[test]
    fn explicit_sim_for_compute_phases() {
        let mut s = CommStats::default();
        let t = s.phase_start();
        s.phase_end_sim("local-fft", t, 0.125);
        assert_eq!(s.sim_seconds_in("local-fft"), 0.125);
        assert_eq!(s.records()[0].sim_seconds, Some(0.125));
    }

    #[test]
    fn no_model_means_no_sim() {
        let mut s = CommStats::default();
        let t = s.phase_start();
        s.add_bytes_sent(100);
        s.phase_end("exchange", t);
        assert!(s.records()[0].sim_seconds.is_none());
        assert_eq!(s.sim_seconds_in("exchange"), 0.0);
    }

    #[test]
    fn resilience_counters_accumulate() {
        let mut s = CommStats::default();
        assert_eq!(s.retransmits(), 0);
        assert_eq!(s.corrupt_discarded(), 0);
        assert_eq!(s.duplicates_discarded(), 0);
        assert_eq!(s.queue_high_watermark(), 0);
        s.note_retransmit();
        s.note_retransmit();
        s.note_corrupt_discarded();
        s.note_duplicate_discarded();
        s.note_queue_depth(3);
        s.note_queue_depth(7);
        s.note_queue_depth(2); // watermark keeps the max
        assert_eq!(s.retransmits(), 2);
        assert_eq!(s.corrupt_discarded(), 1);
        assert_eq!(s.duplicates_discarded(), 1);
        assert_eq!(s.queue_high_watermark(), 7);
    }

    #[test]
    fn absorb_merges_ledgers() {
        let mut a = CommStats::default();
        a.timed("local-fft", || {});
        a.add_bytes_sent(100);
        a.note_retransmit();
        a.note_queue_depth(3);
        let mut b = CommStats::default();
        b.timed("degraded-recover", || {});
        b.add_bytes_sent(50);
        b.note_stale_discarded();
        b.note_queue_depth(9);
        b.note_sdc_detected();
        b.note_sdc_repaired();
        a.absorb(&b);
        assert_eq!(a.records().len(), 2);
        assert_eq!(a.records()[1].name, "degraded-recover");
        assert_eq!(a.total_bytes_sent(), 150);
        assert_eq!(a.messages_sent(), 2);
        assert_eq!(a.retransmits(), 1);
        assert_eq!(a.stale_discarded(), 1);
        assert_eq!(a.queue_high_watermark(), 9);
        assert_eq!(a.sdc_detected(), 1);
        assert_eq!(a.sdc_repaired(), 1);
    }

    #[test]
    fn sdc_counters_accumulate() {
        let mut s = CommStats::default();
        assert_eq!(s.sdc_detected(), 0);
        assert_eq!(s.sdc_repaired(), 0);
        assert_eq!(s.sdc_false_positives(), 0);
        s.note_sdc_detected();
        s.note_sdc_detected();
        s.note_sdc_repaired();
        s.note_sdc_false_positive();
        assert_eq!(s.sdc_detected(), 2);
        assert_eq!(s.sdc_repaired(), 1);
        assert_eq!(s.sdc_false_positives(), 1);
    }

    #[test]
    fn clear_cost_model_stops_simulated_time() {
        let mut s = CommStats::default();
        s.set_cost_model(CostModel {
            bytes_per_s: 1000.0,
            latency_s: 0.5,
        });
        let t = s.phase_start();
        s.add_bytes_sent(500);
        s.phase_end("exchange", t);
        assert!(s.records()[0].sim_seconds.is_some());
        s.clear_cost_model();
        let t = s.phase_start();
        s.add_bytes_sent(500);
        s.phase_end("exchange", t);
        assert!(
            s.records()[1].sim_seconds.is_none(),
            "cleared model must not produce simulated time"
        );
    }

    #[test]
    fn comm_alloc_and_pool_counters_accumulate_and_absorb() {
        let mut a = CommStats::default();
        a.note_comm_alloc();
        a.add_pool_metrics(0.25, 4);
        let mut b = CommStats::default();
        b.note_comm_alloc();
        b.note_comm_alloc();
        b.add_pool_metrics(0.5, 6);
        a.absorb(&b);
        assert_eq!(a.comm_allocs(), 3);
        assert!((a.pool_busy_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(a.pool_tasks(), 10);
    }

    #[test]
    fn serve_counters_accumulate_and_absorb() {
        let mut a = CommStats::default();
        assert_eq!(a.pool_evictions(), 0);
        assert_eq!(a.jobs_shed(), 0);
        assert_eq!(a.serve_retries(), 0);
        assert_eq!(a.queue_wait_seconds(), 0.0);
        a.note_pool_evictions(2);
        a.note_pool_evictions(0); // declined nothing: no change
        a.note_job_shed();
        a.add_queue_wait(0.125);
        let mut b = CommStats::default();
        b.note_pool_evictions(3);
        b.note_job_shed();
        b.note_serve_retry();
        b.add_queue_wait(0.25);
        a.absorb(&b);
        assert_eq!(a.pool_evictions(), 5);
        assert_eq!(a.jobs_shed(), 2);
        assert_eq!(a.serve_retries(), 1);
        assert!((a.queue_wait_seconds() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn clear_records_keeps_counters() {
        let mut s = CommStats::default();
        s.timed("fft", || {});
        s.add_bytes_sent(64);
        s.clear_records();
        assert!(s.records().is_empty());
        assert_eq!(s.total_bytes_sent(), 64);
        // Cleared log keeps capacity: the next append re-uses it.
        s.timed("fft", || {});
        assert_eq!(s.count_of("fft"), 1);
    }

    #[test]
    fn recovery_outcome_round_trips() {
        let mut s = CommStats::default();
        assert_eq!(s.recovery(), RecoveryOutcome::None);
        s.set_recovery(RecoveryOutcome::Recovered {
            restarts: 2,
            recomputed_segments: 4,
        });
        assert_eq!(
            s.recovery(),
            RecoveryOutcome::Recovered {
                restarts: 2,
                recomputed_segments: 4
            }
        );
    }

    #[test]
    fn retransmits_and_evictions_attributed_to_their_phase() {
        let mut s = CommStats::default();
        s.note_retransmit(); // outside any phase: attributed to none
        let t = s.phase_start();
        s.note_retransmit();
        s.note_retransmit();
        s.note_pool_evictions(3);
        s.phase_end("all-to-all", t);
        let t = s.phase_start();
        s.note_pool_evictions(1);
        s.phase_end("ghost", t);
        assert_eq!(s.retransmits(), 3, "global total keeps everything");
        assert_eq!(s.retransmits_in("all-to-all"), 2);
        assert_eq!(s.retransmits_in("ghost"), 0);
        assert_eq!(s.pool_evictions_in("all-to-all"), 3);
        assert_eq!(s.pool_evictions_in("ghost"), 1);
        assert_eq!(s.records()[0].retransmits, 2);
        assert_eq!(s.records()[1].pool_evictions, 1);
    }

    #[test]
    fn heartbeat_and_timeout_counters_accumulate_and_absorb() {
        let mut a = CommStats::default();
        assert_eq!(a.heartbeats_sent(), 0);
        assert_eq!(a.heartbeats_missed(), 0);
        assert_eq!(a.recv_timeouts(), 0);
        a.note_heartbeats(10, 1);
        a.note_recv_timeout();
        let mut b = CommStats::default();
        b.note_heartbeats(5, 0);
        b.note_recv_timeout();
        b.note_recv_timeout();
        a.absorb(&b);
        assert_eq!(a.heartbeats_sent(), 15);
        assert_eq!(a.heartbeats_missed(), 1);
        assert_eq!(a.recv_timeouts(), 3);
    }

    #[test]
    fn link_counters_accumulate_and_absorb() {
        use crate::transport::LinkDelta;
        let mut a = CommStats::default();
        assert_eq!(a.link_reconnects(), 0);
        assert_eq!(a.link_partition_seconds(), 0.0);
        assert!(a.bytes_by_peer().is_empty());
        a.note_link_activity(&LinkDelta {
            reconnects: 2,
            partition_seconds: 0.5,
            bytes_by_peer: vec![10, 20],
        });
        a.note_link_activity(&LinkDelta {
            reconnects: 1,
            partition_seconds: 0.25,
            bytes_by_peer: vec![1, 2, 3], // a wider delta grows the ledger
        });
        assert_eq!(a.link_reconnects(), 3);
        assert!((a.link_partition_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(a.bytes_by_peer(), &[11, 22, 3]);
        let mut b = CommStats::default();
        b.note_link_activity(&LinkDelta {
            reconnects: 4,
            partition_seconds: 1.0,
            bytes_by_peer: vec![100, 0, 0, 7],
        });
        a.absorb(&b);
        assert_eq!(a.link_reconnects(), 7);
        assert!((a.link_partition_seconds() - 1.75).abs() < 1e-12);
        assert_eq!(a.bytes_by_peer(), &[111, 22, 3, 7]);
    }

    #[test]
    fn repeated_phases_accumulate() {
        let mut s = CommStats::default();
        for _ in 0..3 {
            s.timed("fft", || {});
        }
        s.timed("conv", || {});
        assert_eq!(s.count_of("fft"), 3);
        assert_eq!(s.count_of("conv"), 1);
        assert_eq!(s.records().len(), 4);
    }
}
