//! Simulated message-passing cluster runtime.
//!
//! The paper runs on 512 Stampede nodes over FDR InfiniBand with Intel MPI;
//! this crate is the substitution substrate (DESIGN.md §1): it runs `P`
//! ranks as OS threads and gives them an MPI-flavoured interface —
//! point-to-point sends with tags, barriers, and the collectives the two
//! distributed FFT algorithms need. The *algorithmic* communication
//! structure (message counts, sizes, and who-talks-to-whom) is exactly the
//! paper's; only the transport is threads + channels instead of
//! InfiniBand.
//!
//! Every rank keeps a [`CommStats`] ledger of bytes and wall time per named
//! phase, which is how the `fig1_trace` / `fig2_trace` binaries show the
//! "3 all-to-alls vs 1 all-to-all + ghost exchange" contrast, and how
//! functional runs are cross-checked against the analytic model's
//! byte-volume predictions.
//!
//! # Fault model (DESIGN.md §1, "Fault model")
//!
//! A real 512-node run sees dropped packets, stragglers, and node deaths;
//! the runtime therefore layers a fault-injection and recovery stack on the
//! perfect thread-and-channel transport:
//!
//! * [`FaultPlan`] / [`FaultInjector`] ([`fault`]) — seeded, deterministic
//!   injection of drops, delays, duplicates, bit corruption, and targeted
//!   rank crashes, installed per-[`Comm`] by [`Cluster::run_with`] or
//!   [`run_cluster_with_faults`].
//! * Link-layer reliability — every wire message carries a sequence number
//!   and (under injection) a checksum; [`Comm::try_send`] retransmits
//!   dropped/corrupted copies with exponential backoff up to a
//!   [`RetryPolicy`] budget, and the receive path discards corrupt copies
//!   and duplicates.
//! * Typed failures ([`resilience`]) — [`CommError`] replaces the seed
//!   runtime's panics; the classic infallible API ([`Comm::send`],
//!   [`Comm::recv`], [`Comm::barrier`]) survives as thin wrappers that
//!   convert errors into rank-fatal panics the launcher captures.
//! * Crash containment — [`Cluster::run_with`] wraps every rank in
//!   `catch_unwind` and returns per-rank [`RankOutcome`]s; a dying rank
//!   cancels the shared [`CancellableBarrier`] and flips a cluster-health
//!   flag, so survivors blocked in `recv`/`barrier` unblock with
//!   [`CommError::PeerFailed`] instead of deadlocking.
//! * Coordinated retry — [`Comm::all_to_all_resilient`] runs the exchange
//!   in rounds on fresh tags with an end-of-round consensus, absorbing
//!   transient faults that outlive the link-layer budget.
//! * Checkpoint/restart ([`checkpoint`], [`supervisor`], DESIGN.md §1c) —
//!   a [`Supervisor`] re-launches the whole rank set after a crash (bounded
//!   restarts with backoff); recoverable pipelines snapshot phase
//!   boundaries into a shared [`CheckpointStore`] and resume from the last
//!   globally committed phase. Every wire message carries the sender
//!   incarnation's *generation*, so in-flight traffic from a dead epoch is
//!   discarded on arrival instead of corrupting the retry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fault;
pub mod pcie;
pub mod proxy;
pub mod resilience;
pub mod stats;
pub mod supervisor;
pub mod trace;
pub mod transport;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use soifft_num::c64;

pub use checkpoint::{CheckpointError, CheckpointStore};
pub use fault::{
    BitFlipSite, BitFlipSpec, CrashSite, CrashSpec, FaultAction, FaultEvents, FaultInjector,
    FaultPlan,
};
pub use pcie::PcieLink;
pub use proxy::ProxyCore;
pub use resilience::{
    checksum, CancellableBarrier, CommError, ExchangePolicy, FailureDetection, RankOutcome,
    RetryPolicy, ValidationPolicy,
};
pub use stats::{CommStats, CostModel, PhaseRecord, RecoveryOutcome};
pub use supervisor::{HealthMonitor, RecoveryCtx, RestartPolicy, SupervisedRun, Supervisor};
pub use trace::{chrome_trace_json, text_tree, PhaseProfile, RunProfile, TraceConfig, TraceEvent};
pub use transport::{InProcTransport, SendOutcome, Transport, WaitOutcome};

use resilience::{ClusterState, CommFailure, InjectedCrash};

/// How long a blocking receive sleeps per poll slice before re-checking
/// cluster health and its deadline.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// A tagged message between ranks — the unit a [`Transport`] moves.
///
/// Public only so [`Transport`] implementations outside this crate can
/// carry it; the fields stay crate-private (the resilience layer owns
/// their meaning), so foreign code can move messages but not mint or
/// inspect them.
pub struct Message {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    /// Per-sender sequence number (unique per `src`); lets the receiver
    /// discard injected duplicates.
    pub(crate) seq: u64,
    /// FNV-1a checksum of `data` at send time (0 when verification is off);
    /// lets the receiver discard injected corruption.
    pub(crate) checksum: u64,
    /// Supervision epoch of the sending incarnation; receivers discard
    /// messages from generations other than their own, so a respawned
    /// epoch never consumes traffic a dead incarnation left in flight.
    pub(crate) generation: u64,
    pub(crate) data: Vec<c64>,
}

/// Per-rank freelist of recycled message payload buffers, binned by
/// power-of-two capacity class. Buffers acquired here are allocated with
/// capacity rounded up to the class size, so a recycled buffer always
/// satisfies any later request of its class — the invariant that makes
/// the steady-state exchange allocation-free: every send stages from the
/// pool, every consumed receive is recycled back, and after warmup the
/// two flows balance. Misses are counted in the [`CommStats`]
/// `comm_allocs` ledger by the callers that stage message payloads.
///
/// Retention is bounded two ways: each class keeps at most
/// [`POOL_BIN_DEPTH`] buffers, and the pool as a whole retains at most
/// `max_retained_bytes` of capacity ([`POOL_MAX_RETAINED_BYTES`] by
/// default, tunable via [`ClusterConfig::pool_max_retained_bytes`]).
/// Without the byte cap, a workload that churns through many distinct
/// transform shapes (a multi-tenant server, or an adversary cycling
/// request sizes) would leave `POOL_BIN_DEPTH` warm buffers in *every*
/// capacity class it ever touched — resident memory growing with the
/// number of shapes seen, not the working set. When admitting a buffer
/// would exceed the cap, the pool evicts from its largest class first
/// (big stale buffers are the cheapest to re-allocate relative to the
/// memory they pin); evictions are reported to the caller so the
/// [`CommStats`] ledger can expose them.
#[derive(Debug)]
struct BufferPool {
    bins: Vec<Vec<Vec<c64>>>,
    /// Total capacity bytes currently retained across all bins.
    retained_bytes: usize,
    /// Retention ceiling in bytes (0 = pool nothing).
    max_retained_bytes: usize,
}

/// Recycled buffers kept per capacity class; beyond this the surplus is
/// dropped (bounds pool memory under bursty exchanges).
const POOL_BIN_DEPTH: usize = 32;

/// Default ceiling on the capacity bytes a rank's [`BufferPool`] retains
/// (64 MiB). Generous for any single transform shape; what it actually
/// bounds is the *accumulation across shapes* under churn.
pub const POOL_MAX_RETAINED_BYTES: usize = 64 << 20;

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::with_limit(POOL_MAX_RETAINED_BYTES)
    }
}

impl BufferPool {
    /// A pool retaining at most `max_retained_bytes` of buffer capacity.
    fn with_limit(max_retained_bytes: usize) -> Self {
        BufferPool {
            bins: Vec::new(),
            retained_bytes: 0,
            max_retained_bytes,
        }
    }

    /// Class that guarantees capacity for `len`: smallest k with 2^k ≥ len.
    fn class_for_len(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Class a buffer of capacity `cap` can serve: largest k with 2^k ≤ cap.
    fn class_for_cap(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// Capacity bytes a pooled buffer of capacity `cap` pins.
    fn bytes_for(cap: usize) -> usize {
        cap * std::mem::size_of::<c64>()
    }

    /// Pops an empty buffer with capacity ≥ `len`, if one is pooled.
    fn take(&mut self, len: usize) -> Option<Vec<c64>> {
        let k = Self::class_for_len(len);
        let mut buf = self.bins.get_mut(k)?.pop()?;
        self.retained_bytes -= Self::bytes_for(buf.capacity());
        buf.clear();
        Some(buf)
    }

    /// Returns `buf` to its capacity class, evicting from the largest
    /// class first when retaining it would exceed the byte ceiling.
    /// Buffers dropped to honour the ceiling (including `buf` itself when
    /// it alone exceeds the budget, and class-depth overflow) are counted
    /// in the returned eviction tally.
    fn give(&mut self, buf: Vec<c64>) -> u64 {
        let cap = buf.capacity();
        if cap == 0 {
            return 0;
        }
        let incoming = Self::bytes_for(cap);
        if incoming > self.max_retained_bytes {
            return 1;
        }
        let mut evicted = 0;
        while self.retained_bytes + incoming > self.max_retained_bytes {
            let victim_bin = self
                .bins
                .iter_mut()
                .rev()
                .find(|bin| !bin.is_empty())
                .expect("retained_bytes > 0 implies a non-empty bin");
            let victim = victim_bin.pop().expect("bin checked non-empty");
            self.retained_bytes -= Self::bytes_for(victim.capacity());
            evicted += 1;
        }
        let k = Self::class_for_cap(cap);
        if self.bins.len() <= k {
            self.bins.resize_with(k + 1, Vec::new);
        }
        let bin = &mut self.bins[k];
        if bin.len() < POOL_BIN_DEPTH {
            self.retained_bytes += incoming;
            bin.push(buf);
            evicted
        } else {
            evicted + 1
        }
    }
}

/// One rank's endpoint into the cluster: rank id, peers, and statistics.
///
/// `Comm` is the backend-agnostic resilience layer — pending map,
/// duplicate/checksum filtering, fault injection, retry, the buffer
/// pool, statistics — over a pluggable [`Transport`] that does the
/// actual moving of [`Message`]s (threads + channels by default,
/// real OS processes via `transport::proc`).
pub struct Comm {
    rank: usize,
    size: usize,
    /// The message-moving backend (delivery, failure detection, barrier).
    pub(crate) transport: Box<dyn Transport>,
    pending: HashMap<(usize, u64), Vec<Vec<c64>>>,
    /// Sequence numbers already accepted, per source (duplicate filter;
    /// only populated when verification is on).
    seen: HashMap<usize, HashSet<u64>>,
    injector: Option<FaultInjector>,
    /// Whether wire messages carry/verify checksums and sequence filtering
    /// (on exactly when a fault plan is installed).
    pub(crate) verify: bool,
    retry: RetryPolicy,
    recv_deadline_default: Duration,
    pub(crate) next_seq: u64,
    /// Monotone counter agreeing across ranks (collective calls are
    /// collective), isolating each resilient exchange's tag space.
    exchange_epoch: u64,
    /// Supervision epoch of this incarnation (0 outside supervised runs);
    /// stamped on every outgoing message and checked on every arrival.
    pub(crate) generation: u64,
    pub(crate) stats: CommStats,
    /// Freelist of recycled payload buffers (see [`BufferPool`]).
    pool: BufferPool,
}

/// Warm `(src, tag)` queues kept in the pending map before the map is
/// compacted; empty queues are retained below this so steady-state
/// exchanges re-fill an existing entry instead of re-allocating it, while
/// resilient runs (which mint fresh epoch tags) still get garbage-collected.
const PENDING_GC_LEN: usize = 512;

impl Comm {
    /// Builds an endpoint over an externally-constructed [`Transport`] —
    /// how a child *process* of the multi-process backend gets its
    /// `Comm` (the in-process launcher builds its own). Fault injection
    /// is off (faults are real in that regime); `config` supplies the
    /// retry policy, receive deadline, and pool ceiling.
    pub fn from_transport(transport: Box<dyn Transport>, config: &ClusterConfig) -> Comm {
        let rank = transport.rank();
        let size = transport.size();
        let generation = transport.generation();
        Comm {
            rank,
            size,
            transport,
            pending: HashMap::new(),
            seen: HashMap::new(),
            injector: None,
            verify: false,
            retry: config.retry,
            recv_deadline_default: config.recv_deadline,
            next_seq: 0,
            exchange_epoch: 0,
            generation,
            stats: CommStats::default(),
            pool: BufferPool::with_limit(config.pool_max_retained_bytes),
        }
    }

    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The statistics ledger accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mutable access to the ledger (for recording compute phases).
    pub fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    /// The injected-fault counters for this rank, when a [`FaultPlan`] is
    /// installed.
    pub fn fault_events(&self) -> Option<FaultEvents> {
        self.injector.as_ref().map(|i| i.events())
    }

    /// Panics with an [`InjectedCrash`] if the installed plan kills this
    /// rank at `site`; marks the cluster unhealthy first so survivors
    /// unblock immediately.
    fn maybe_crash(&self, site: CrashSite) {
        if let Some(inj) = &self.injector {
            if inj.crash_due(site) {
                self.die();
            }
        }
    }

    /// As [`Comm::maybe_crash`], for the send-count trigger.
    fn maybe_crash_sends(&self) {
        if let Some(inj) = &self.injector {
            if inj.crash_due_sends() {
                self.die();
            }
        }
    }

    /// Applies the installed fault plan's bit flip to `data` if the plan
    /// targets this rank and `site`, returning the flipped element index.
    /// Pipelines call this at each silent-data-corruption site *after* the
    /// phase's integrity guard (checksum or energy) has been computed, so
    /// the flip models memory corruption the link layer never observes.
    /// A no-op (`None`) without a matching plan or once the flip budget is
    /// spent.
    pub fn inject_bit_flip(&mut self, site: BitFlipSite, data: &mut [c64]) -> Option<usize> {
        self.injector
            .as_mut()
            .and_then(|i| i.apply_bit_flip(site, data))
    }

    /// Whether the installed fault plan still has a pending bit flip for
    /// this rank at `site`. Lets pipelines avoid defensive copies (e.g. a
    /// pre-image clone for write-time checkpoint verification) on the vast
    /// majority of ranks where no flip will ever fire.
    pub fn flip_planned(&self, site: BitFlipSite) -> bool {
        self.injector.as_ref().is_some_and(|i| i.flip_planned(site))
    }

    /// Fires the installed fault plan's [`CrashSite::Phase`] trigger for
    /// the named compute phase. Pipelines call this on entering each phase
    /// so a chaos plan can kill a rank *between* collectives — the regime
    /// where only checkpoint/restart (not link-layer retry) saves the run.
    /// A no-op unless the plan targets exactly this rank and phase.
    pub fn crash_point(&self, phase: &'static str) {
        self.maybe_crash(CrashSite::Phase(phase));
    }

    fn die(&self) -> ! {
        self.transport.announce_death(self.rank);
        // resume_unwind, not panic_any: an injected crash is part of the
        // fault plan, so it unwinds silently instead of invoking the
        // process panic hook and printing a backtrace.
        std::panic::resume_unwind(Box::new(InjectedCrash { rank: self.rank }))
    }

    /// Sends `data` to `dst` with `tag`. Non-blocking on unbounded
    /// channels; on a bounded cluster ([`ClusterConfig::capacity`]) it
    /// applies backpressure, blocking while the destination queue is full.
    ///
    /// Thin infallible wrapper over [`Comm::try_send`]: a typed failure
    /// becomes a rank-fatal panic that [`Cluster::run_with`] captures as a
    /// [`RankOutcome::Err`].
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<c64>) {
        if let Err(e) = self.try_send(dst, tag, data) {
            resilience::raise(e)
        }
    }

    /// Fallible send with link-layer fault handling.
    ///
    /// Under an installed [`FaultPlan`], each delivery attempt may be
    /// dropped, delayed, duplicated, or bit-corrupted; dropped and
    /// corrupted attempts are retransmitted with exponential backoff up to
    /// [`RetryPolicy::max_attempts`]. Self-messages short-circuit into the
    /// local queue and are exempt from injection (they never cross the
    /// wire).
    ///
    /// # Errors
    /// * [`CommError::PeerFailed`] — `dst` (or, under backpressure, any
    ///   rank) is dead.
    /// * [`CommError::Timeout`] — retransmit budget exhausted, all copies
    ///   dropped.
    /// * [`CommError::ChecksumMismatch`] — budget exhausted and at least
    ///   one corrupted copy reached the wire.
    /// * [`CommError::Shutdown`] — the destination endpoint is gone.
    /// * [`CommError::InvalidArgument`] — `dst` is not a rank of this
    ///   cluster.
    #[must_use = "a failed send leaves the collective incomplete; handle or escalate the error"]
    pub fn try_send(&mut self, dst: usize, tag: u64, data: Vec<c64>) -> Result<(), CommError> {
        if dst >= self.size {
            return Err(CommError::InvalidArgument {
                what: "destination rank out of range",
            });
        }
        self.maybe_crash_sends();
        let bytes = (data.len() * std::mem::size_of::<c64>()) as u64;
        self.stats.add_bytes_sent(bytes);
        if dst == self.rank {
            // Self-message: short-circuit into the pending map.
            self.pending.entry((self.rank, tag)).or_default().push(data);
            return Ok(());
        }
        if let Some(pf) = self.transport.peer_failure(dst) {
            return Err(pf.into_error());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let sum = if self.verify { checksum(&data) } else { 0 };
        let src = self.rank;
        let generation = self.generation;
        let mut wired_corrupt = false;
        let mut attempt: u32 = 0;
        loop {
            let action = match self.injector.as_mut() {
                Some(inj) => inj.action(attempt),
                None => FaultAction::Deliver,
            };
            match action {
                FaultAction::Deliver => {
                    self.wire(
                        dst,
                        Message {
                            src,
                            tag,
                            seq,
                            checksum: sum,
                            generation,
                            data,
                        },
                    )?;
                    break;
                }
                FaultAction::Delay(d) => {
                    std::thread::sleep(d);
                    self.wire(
                        dst,
                        Message {
                            src,
                            tag,
                            seq,
                            checksum: sum,
                            generation,
                            data,
                        },
                    )?;
                    break;
                }
                FaultAction::Duplicate => {
                    let copy = data.clone();
                    self.wire(
                        dst,
                        Message {
                            src,
                            tag,
                            seq,
                            checksum: sum,
                            generation,
                            data: copy,
                        },
                    )?;
                    // The surplus copy is best-effort: the receiver only
                    // needs the first, and may legitimately tear down its
                    // endpoint before this one lands.
                    let _ = self.wire(
                        dst,
                        Message {
                            src,
                            tag,
                            seq,
                            checksum: sum,
                            generation,
                            data,
                        },
                    );
                    break;
                }
                FaultAction::Corrupt => {
                    let mut bad = data.clone();
                    self.injector
                        .as_mut()
                        .expect("corrupt action implies injector")
                        .corrupt_payload(&mut bad);
                    // The stale checksum makes the receiver discard it.
                    self.wire(
                        dst,
                        Message {
                            src,
                            tag,
                            seq,
                            checksum: sum,
                            generation,
                            data: bad,
                        },
                    )?;
                    wired_corrupt = true;
                    self.stats.note_retransmit();
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        return Err(CommError::ChecksumMismatch { src, tag });
                    }
                    std::thread::sleep(self.retry.backoff(attempt - 1));
                }
                FaultAction::Drop => {
                    self.stats.note_retransmit();
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        return Err(if wired_corrupt {
                            CommError::ChecksumMismatch { src, tag }
                        } else {
                            CommError::Timeout
                        });
                    }
                    std::thread::sleep(self.retry.backoff(attempt - 1));
                }
            }
        }
        if let Some(inj) = self.injector.as_mut() {
            inj.note_send();
        }
        self.stats.note_queue_depth(self.transport.queue_depth(dst));
        Ok(())
    }

    /// Pushes one message onto the destination link, blocking under
    /// backpressure (bounded clusters) with periodic health checks — but
    /// never forever: the stall is bounded by the default receive
    /// deadline, so a destination that silently stops draining yields
    /// [`CommError::Timeout`] instead of a hang.
    fn wire(&mut self, dst: usize, msg: Message) -> Result<(), CommError> {
        let mut msg = msg;
        let end = Instant::now() + self.recv_deadline_default;
        loop {
            match self.transport.try_send(dst, msg) {
                SendOutcome::Sent => return Ok(()),
                SendOutcome::Closed(_) => {
                    // Attribute the closed endpoint to a crash when the
                    // failure detector knows of one — `dst` itself first,
                    // else the root-cause rank (survivors unwind by
                    // dropping their endpoints, which must not masquerade
                    // as an orderly shutdown).
                    return Err(if let Some(pf) = self.transport.peer_failure(dst) {
                        pf.into_error()
                    } else if let Some(pf) = self.transport.failed_peer() {
                        pf.into_error()
                    } else {
                        CommError::Shutdown
                    });
                }
                SendOutcome::Full(m) => {
                    msg = m;
                    if let Some(pf) = self.transport.failed_peer() {
                        return Err(pf.into_error());
                    }
                    if Instant::now() >= end {
                        self.stats.note_recv_timeout();
                        return Err(CommError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Validates and files an arriving wire message: corrupt copies and
    /// duplicates are discarded (counted in the ledger), everything else
    /// joins the pending map.
    fn ingest(&mut self, msg: Message) {
        if msg.generation != self.generation {
            // In-flight traffic from a dead incarnation (or, symmetrically,
            // from a newer epoch this straggler no longer belongs to).
            self.stats.note_stale_discarded();
            return;
        }
        if self.verify {
            if msg.checksum != checksum(&msg.data) {
                self.stats.note_corrupt_discarded();
                return;
            }
            if !self.seen.entry(msg.src).or_default().insert(msg.seq) {
                self.stats.note_duplicate_discarded();
                return;
            }
        }
        self.pending
            .entry((msg.src, msg.tag))
            .or_default()
            .push(msg.data);
    }

    fn take_pending(&mut self, src: usize, tag: u64) -> Option<Vec<c64>> {
        let queue = self.pending.get_mut(&(src, tag))?;
        if queue.is_empty() {
            // Keep the drained entry warm: steady-state exchanges reuse the
            // same (src, tag) keys every iteration, and re-inserting the
            // entry would allocate. Compact only once the map has grown past
            // the warm working set (resilient epochs mint fresh tags).
            if self.pending.len() > PENDING_GC_LEN {
                self.pending.retain(|_, q| !q.is_empty());
            }
            return None;
        }
        Some(queue.remove(0))
    }

    /// Takes a cleared buffer with capacity ≥ `len` from this rank's
    /// freelist, or allocates one (rounded up to the pool's capacity
    /// class) and charges the `comm_allocs` ledger. Message payloads the
    /// transport stages (ghost halos, all-to-all chunks, resilient
    /// retransmit copies) come from here, so a steady-state exchange that
    /// recycles what it receives allocates nothing.
    pub fn acquire_buffer(&mut self, len: usize) -> Vec<c64> {
        if len == 0 {
            return Vec::new();
        }
        match self.pool.take(len) {
            Some(buf) => buf,
            None => {
                self.stats.note_comm_alloc();
                Vec::with_capacity(len.next_power_of_two())
            }
        }
    }

    /// Returns a no-longer-needed payload buffer to this rank's freelist
    /// so a later [`Comm::acquire_buffer`] of its capacity class is served
    /// without allocating. Contents are discarded; zero-capacity buffers
    /// are dropped. Buffers the pool declines under its retained-bytes
    /// ceiling are charged to the `pool_evictions` ledger.
    pub fn recycle_buffer(&mut self, buf: Vec<c64>) {
        let evicted = self.pool.give(buf);
        self.stats.note_pool_evictions(evicted);
    }

    /// Blocks until a message from `src` with `tag` arrives and returns it.
    ///
    /// Thin infallible wrapper over the deadline-based receive path (the
    /// default deadline is [`ClusterConfig::recv_deadline`], generous
    /// enough to be "forever" for healthy runs): a typed failure — peer
    /// death, shutdown, deadline — becomes a rank-fatal panic that
    /// [`Cluster::run_with`] captures.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<c64> {
        let end = Instant::now() + self.recv_deadline_default;
        match self.recv_until(src, tag, end) {
            Ok(data) => data,
            Err(e) => resilience::raise(e),
        }
    }

    /// Receives a message from `src` with `tag`, waiting at most `timeout`.
    ///
    /// # Errors
    /// * [`CommError::Timeout`] — nothing matched within `timeout`.
    /// * [`CommError::PeerFailed`] — a rank died while we would block
    ///   (already-delivered matching messages are still returned first).
    /// * [`CommError::Shutdown`] — every peer endpoint is gone.
    /// * [`CommError::InvalidArgument`] — `src` is not a rank of this
    ///   cluster.
    #[must_use = "a failed receive leaves the collective incomplete; handle or escalate the error"]
    pub fn recv_deadline(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<c64>, CommError> {
        self.recv_until(src, tag, Instant::now() + timeout)
    }

    /// Deadline-based receive against an absolute instant (lets a
    /// collective spread one budget across many receives).
    fn recv_until(&mut self, src: usize, tag: u64, end: Instant) -> Result<Vec<c64>, CommError> {
        if src >= self.size {
            return Err(CommError::InvalidArgument {
                what: "source rank out of range",
            });
        }
        loop {
            if let Some(data) = self.take_pending(src, tag) {
                return Ok(data);
            }
            // Drain everything already delivered before deciding to block.
            let mut progressed = false;
            while let Some(msg) = self.transport.try_recv() {
                self.ingest(msg);
                progressed = true;
            }
            if progressed {
                continue;
            }
            if let Some(pf) = self.transport.failed_peer() {
                return Err(pf.into_error());
            }
            let now = Instant::now();
            if now >= end {
                self.stats.note_recv_timeout();
                return Err(CommError::Timeout);
            }
            let slice = POLL_SLICE.min(end - now);
            match self.transport.recv_wait(slice) {
                WaitOutcome::Message(msg) => self.ingest(msg),
                WaitOutcome::Idle => {}
                WaitOutcome::Closed => {
                    return Err(match self.transport.failed_peer() {
                        Some(pf) => pf.into_error(),
                        None => CommError::Shutdown,
                    })
                }
            }
        }
    }

    /// Non-blocking receive: returns a matching message if one has already
    /// arrived, without waiting (the `MPI_Iprobe + MPI_Recv` pattern used
    /// when polling for pipelined chunks while computing).
    ///
    /// # Panics
    /// If `src` is not a rank of this cluster. (The `Option` return means
    /// "no message yet", which an out-of-range source would silently —
    /// and forever — masquerade as; the fallible receive for probing
    /// questionable arguments is [`Comm::recv_deadline`].)
    pub fn try_recv(&mut self, src: usize, tag: u64) -> Option<Vec<c64>> {
        assert!(src < self.size, "source rank out of range");
        // Drain the link into the pending map without blocking.
        while let Some(msg) = self.transport.try_recv() {
            self.ingest(msg);
        }
        self.take_pending(src, tag)
    }

    /// Combined send + receive (deadlock-free regardless of ordering since
    /// sends never block).
    pub fn send_recv(
        &mut self,
        dst: usize,
        send_tag: u64,
        data: Vec<c64>,
        src: usize,
        recv_tag: u64,
    ) -> Vec<c64> {
        self.send(dst, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Synchronizes all ranks.
    ///
    /// Thin infallible wrapper over [`Comm::try_barrier`]: if a rank died,
    /// the cancelled barrier's [`CommError::PeerFailed`] becomes a
    /// rank-fatal panic captured by the launcher.
    pub fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            resilience::raise(e)
        }
    }

    /// Synchronizes all ranks; `Err(PeerFailed` / `PeerDown)` if any rank
    /// has died (all survivors unblock — no deadlock on a poisoned
    /// barrier), `Err(Timeout)` when the default receive deadline elapses
    /// with the barrier still pending.
    #[must_use = "an unacknowledged barrier failure desynchronizes the ranks; handle the error"]
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        self.maybe_crash(CrashSite::Barrier);
        // Barrier entry is the natural harvest point for the transport's
        // heartbeat plane: every rank passes through periodically, and
        // the counters are phase-attributable from here.
        let hb = self.transport.take_heartbeat_delta();
        self.stats.note_heartbeats(hb.sent, hb.missed);
        let link = self.transport.take_link_delta();
        self.stats.note_link_activity(&link);
        self.transport.barrier(self.recv_deadline_default)
    }

    /// The all-to-all personalized exchange: rank `r` sends `outgoing[d]`
    /// to rank `d` and receives what every rank addressed to `r`, returned
    /// indexed by source. This is the `Perm_{L,N'}` step of SOI and each of
    /// the three exchanges of Cooley–Tukey.
    ///
    /// The whole exchange is recorded as one `"all-to-all"` phase.
    pub fn all_to_all(&mut self, outgoing: Vec<Vec<c64>>) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        self.maybe_crash(CrashSite::AllToAll);
        let t = self.stats.phase_start();
        for (dst, data) in outgoing.into_iter().enumerate() {
            self.send(dst, tags::ALL_TO_ALL, data);
        }
        let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, slot) in incoming.iter_mut().enumerate() {
            *slot = self.recv(src, tags::ALL_TO_ALL);
        }
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// [`Comm::all_to_all`] against caller-owned buffers — the workspace
    /// form of the exchange. Each `outgoing[d]` is moved onto the wire
    /// (left empty); whatever `incoming` held from a previous iteration is
    /// recycled into the pool before the received payloads are pushed, so
    /// an iterated exchange that refills its outgoing buffers from the
    /// pool allocates nothing in steady state. Wire traffic is identical
    /// to [`Comm::all_to_all`].
    pub fn all_to_all_into(&mut self, outgoing: &mut [Vec<c64>], incoming: &mut Vec<Vec<c64>>) {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        self.maybe_crash(CrashSite::AllToAll);
        let t = self.stats.phase_start();
        for (dst, slot) in outgoing.iter_mut().enumerate() {
            let data = std::mem::take(slot);
            self.send(dst, tags::ALL_TO_ALL, data);
        }
        for old in incoming.drain(..) {
            let evicted = self.pool.give(old);
            self.stats.note_pool_evictions(evicted);
        }
        for src in 0..self.size {
            let got = self.recv(src, tags::ALL_TO_ALL);
            incoming.push(got);
        }
        self.stats.phase_end("all-to-all", t);
    }

    /// Fault-tolerant all-to-all: the exchange runs in *rounds* on fresh
    /// tags; after each round the ranks run a small consensus (max-reduce
    /// of a failure flag) and, if anyone failed, everyone retries — up to
    /// [`ExchangePolicy::max_rounds`] rounds, each under
    /// [`ExchangePolicy::deadline`]. Absorbs transient faults that outlive
    /// the link-layer retransmit budget; structural failures (a dead peer)
    /// abort immediately.
    ///
    /// Every rank must call this collectively with the same policy.
    /// Recorded as one `"all-to-all"` phase (even on failure, so partial
    /// ledgers stay meaningful).
    ///
    /// # Errors
    /// The last round's [`CommError`] when the budget is exhausted, the
    /// first structural failure ([`CommError::PeerFailed`] /
    /// [`CommError::Shutdown`]), or [`CommError::InvalidArgument`] for a
    /// wrong buffer count or a round budget of zero / beyond the
    /// per-epoch tag space.
    pub fn all_to_all_resilient(
        &mut self,
        outgoing: &[Vec<c64>],
        policy: &ExchangePolicy,
    ) -> Result<Vec<Vec<c64>>, CommError> {
        if outgoing.len() != self.size {
            return Err(CommError::InvalidArgument {
                what: "need one buffer per rank",
            });
        }
        if policy.max_rounds < 1 {
            return Err(CommError::InvalidArgument {
                what: "need at least one round",
            });
        }
        // 4 tags per round, 256 tag slots per epoch (tags::resilient_tags).
        if policy.max_rounds > 64 {
            return Err(CommError::InvalidArgument {
                what: "round budget exceeds the per-epoch tag space",
            });
        }
        self.maybe_crash(CrashSite::AllToAll);
        let t = self.stats.phase_start();
        let epoch = self.exchange_epoch;
        self.exchange_epoch += 1;
        let mut last_err = CommError::Timeout;
        for round in 0..policy.max_rounds {
            let (data_tag, reduce_tag, bcast_tag) = tags::resilient_tags(epoch, round);
            let end = Instant::now() + policy.deadline;
            let mut local_err: Option<CommError> = None;
            for (dst, payload) in outgoing.iter().enumerate() {
                // Each round posts a pool-staged copy (the caller keeps the
                // originals for potential retransmission next round).
                let mut copy = self.acquire_buffer(payload.len());
                copy.extend_from_slice(payload);
                if let Err(e) = self.try_send(dst, data_tag, copy) {
                    local_err = Some(e);
                    break;
                }
            }
            let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
            if local_err.is_none() {
                for (src, slot) in incoming.iter_mut().enumerate() {
                    match self.recv_until(src, data_tag, end) {
                        Ok(data) => *slot = data,
                        Err(e) => {
                            local_err = Some(e);
                            break;
                        }
                    }
                }
            }
            // Structural failures cannot be retried away.
            if let Some(e) = &local_err {
                if !e.is_transient() {
                    self.stats.phase_end("all-to-all", t);
                    return Err(e.clone());
                }
            }
            // Consensus: retry only if someone failed; its own time budget.
            let flag = if local_err.is_some() { 1.0 } else { 0.0 };
            let c_end = Instant::now() + policy.deadline;
            match self.allreduce_max_until(flag, reduce_tag, bcast_tag, c_end) {
                Ok(any_failed) => {
                    if any_failed == 0.0 {
                        self.stats.phase_end("all-to-all", t);
                        return Ok(incoming);
                    }
                    last_err = local_err.unwrap_or(CommError::Timeout);
                }
                Err(e) => {
                    self.stats.phase_end("all-to-all", t);
                    return Err(e);
                }
            }
        }
        self.stats.phase_end("all-to-all", t);
        Err(last_err)
    }

    /// Ghost exchange with typed failures and bounded retry: like
    /// [`Comm::exchange_ghost`] but returns `Err` instead of panicking.
    ///
    /// Transient faults are retried for up to
    /// [`ExchangePolicy::max_rounds`] rounds: a failed *send* is re-posted
    /// (the receiver only ever needs one copy), while a timed-out *receive*
    /// simply waits another round — so no round can create a stale
    /// duplicate for a later exchange. Structural failures return
    /// immediately. Recorded as one `"ghost"` phase either way.
    ///
    /// # Errors
    /// Besides the transport failures, [`CommError::InvalidArgument`]
    /// when `ghost_len` exceeds the local buffer or the round budget is
    /// zero — misuse a `try_*` API reports, never panics on.
    pub fn try_exchange_ghost(
        &mut self,
        local: &[c64],
        ghost_len: usize,
        policy: &ExchangePolicy,
    ) -> Result<Vec<c64>, CommError> {
        if ghost_len > local.len() {
            return Err(CommError::InvalidArgument {
                what: "ghost larger than local data",
            });
        }
        if policy.max_rounds < 1 {
            return Err(CommError::InvalidArgument {
                what: "need at least one round",
            });
        }
        self.maybe_crash(CrashSite::Ghost);
        let t = self.stats.phase_start();
        let prev = (self.rank + self.size - 1) % self.size;
        let next = (self.rank + 1) % self.size;
        let mut sent = false;
        let mut last = CommError::Timeout;
        for _ in 0..policy.max_rounds {
            if !sent {
                // Staged fresh per attempt from the pool (the transport owns
                // each posted payload; `local` stays borrowed for re-sends).
                let mut out = self.acquire_buffer(ghost_len);
                out.extend_from_slice(&local[..ghost_len]);
                match self.try_send(prev, tags::GHOST, out) {
                    Ok(()) => sent = true,
                    Err(e) if e.is_transient() => {
                        last = e;
                        continue;
                    }
                    Err(e) => {
                        self.stats.phase_end("ghost", t);
                        return Err(e);
                    }
                }
            }
            match self.recv_deadline(next, tags::GHOST, policy.deadline) {
                Ok(got) => {
                    self.stats.phase_end("ghost", t);
                    return Ok(got);
                }
                Err(e) if e.is_transient() => last = e,
                Err(e) => {
                    self.stats.phase_end("ghost", t);
                    return Err(e);
                }
            }
        }
        self.stats.phase_end("ghost", t);
        Err(last)
    }

    /// Max-reduce against an absolute deadline with explicit tags (the
    /// consensus step of the resilient collectives).
    fn allreduce_max_until(
        &mut self,
        value: f64,
        reduce_tag: u64,
        bcast_tag: u64,
        end: Instant,
    ) -> Result<f64, CommError> {
        if self.rank == 0 {
            let mut m = value;
            for src in 1..self.size {
                m = m.max(self.recv_until(src, reduce_tag, end)?[0].re);
            }
            for dst in 1..self.size {
                self.try_send(dst, bcast_tag, vec![c64::new(m, 0.0)])?;
            }
            Ok(m)
        } else {
            self.try_send(0, reduce_tag, vec![c64::new(value, 0.0)])?;
            Ok(self.recv_until(0, bcast_tag, end)?[0].re)
        }
    }

    /// Chunked/pipelined all-to-all (§5.1): each per-destination buffer is
    /// split into chunks of at most `chunk_elems` elements which are sent
    /// round-robin across destinations, so no single long message
    /// serializes the exchange — the software analogue of pipelining PCIe
    /// staging with InfiniBand transfers. Message *contents* are identical
    /// to [`Comm::all_to_all`]; this collective assumes the symmetric
    /// layouts used by the FFT exchanges (you receive from `src` as many
    /// elements as you send to `src`).
    pub fn all_to_all_chunked(
        &mut self,
        mut outgoing: Vec<Vec<c64>>,
        chunk_elems: usize,
    ) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        assert!(chunk_elems > 0, "chunk size must be positive");
        self.maybe_crash(CrashSite::AllToAll);
        let t = self.stats.phase_start();
        let lens: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        self.send_chunks(&mut outgoing, &lens, chunk_elems);
        // Expected lengths mirror what we sent (symmetric exchange).
        let incoming = self.recv_chunks(&lens);
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// Sends every buffer round-robin across destinations in chunks of at
    /// most `chunk_elems` elements. A chunk that covers a *whole* buffer
    /// is moved out of `outgoing` and sent without copying; a partial
    /// chunk must be staged into a fresh allocation (the transport owns
    /// each message's payload) and is counted as a staging copy in the
    /// ledger, so the chunk-size / allocation trade-off is measurable.
    fn send_chunks(&mut self, outgoing: &mut [Vec<c64>], lens: &[usize], chunk_elems: usize) {
        let mut offsets = vec![0usize; self.size];
        let mut more = true;
        while more {
            more = false;
            self.stats.span_open("a2a-round");
            for dst in 0..self.size {
                let off = offsets[dst];
                if off >= lens[dst] {
                    continue;
                }
                let take = chunk_elems.min(lens[dst] - off);
                let payload = if off == 0 && take == lens[dst] {
                    std::mem::take(&mut outgoing[dst])
                } else {
                    // Staged from the pool: a recycled chunk from an earlier
                    // round serves this copy free; only a pool miss counts
                    // as a staging allocation in the ledger.
                    let mut staged = self.acquire_buffer(take);
                    staged.extend_from_slice(&outgoing[dst][off..off + take]);
                    staged
                };
                self.send(dst, tags::ALL_TO_ALL_CHUNK, payload);
                offsets[dst] = off + take;
                more |= offsets[dst] < lens[dst];
            }
            self.stats.span_close("a2a-round");
        }
    }

    /// Reassembles the chunked exchange, receiving chunks in order per
    /// source. Each slot is sized once up front (from the pool when a
    /// recycled buffer fits, uncounted otherwise — the slot is the
    /// caller's result, not a staging copy); a volume that arrives as a
    /// single chunk adopts the transport's buffer outright. Consumed chunk
    /// payloads are recycled, so the next round's (or next call's) staging
    /// copies come free.
    fn recv_chunks(&mut self, expected: &[usize]) -> Vec<Vec<c64>> {
        let mut incoming: Vec<Vec<c64>> = Vec::with_capacity(self.size);
        for (src, &want) in expected.iter().enumerate() {
            let mut slot: Vec<c64> = Vec::new();
            let mut first = true;
            while slot.len() < want {
                let chunk = self.recv(src, tags::ALL_TO_ALL_CHUNK);
                if first && chunk.len() == want {
                    slot = chunk;
                    break;
                }
                if first {
                    match self.pool.take(want) {
                        Some(buf) => slot = buf,
                        None => slot.reserve_exact(want),
                    }
                    first = false;
                }
                slot.extend_from_slice(&chunk);
                let evicted = self.pool.give(chunk);
                self.stats.note_pool_evictions(evicted);
            }
            incoming.push(slot);
        }
        incoming
    }

    /// Asymmetric chunked all-to-all (`MPI_Alltoallv` with pipelining):
    /// like [`Comm::all_to_all_chunked`], but the caller states how many
    /// elements to expect from each source instead of assuming symmetry —
    /// needed by heterogeneous segment layouts whose per-peer volumes
    /// differ.
    pub fn all_to_all_chunked_v(
        &mut self,
        mut outgoing: Vec<Vec<c64>>,
        chunk_elems: usize,
        expected: &[usize],
    ) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        assert_eq!(expected.len(), self.size, "need one expectation per rank");
        assert!(chunk_elems > 0, "chunk size must be positive");
        self.maybe_crash(CrashSite::AllToAll);
        let t = self.stats.phase_start();
        let lens: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        self.send_chunks(&mut outgoing, &lens, chunk_elems);
        let incoming = self.recv_chunks(expected);
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// Ghost exchange (Fig 2's nearest-neighbour step): every rank sends
    /// the first `ghost_len` elements of its local input to its predecessor
    /// and receives its successor's prefix (circularly). Recorded as the
    /// `"ghost"` phase.
    pub fn exchange_ghost(&mut self, local: &[c64], ghost_len: usize) -> Vec<c64> {
        assert!(ghost_len <= local.len(), "ghost larger than local data");
        self.maybe_crash(CrashSite::Ghost);
        let t = self.stats.phase_start();
        let prev = (self.rank + self.size - 1) % self.size;
        let next = (self.rank + 1) % self.size;
        let mut out = self.acquire_buffer(ghost_len);
        out.extend_from_slice(&local[..ghost_len]);
        let got = self.send_recv(prev, tags::GHOST, out, next, tags::GHOST);
        self.stats.phase_end("ghost", t);
        got
    }

    /// Gathers every rank's buffer to rank 0 (returns `None` elsewhere).
    pub fn gather(&mut self, data: Vec<c64>) -> Option<Vec<Vec<c64>>> {
        if self.rank == 0 {
            let mut all: Vec<Vec<c64>> = Vec::with_capacity(self.size);
            all.push(data);
            for src in 1..self.size {
                all.push(self.recv(src, tags::GATHER));
            }
            Some(all)
        } else {
            self.send(0, tags::GATHER, data);
            None
        }
    }

    /// Broadcast from `root`: the root's `data` is returned on every rank.
    pub fn broadcast(&mut self, root: usize, data: Vec<c64>) -> Vec<c64> {
        assert!(root < self.size, "root out of range");
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send(dst, tags::BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(root, tags::BCAST)
        }
    }

    /// All-gather: every rank contributes `data` and receives everyone's
    /// contribution, indexed by rank. Implemented as a symmetric exchange
    /// (each rank sends its buffer to every peer), which is how the
    /// verification steps of the examples collect distributed spectra.
    pub fn allgather(&mut self, data: Vec<c64>) -> Vec<Vec<c64>> {
        let outgoing: Vec<Vec<c64>> = (0..self.size).map(|_| data.clone()).collect();
        self.all_to_all(outgoing)
    }

    /// All-reduce of a scalar by maximum (used for error norms and timing
    /// reductions). Implemented as gather-to-0 + broadcast.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        if self.rank == 0 {
            let mut m = value;
            for src in 1..self.size {
                m = m.max(self.recv(src, tags::REDUCE)[0].re);
            }
            for dst in 1..self.size {
                self.send(dst, tags::BCAST, vec![c64::new(m, 0.0)]);
            }
            m
        } else {
            self.send(0, tags::REDUCE, vec![c64::new(value, 0.0)]);
            self.recv(0, tags::BCAST)[0].re
        }
    }
}

/// Reserved tags for built-in collectives; user tags should start at
/// [`tags::USER`] and stay below [`tags::RESILIENT`].
pub mod tags {
    /// Blocking all-to-all.
    pub const ALL_TO_ALL: u64 = 1;
    /// Chunked all-to-all.
    pub const ALL_TO_ALL_CHUNK: u64 = 2;
    /// Ghost (nearest-neighbour) exchange.
    pub const GHOST: u64 = 3;
    /// Gather to root.
    pub const GATHER: u64 = 4;
    /// Reduction upsweep.
    pub const REDUCE: u64 = 5;
    /// Broadcast downsweep.
    pub const BCAST: u64 = 6;
    /// First tag available to applications.
    pub const USER: u64 = 1 << 16;
    /// Base of the tag space reserved for resilient-exchange rounds
    /// (per-epoch, per-round tags keep retries from mixing with stale
    /// packets of earlier attempts).
    pub const RESILIENT: u64 = 1 << 48;

    /// `(data, reduce, bcast)` tags for round `round` of resilient
    /// exchange `epoch`.
    pub(crate) fn resilient_tags(epoch: u64, round: u32) -> (u64, u64, u64) {
        let base = RESILIENT + (epoch << 8) + (round as u64) * 4;
        (base, base + 1, base + 2)
    }
}

/// Cluster-wide launch options: channel bounds, fault plan, link-layer
/// retry policy, and the default deadline backing the infallible
/// [`Comm::recv`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-rank incoming-queue capacity in *messages*. `None` (default) =
    /// unbounded, the seed behaviour; `Some(k)` applies backpressure — a
    /// fast sender blocks once a destination queue holds `k` messages, so
    /// it cannot queue unbounded `Vec<c64>` buffers during an all-to-all.
    pub capacity: Option<usize>,
    /// Fault plan to install (each rank derives its own deterministic
    /// [`FaultInjector`] from it). Also switches on checksum/sequence
    /// verification of every wire message.
    pub faults: Option<FaultPlan>,
    /// Link-layer retransmit budget and backoff.
    pub retry: RetryPolicy,
    /// Deadline backing the infallible [`Comm::recv`] — effectively
    /// "forever" for healthy runs, a hang-stop for broken ones.
    pub recv_deadline: Duration,
    /// How long the launcher waits for all rank threads to finish before
    /// declaring the stragglers wedged: missing ranks are marked failed
    /// (unblocking anyone they would deadlock) and reported as
    /// [`RankOutcome::Panicked`]`("join timeout")` instead of hanging the
    /// launcher forever. Comfortably above `recv_deadline` by default so
    /// it only fires for hangs the comm layer cannot see.
    pub join_deadline: Duration,
    /// Hierarchical trace collection (off by default). When enabled, every
    /// rank's [`CommStats`] records [`TraceEvent`]s against one shared
    /// origin instant, so cross-rank timelines align in the
    /// [`chrome_trace_json`] / [`text_tree`] exporters.
    pub trace: TraceConfig,
    /// Ceiling on the capacity bytes each rank's payload-buffer freelist
    /// retains ([`POOL_MAX_RETAINED_BYTES`] by default). Bounds resident
    /// memory under transform-shape churn; buffers declined under the
    /// ceiling are counted in [`CommStats::pool_evictions`].
    pub pool_max_retained_bytes: usize,
    /// Failure-detection and link-repair timing for the real-process and
    /// TCP transports (poll period, heartbeat interval, staleness budget,
    /// reconnect backoff caps). Ignored by the in-process backend, whose
    /// failure detection is a shared flag with no timing dimension.
    pub detection: FailureDetection,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            capacity: None,
            faults: None,
            retry: RetryPolicy::default(),
            recv_deadline: Duration::from_secs(120),
            join_deadline: Duration::from_secs(600),
            trace: TraceConfig::default(),
            pool_max_retained_bytes: POOL_MAX_RETAINED_BYTES,
            detection: FailureDetection::default(),
        }
    }
}

impl ClusterConfig {
    /// Config with a fault plan installed (and everything else default).
    pub fn with_faults(plan: FaultPlan) -> Self {
        ClusterConfig {
            faults: Some(plan),
            ..ClusterConfig::default()
        }
    }

    /// Config with bounded per-rank queues (backpressure knob).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        ClusterConfig {
            capacity: Some(capacity),
            ..ClusterConfig::default()
        }
    }

    /// Config with hierarchical tracing enabled (and everything else
    /// default).
    pub fn with_trace() -> Self {
        ClusterConfig {
            trace: TraceConfig::enabled(),
            ..ClusterConfig::default()
        }
    }
}

/// The cluster launcher.
///
/// # Example
///
/// ```
/// use soifft_cluster::{Cluster, tags};
/// use soifft_num::c64;
///
/// // A 3-rank ring: everyone passes a token to the right.
/// let out = Cluster::run(3, |comm| {
///     let next = (comm.rank() + 1) % comm.size();
///     let prev = (comm.rank() + 2) % comm.size();
///     let token = vec![c64::real(comm.rank() as f64)];
///     let got = comm.send_recv(next, tags::USER, token, prev, tags::USER);
///     got[0].re as usize
/// });
/// assert_eq!(out, vec![2, 0, 1]);
/// ```
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `ranks` concurrent ranks and returns each rank's result,
    /// indexed by rank.
    ///
    /// `f` receives a [`Comm`] wired to all peers. Panics in any rank
    /// propagate (the run aborts). For fault-tolerant launches that report
    /// per-rank outcomes instead, use [`Cluster::run_with`].
    pub fn run<T, F>(ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_with(ClusterConfig::default(), ranks, f)
            .into_iter()
            .map(|outcome| match outcome {
                RankOutcome::Ok(v) => v,
                RankOutcome::Err(e) => panic!("rank panicked: {e}"),
                RankOutcome::Crashed => panic!("rank panicked: injected crash"),
                RankOutcome::Panicked(msg) => panic!("rank panicked: {msg}"),
            })
            .collect()
    }

    /// Fault-tolerant launcher: runs `f` on `ranks` concurrent ranks under
    /// `config` and returns each rank's [`RankOutcome`], indexed by rank.
    ///
    /// Every rank runs inside `catch_unwind`; a panicking or fault-crashed
    /// rank is reported as [`RankOutcome::Panicked`] /
    /// [`RankOutcome::Crashed`] while its death cancels the shared barrier
    /// and flips the cluster-health flag, so surviving ranks unblock from
    /// `recv`/`barrier` with [`CommError::PeerFailed`]
    /// ([`RankOutcome::Err`]) instead of deadlocking. The launcher itself
    /// never panics on rank failure.
    pub fn run_with<T, F>(config: ClusterConfig, ranks: usize, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(ranks >= 1, "need at least one rank");
        let (txs, rxs) = make_channels(&config, ranks);
        launch_epoch(&config, ranks, 0, txs, &rxs, &f)
    }
}

/// Builds the per-rank mailboxes for a cluster of `ranks`. The receivers
/// are shared handles so a supervisor can keep them alive across epochs
/// (dead-incarnation traffic is filtered by generation, not by channel
/// teardown).
pub(crate) fn make_channels(
    config: &ClusterConfig,
    ranks: usize,
) -> (Vec<Sender<Message>>, Vec<Arc<Receiver<Message>>>) {
    let mut txs = Vec::with_capacity(ranks);
    let mut rxs = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (tx, rx) = match config.capacity {
            Some(cap) => bounded::<Message>(cap),
            None => unbounded::<Message>(),
        };
        txs.push(tx);
        rxs.push(Arc::new(rx));
    }
    (txs, rxs)
}

/// Runs one epoch of the cluster: every rank gets a fresh [`Comm`] (fresh
/// barrier, failure detector, and injector for incarnation `generation`)
/// over the *given* channels, and the launcher joins the rank threads
/// under [`ClusterConfig::join_deadline`].
///
/// `txs` is taken by value and dropped once the comms are built, so an
/// epoch's senders disconnect exactly as in a plain launch. `rxs` is
/// borrowed — the caller decides whether endpoints outlive the epoch.
pub(crate) fn launch_epoch<T, F>(
    config: &ClusterConfig,
    ranks: usize,
    generation: u64,
    txs: Vec<Sender<Message>>,
    rxs: &[Arc<Receiver<Message>>],
    f: &F,
) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert_eq!(rxs.len(), ranks, "need one mailbox per rank");
    let barrier = Arc::new(CancellableBarrier::new(ranks));
    let state = Arc::new(ClusterState::new());
    // One origin for the whole epoch, so every rank's trace timestamps
    // share a zero point and cross-rank timelines line up.
    let trace_origin = config.trace.enabled.then(Instant::now);
    let mut comms: Vec<Comm> = (0..ranks)
        .map(|rank| Comm {
            rank,
            size: ranks,
            transport: Box::new(InProcTransport::new(
                rank,
                ranks,
                generation,
                txs.clone(),
                Arc::clone(&rxs[rank]),
                Arc::clone(&barrier),
                Arc::clone(&state),
            )),
            pending: HashMap::new(),
            seen: HashMap::new(),
            injector: config
                .faults
                .as_ref()
                .map(|p| p.injector_for_epoch(rank, ranks, generation)),
            verify: config.faults.is_some(),
            retry: config.retry,
            recv_deadline_default: config.recv_deadline,
            next_seq: 0,
            exchange_epoch: 0,
            generation,
            stats: {
                let mut stats = CommStats::default();
                if let Some(origin) = trace_origin {
                    stats.enable_trace(origin);
                }
                stats
            },
            pool: BufferPool::with_limit(config.pool_max_retained_bytes),
        })
        .collect();
    drop(txs);

    std::thread::scope(|s| {
        // Completion channel: each rank announces itself as it finishes,
        // so the launcher can bound its joins instead of blocking forever
        // on a wedged thread.
        let (done_tx, done_rx) = unbounded::<usize>();
        let mut handles = Vec::with_capacity(ranks);
        for mut comm in comms.drain(..) {
            let barrier = Arc::clone(&barrier);
            let state = Arc::clone(&state);
            let done_tx = done_tx.clone();
            handles.push(s.spawn(move || {
                let rank = comm.rank();
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
                let outcome = match result {
                    Ok(v) => RankOutcome::Ok(v),
                    Err(payload) => {
                        // Unblock everyone *before* reporting.
                        state.mark_failed(rank);
                        barrier.cancel(rank);
                        classify_panic(payload)
                    }
                };
                let _ = done_tx.send(rank);
                outcome
            }));
        }
        drop(done_tx);
        let deadline = Instant::now() + config.join_deadline;
        let mut completed = vec![false; ranks];
        let mut n_done = 0;
        while n_done < ranks {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match done_rx.recv_timeout(deadline - now) {
                Ok(rank) => {
                    completed[rank] = true;
                    n_done += 1;
                }
                Err(_) => break,
            }
        }
        if n_done < ranks {
            // Deadline breached: declare the stragglers failed so any rank
            // blocked *on* them (recv, barrier, backpressure) unwinds, then
            // join. A thread wedged outside the comm layer still delays
            // scope exit until it actually ends — threads cannot be killed
            // — but it is reported as a join timeout regardless of what it
            // eventually returns.
            for (rank, done) in completed.iter().enumerate() {
                if !done {
                    state.mark_failed(rank);
                    barrier.cancel(rank);
                }
            }
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                let joined = h
                    .join()
                    .unwrap_or_else(|_| RankOutcome::Panicked("rank thread died".to_string()));
                if completed[rank] {
                    joined
                } else {
                    RankOutcome::Panicked("join timeout".to_string())
                }
            })
            .collect()
    })
}

/// Convenience launcher for chaos runs: [`Cluster::run_with`] with `plan`
/// installed and default retry/deadline settings.
pub fn run_cluster_with_faults<T, F>(ranks: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    Cluster::run_with(ClusterConfig::with_faults(plan), ranks, f)
}

/// Maps a captured panic payload to a typed outcome (shared with the
/// TCP supervisor, whose rank threads raise the same typed payloads).
pub(crate) fn classify_panic<T>(payload: Box<dyn std::any::Any + Send>) -> RankOutcome<T> {
    match payload.downcast::<InjectedCrash>() {
        Ok(_) => RankOutcome::Crashed,
        Err(payload) => match payload.downcast::<CommFailure>() {
            Ok(failure) => RankOutcome::Err(failure.0),
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "unknown panic payload".to_string()
                };
                RankOutcome::Panicked(msg)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn point_to_point_ring() {
        let p = 5;
        let out = Cluster::run(p, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let payload = vec![c64::real(comm.rank() as f64)];
            let got = comm.send_recv(next, tags::USER, payload, prev, tags::USER);
            got[0].re as usize
        });
        for (rank, &got) in out.iter().enumerate() {
            assert_eq!(got, (rank + p - 1) % p, "rank {rank}");
        }
    }

    #[test]
    fn tag_matching_keeps_streams_separate() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, tags::USER + 1, vec![c64::real(1.0)]);
                comm.send(1, tags::USER + 2, vec![c64::real(2.0)]);
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, tags::USER + 2)[0].re;
                let a = comm.recv(0, tags::USER + 1)[0].re;
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn self_send_works() {
        let out = Cluster::run(1, |comm| {
            comm.send(0, tags::USER, vec![c64::real(7.0)]);
            comm.recv(0, tags::USER)[0].re
        });
        assert_eq!(out[0], 7.0);
    }

    #[test]
    fn self_send_short_circuit_preserves_fifo_and_interleaves_with_remote() {
        // The self-message path bypasses the channel entirely; it must
        // still obey FIFO per (src, tag) and coexist with remote traffic
        // on the same tag.
        let out = Cluster::run(2, |comm| {
            let me = comm.rank();
            let peer = 1 - me;
            for i in 0..4 {
                comm.send(me, tags::USER, vec![c64::real(i as f64)]);
            }
            comm.send(peer, tags::USER, vec![c64::real(100.0 + me as f64)]);
            // Self-messages come back in send order...
            let selfs: Vec<f64> = (0..4).map(|_| comm.recv(me, tags::USER)[0].re).collect();
            // ...and the remote message is matched by src, not arrival.
            let remote = comm.recv(peer, tags::USER)[0].re;
            (selfs, remote)
        });
        for (me, (selfs, remote)) in out.iter().enumerate() {
            assert_eq!(selfs, &vec![0.0, 1.0, 2.0, 3.0], "rank {me} self FIFO");
            assert_eq!(*remote, 100.0 + (1 - me) as f64);
        }
    }

    #[test]
    fn self_send_through_try_recv() {
        let out = Cluster::run(1, |comm| {
            assert!(comm.try_recv(0, tags::USER).is_none());
            comm.send(0, tags::USER, vec![c64::real(3.0)]);
            comm.send(0, tags::USER, vec![c64::real(4.0)]);
            let a = comm.try_recv(0, tags::USER).expect("first self message")[0].re;
            let b = comm.try_recv(0, tags::USER).expect("second self message")[0].re;
            assert!(comm.try_recv(0, tags::USER).is_none());
            (a, b)
        });
        assert_eq!(out[0], (3.0, 4.0));
    }

    #[test]
    fn fifo_order_within_same_src_tag() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..8 {
                    comm.send(1, tags::USER, vec![c64::real(i as f64)]);
                }
                Vec::new()
            } else {
                (0..8)
                    .map(|_| comm.recv(0, tags::USER)[0].re as usize)
                    .collect()
            }
        });
        assert_eq!(out[1], (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                // Rank 1 sends only after the first barrier, so this poll
                // is guaranteed to see nothing.
                let early = comm.try_recv(1, tags::USER).is_none();
                comm.barrier(); // release rank 1 to send
                comm.barrier(); // wait until it has sent
                                // Poll until it arrives (bounded spin).
                let mut got = None;
                for _ in 0..1_000_000 {
                    if let Some(v) = comm.try_recv(1, tags::USER) {
                        got = Some(v);
                        break;
                    }
                }
                (early, got.expect("message must arrive")[0].re)
            } else {
                comm.barrier();
                comm.send(0, tags::USER, vec![c64::real(5.0)]);
                comm.barrier();
                (true, 0.0)
            }
        });
        assert!(out[0].0, "early poll must be empty");
        assert_eq!(out[0].1, 5.0);
    }

    #[test]
    fn try_recv_preserves_fifo_across_buffered_messages() {
        // Messages queued before the first poll must still come out in
        // send order, across tags and interleaved with blocking recv.
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..6 {
                    let tag = tags::USER + (i % 2) as u64;
                    comm.send(1, tag, vec![c64::real(i as f64)]);
                }
                comm.barrier();
                Vec::new()
            } else {
                comm.barrier(); // everything is in flight (or queued) now
                                // Poll tag USER (even values 0,2,4) then USER+1 (1,3,5):
                                // each per-(src,tag) stream must be FIFO.
                let mut evens = Vec::new();
                while evens.len() < 3 {
                    if let Some(v) = comm.try_recv(0, tags::USER) {
                        evens.push(v[0].re);
                    }
                }
                assert!(
                    comm.try_recv(0, tags::USER).is_none(),
                    "even stream drained"
                );
                let odds: Vec<f64> = (0..3).map(|_| comm.recv(0, tags::USER + 1)[0].re).collect();
                evens.into_iter().chain(odds).collect::<Vec<f64>>()
            }
        });
        assert_eq!(out[1], vec![0.0, 2.0, 4.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    fn all_to_all_is_a_global_transpose() {
        let p = 4;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            // outgoing[d][j] encodes (src=r, dst=d, j).
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| {
                    (0..3)
                        .map(|j| c64::new(r as f64, (d * 10 + j) as f64))
                        .collect()
                })
                .collect();
            comm.all_to_all(outgoing)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                for (j, v) in buf.iter().enumerate() {
                    assert_eq!(v.re as usize, src);
                    assert_eq!(v.im as usize, r * 10 + j);
                }
            }
        }
    }

    #[test]
    fn chunked_all_to_all_matches_blocking() {
        let p = 3;
        let make_outgoing = |r: usize| -> Vec<Vec<c64>> {
            (0..p)
                .map(|d| {
                    (0..17)
                        .map(|j| c64::new((r * 100 + d * 10) as f64, j as f64))
                        .collect()
                })
                .collect()
        };
        let blocking = Cluster::run(p, |comm| comm.all_to_all(make_outgoing(comm.rank())));
        for chunk in [1, 4, 16, 17, 64] {
            let chunked = Cluster::run(p, |comm| {
                comm.all_to_all_chunked(make_outgoing(comm.rank()), chunk)
            });
            assert_eq!(chunked, blocking, "chunk={chunk}");
        }
    }

    #[test]
    fn ghost_exchange_brings_successor_prefix() {
        let p = 4;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let local: Vec<c64> = (0..8).map(|i| c64::new(r as f64, i as f64)).collect();
            comm.exchange_ghost(&local, 3)
        });
        for (r, ghost) in out.iter().enumerate() {
            let next = (r + 1) % p;
            assert_eq!(ghost.len(), 3);
            for (i, v) in ghost.iter().enumerate() {
                assert_eq!(v.re as usize, next);
                assert_eq!(v.im as usize, i);
            }
        }
    }

    #[test]
    fn gather_collects_everything_at_root() {
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            comm.gather(vec![c64::real(r as f64); r + 1])
        });
        let root = out[0].as_ref().expect("root should have data");
        assert!(out[1].is_none() && out[2].is_none());
        for (src, buf) in root.iter().enumerate() {
            assert_eq!(buf.len(), src + 1);
            assert!(buf.iter().all(|v| v.re as usize == src));
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let out = Cluster::run(4, |comm| {
            let data = if comm.rank() == 2 {
                vec![c64::new(3.0, -1.0); 5]
            } else {
                Vec::new()
            };
            comm.broadcast(2, data)
        });
        for v in &out {
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|z| *z == c64::new(3.0, -1.0)));
        }
    }

    #[test]
    fn allgather_collects_by_rank() {
        let out = Cluster::run(3, |comm| {
            comm.allgather(vec![c64::real(comm.rank() as f64); comm.rank() + 1])
        });
        for (me, all) in out.iter().enumerate() {
            assert_eq!(all.len(), 3, "rank {me}");
            for (src, buf) in all.iter().enumerate() {
                assert_eq!(buf.len(), src + 1);
                assert!(buf.iter().all(|z| z.re as usize == src));
            }
        }
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        let vals = [3.0, -1.0, 7.5, 2.0];
        let out = Cluster::run(4, |comm| comm.allreduce_max(vals[comm.rank()]));
        assert!(out.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn chunked_all_to_all_handles_empty_buffers() {
        // Heterogeneous exchanges ship empty buffers to some peers.
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| {
                    if (r + d) % 2 == 0 {
                        vec![c64::real((r * 10 + d) as f64); 5]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            comm.all_to_all_chunked(outgoing, 2)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                if (src + r) % 2 == 0 {
                    assert_eq!(buf.len(), 5, "r={r} src={src}");
                    assert_eq!(buf[0].re as usize, src * 10 + r);
                } else {
                    assert!(buf.is_empty(), "r={r} src={src}");
                }
            }
        }
    }

    #[test]
    fn chunked_v_handles_asymmetric_volumes() {
        // Rank r sends r+1 elements to everyone; expects src+1 from src.
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> =
                (0..p).map(|_| vec![c64::real(r as f64); r + 1]).collect();
            let expected: Vec<usize> = (0..p).map(|src| src + 1).collect();
            comm.all_to_all_chunked_v(outgoing, 2, &expected)
        });
        for incoming in &out {
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf.len(), src + 1);
                assert!(buf.iter().all(|z| z.re as usize == src));
            }
        }
    }

    #[test]
    fn allreduce_single_rank() {
        let out = Cluster::run(1, |comm| comm.allreduce_max(-3.5));
        assert_eq!(out[0], -3.5);
    }

    #[test]
    fn try_exchange_ghost_rejects_oversized_ghost_with_typed_error() {
        // Regression: this used to `assert!` and take the rank down. A
        // `try_*` API must report misuse as a typed error instead.
        let out = Cluster::run(2, |comm| {
            let local = vec![c64::ZERO; 4];
            let too_big = comm.try_exchange_ghost(&local, 5, &ExchangePolicy::default());
            let no_rounds = comm.try_exchange_ghost(
                &local,
                2,
                &ExchangePolicy {
                    max_rounds: 0,
                    ..ExchangePolicy::default()
                },
            );
            (too_big.err(), no_rounds.err())
        });
        for (too_big, no_rounds) in out {
            assert!(matches!(too_big, Some(CommError::InvalidArgument { .. })));
            assert!(matches!(no_rounds, Some(CommError::InvalidArgument { .. })));
        }
    }

    #[test]
    fn try_paths_reject_invalid_arguments_without_panicking() {
        let out = Cluster::run(2, |comm| {
            let bad_send = comm.try_send(99, tags::USER, vec![c64::ZERO]);
            let bad_recv = comm.recv_deadline(99, tags::USER, Duration::from_millis(5));
            let short = vec![Vec::new(); 1];
            let bad_bufs = comm.all_to_all_resilient(&short, &ExchangePolicy::default());
            let ok_bufs = vec![Vec::new(); comm.size()];
            let no_rounds = comm.all_to_all_resilient(
                &ok_bufs,
                &ExchangePolicy {
                    max_rounds: 0,
                    ..ExchangePolicy::default()
                },
            );
            let too_many_rounds = comm.all_to_all_resilient(
                &ok_bufs,
                &ExchangePolicy {
                    max_rounds: 65,
                    ..ExchangePolicy::default()
                },
            );
            (
                bad_send.err(),
                bad_recv.err(),
                bad_bufs.err(),
                no_rounds.err(),
                too_many_rounds.err(),
            )
        });
        for errs in out {
            assert!(matches!(errs.0, Some(CommError::InvalidArgument { .. })));
            assert!(matches!(errs.1, Some(CommError::InvalidArgument { .. })));
            assert!(matches!(errs.2, Some(CommError::InvalidArgument { .. })));
            assert!(matches!(errs.3, Some(CommError::InvalidArgument { .. })));
            assert!(matches!(errs.4, Some(CommError::InvalidArgument { .. })));
        }
    }

    #[test]
    fn chunked_with_chunk_larger_than_every_buffer_moves_without_copies() {
        // Satellite edge case: chunk_elems exceeds every buffer, so each
        // buffer ships as one moved-out chunk — zero staging copies.
        let p = 3;
        let make_outgoing = |r: usize| -> Vec<Vec<c64>> {
            (0..p)
                .map(|d| {
                    (0..17)
                        .map(|j| c64::new((r * 10 + d) as f64, j as f64))
                        .collect()
                })
                .collect()
        };
        let blocking = Cluster::run(p, |comm| comm.all_to_all(make_outgoing(comm.rank())));
        let out = Cluster::run(p, |comm| {
            let incoming = comm.all_to_all_chunked(make_outgoing(comm.rank()), 1000);
            (incoming, comm.stats().comm_allocs())
        });
        for (r, (incoming, allocs)) in out.into_iter().enumerate() {
            assert_eq!(incoming, blocking[r]);
            assert_eq!(allocs, 0, "whole-buffer chunks must be moved, not copied");
        }
    }

    #[test]
    fn chunked_partial_chunks_count_staging_copies() {
        // 17 elements in chunks of 4 → ceil(17/4) = 5 staging copies per
        // destination (no chunk covers a whole buffer). The counter is
        // how the perf fix is verified: the same exchange used to copy
        // every chunk unconditionally.
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> = (0..p).map(|_| vec![c64::real(r as f64); 17]).collect();
            comm.all_to_all_chunked(outgoing, 4);
            comm.stats().comm_allocs()
        });
        for allocs in out {
            assert_eq!(allocs, (p as u64) * 5);
        }
    }

    #[test]
    fn ghost_exchange_at_full_local_length() {
        // Satellite edge case: ghost_len == per-rank length (the whole
        // local buffer is the ghost region), on both the infallible and
        // fallible paths.
        let p = 3;
        let per_rank = 6;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let local: Vec<c64> = (0..per_rank)
                .map(|i| c64::new(r as f64, i as f64))
                .collect();
            let infallible = comm.exchange_ghost(&local, per_rank);
            let fallible = comm
                .try_exchange_ghost(&local, per_rank, &ExchangePolicy::default())
                .expect("full-length ghost is valid");
            (infallible, fallible)
        });
        for (r, (infallible, fallible)) in out.into_iter().enumerate() {
            let next = (r + 1) % p;
            assert_eq!(infallible.len(), per_rank);
            assert_eq!(infallible, fallible);
            for (i, v) in infallible.iter().enumerate() {
                assert_eq!(v.re as usize, next);
                assert_eq!(v.im as usize, i);
            }
        }
    }

    #[test]
    fn tracing_disabled_by_default_enabled_by_config() {
        let out = Cluster::run(2, |comm| {
            comm.all_to_all(vec![vec![c64::ZERO; 4]; 2]);
            comm.stats().clone()
        });
        for s in &out {
            assert!(!s.trace_enabled());
            assert!(s.trace_events().is_empty());
        }

        let outcomes = Cluster::run_with(ClusterConfig::with_trace(), 2, |comm| {
            comm.stats_mut().span_open("superstep");
            comm.all_to_all(vec![vec![c64::ZERO; 4]; 2]);
            comm.stats_mut().span_close("superstep");
            comm.stats().clone()
        });
        for o in outcomes {
            let s = o.unwrap();
            assert!(s.trace_enabled());
            // The flat ledger is identical either way...
            let phases: Vec<&str> = s.records().iter().map(|r| r.name).collect();
            assert_eq!(phases, vec!["all-to-all"]);
            // ...while the trace holds the phase leaf nested in the span.
            let names: Vec<&str> = s.trace_events().iter().map(|e| e.name).collect();
            assert_eq!(names, vec!["all-to-all", "superstep"]);
            assert_eq!(s.trace_events()[0].depth, 1);
            assert_eq!(s.trace_events()[0].bytes, 2 * 4 * 16);
        }
    }

    #[test]
    fn stats_record_bytes_and_phases() {
        let out = Cluster::run(2, |comm| {
            let outgoing = vec![vec![c64::ZERO; 10], vec![c64::ZERO; 10]];
            comm.all_to_all(outgoing);
            let local = vec![c64::ZERO; 6];
            comm.exchange_ghost(&local, 2);
            comm.stats().clone()
        });
        for s in &out {
            // 20 elements in the all-to-all + 2 in the ghost, 16 B each.
            assert_eq!(s.total_bytes_sent(), (20 + 2) * 16);
            let phases: Vec<&str> = s.records().iter().map(|r| r.name).collect();
            assert_eq!(phases, vec!["all-to-all", "ghost"]);
            assert!(s.records()[0].seconds >= 0.0);
        }
    }

    #[test]
    fn randomized_message_storm_is_lossless() {
        // Every rank fires a deterministic pseudo-random sequence of sends
        // (varied sizes, tags, destinations), then receives everything in
        // a fixed matching order. Exercises the pending-queue plumbing
        // under out-of-order arrival.
        let p = 4;
        let msgs_per_pair = 16;
        let out = Cluster::run(p, |comm| {
            let me = comm.rank();
            let mut rng = (me as u64 + 1) * 0x9E37_79B9;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            // Send msgs_per_pair messages to every rank with mixed tags.
            for k in 0..msgs_per_pair {
                for dst in 0..p {
                    let tag = tags::USER + (k % 3) as u64;
                    let len = (next() % 50 + 1) as usize;
                    let payload = vec![c64::new(me as f64, (k * p + dst) as f64); len];
                    comm.send(dst, tag, payload);
                }
            }
            // Receive them all, counting per (src, tag-class).
            let mut total = 0usize;
            let mut checksum = 0.0f64;
            for k in 0..msgs_per_pair {
                for src in 0..p {
                    let tag = tags::USER + (k % 3) as u64;
                    let got = comm.recv(src, tag);
                    assert!(got.iter().all(|z| z.re as usize == src));
                    total += 1;
                    checksum += got[0].im;
                }
            }
            (total, checksum)
        });
        for (total, _) in &out {
            assert_eq!(*total, p * msgs_per_pair);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    // ------------------------------------------------------------------
    // Fault-injection and resilience tests.
    // ------------------------------------------------------------------

    #[test]
    fn recv_deadline_times_out_cleanly() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                let err = comm
                    .recv_deadline(1, tags::USER, Duration::from_millis(30))
                    .expect_err("nothing was sent");
                comm.barrier();
                err == CommError::Timeout
            } else {
                comm.barrier();
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn dead_peer_fails_recv_typed_instead_of_hanging() {
        // A peer that *died* (not merely silent) must surface as a typed
        // peer failure long before the recv deadline — no blocking path
        // may wait out a deadline the failure detector already resolved.
        let plan = FaultPlan::new(5).crash(1, CrashSite::Barrier);
        let outcomes = run_cluster_with_faults(2, plan, |comm| {
            if comm.rank() == 1 {
                comm.barrier(); // injected crash fires here
                unreachable!("rank 1 died at the barrier");
            }
            let start = Instant::now();
            let err = comm
                .recv_deadline(1, tags::USER, Duration::from_secs(30))
                .expect_err("peer is dead");
            assert_eq!(err, CommError::PeerFailed { rank: 1 });
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "death must preempt the deadline"
            );
            true
        });
        assert!(matches!(outcomes[1], RankOutcome::Crashed));
        assert!(matches!(outcomes[0], RankOutcome::Ok(true)));
    }

    #[test]
    fn silent_peer_timeout_is_counted_in_stats() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                let err = comm
                    .recv_deadline(1, tags::USER, Duration::from_millis(20))
                    .expect_err("silent peer");
                let counted = comm.stats().recv_timeouts();
                comm.barrier();
                (err == CommError::Timeout, counted)
            } else {
                comm.barrier();
                (true, 1)
            }
        });
        assert!(out[0].0, "silent peer must read as a typed Timeout");
        assert!(out[0].1 >= 1, "the expiry must land in the stats counter");
    }

    #[test]
    fn transient_drops_are_retransmitted_transparently() {
        let plan = FaultPlan::new(11).drop(0.4); // fault_limit 2 < 4 attempts
        let outcomes = run_cluster_with_faults(3, plan, |comm| {
            let p = comm.size();
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| vec![c64::new(comm.rank() as f64, d as f64); 20])
                .collect();
            let incoming = comm.all_to_all(outgoing);
            let ok = incoming
                .iter()
                .enumerate()
                .all(|(src, buf)| buf.len() == 20 && buf[0].re as usize == src);
            (ok, comm.stats().retransmits())
        });
        let mut total_retransmits = 0;
        for o in outcomes {
            let (ok, retransmits) = o.unwrap();
            assert!(ok, "payloads must survive drops");
            total_retransmits += retransmits;
        }
        assert!(total_retransmits > 0, "plan must actually drop something");
    }

    #[test]
    fn corruption_is_detected_and_retransmitted() {
        let plan = FaultPlan::new(23).corrupt(0.5);
        let outcomes = run_cluster_with_faults(2, plan, |comm| {
            let peer = 1 - comm.rank();
            for i in 0..32 {
                comm.send(peer, tags::USER, vec![c64::real(i as f64); 8]);
            }
            let clean = (0..32).all(|i| {
                let got = comm.recv(peer, tags::USER);
                got.len() == 8 && got[0].re == i as f64
            });
            (clean, comm.stats().corrupt_discarded())
        });
        let mut discarded = 0;
        for o in outcomes {
            let (clean, d) = o.unwrap();
            assert!(clean, "no corrupted payload may be delivered");
            discarded += d;
        }
        assert!(discarded > 0, "plan must actually corrupt something");
    }

    #[test]
    fn duplicates_are_filtered() {
        let plan = FaultPlan::new(5).duplicate(0.6);
        let outcomes = run_cluster_with_faults(2, plan, |comm| {
            let peer = 1 - comm.rank();
            for i in 0..24 {
                comm.send(peer, tags::USER, vec![c64::real(i as f64)]);
            }
            comm.barrier(); // everything in flight
            let inorder = (0..24).all(|i| comm.recv(peer, tags::USER)[0].re == i as f64);
            // Nothing extra may be left over.
            std::thread::sleep(Duration::from_millis(10));
            let empty = comm.try_recv(peer, tags::USER).is_none();
            (inorder, empty, comm.stats().duplicates_discarded())
        });
        let mut dups = 0;
        for o in outcomes {
            let (inorder, empty, d) = o.unwrap();
            assert!(inorder, "stream must stay FIFO and exactly-once");
            assert!(empty, "duplicates must not surface");
            dups += d;
        }
        assert!(dups > 0, "plan must actually duplicate something");
    }

    #[test]
    fn delays_preserve_content() {
        let plan = FaultPlan::new(17).delay(0.5, Duration::from_micros(300));
        let outcomes = run_cluster_with_faults(2, plan, |comm| {
            let peer = 1 - comm.rank();
            for i in 0..16 {
                comm.send(peer, tags::USER, vec![c64::real(i as f64)]);
            }
            (0..16).all(|i| comm.recv(peer, tags::USER)[0].re == i as f64)
        });
        for o in outcomes {
            assert!(o.unwrap());
        }
    }

    #[test]
    fn permanent_drop_fails_with_typed_timeout() {
        let plan = FaultPlan::new(2).drop(1.0).permanent();
        let config = ClusterConfig {
            faults: Some(plan),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_micros(10),
            },
            ..ClusterConfig::default()
        };
        let outcomes = Cluster::run_with(config, 2, |comm| {
            let peer = 1 - comm.rank();
            comm.try_send(peer, tags::USER, vec![c64::ZERO; 4])
        });
        for o in outcomes {
            assert_eq!(o.unwrap(), Err(CommError::Timeout));
        }
    }

    #[test]
    fn injected_crash_unblocks_survivors() {
        let plan = FaultPlan::new(0).crash(1, CrashSite::Barrier);
        let outcomes: Vec<RankOutcome<()>> = run_cluster_with_faults(3, plan, |comm| {
            comm.barrier(); // rank 1 dies here; 0 and 2 must not hang
        });
        assert_eq!(outcomes[1], RankOutcome::Crashed);
        for rank in [0, 2] {
            match &outcomes[rank] {
                RankOutcome::Err(CommError::PeerFailed { rank: r }) => assert_eq!(*r, 1),
                other => panic!("rank {rank}: expected PeerFailed, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_mid_exchange_fails_survivor_recvs() {
        let plan = FaultPlan::new(0).crash(0, CrashSite::AllToAll);
        let outcomes: Vec<RankOutcome<()>> = run_cluster_with_faults(2, plan, |comm| {
            let outgoing = (0..comm.size()).map(|_| vec![c64::ZERO; 4]).collect();
            comm.all_to_all(outgoing);
        });
        assert_eq!(outcomes[0], RankOutcome::Crashed);
        match &outcomes[1] {
            RankOutcome::Err(CommError::PeerFailed { rank }) => assert_eq!(*rank, 0),
            other => panic!("expected PeerFailed, got {other:?}"),
        }
    }

    #[test]
    fn resilient_all_to_all_without_faults_matches_plain() {
        let p = 3;
        let make = |r: usize| -> Vec<Vec<c64>> {
            (0..p)
                .map(|d| {
                    (0..9)
                        .map(|j| c64::new((r * 10 + d) as f64, j as f64))
                        .collect()
                })
                .collect()
        };
        let plain = Cluster::run(p, |comm| comm.all_to_all(make(comm.rank())));
        let resilient = Cluster::run(p, |comm| {
            comm.all_to_all_resilient(&make(comm.rank()), &ExchangePolicy::default())
                .expect("healthy cluster")
        });
        assert_eq!(plain, resilient);
    }

    #[test]
    fn resilient_all_to_all_survives_heavy_transient_faults() {
        let plan = FaultPlan::new(31).drop(0.3).corrupt(0.2).duplicate(0.2);
        let p = 4;
        let outcomes = run_cluster_with_faults(p, plan, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| vec![c64::new(r as f64, d as f64); 15])
                .collect();
            let policy = ExchangePolicy {
                deadline: Duration::from_secs(2),
                max_rounds: 4,
            };
            comm.all_to_all_resilient(&outgoing, &policy)
        });
        for (rank, o) in outcomes.into_iter().enumerate() {
            let incoming = o.unwrap().expect("transient faults must be absorbed");
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf.len(), 15, "rank {rank} src {src}");
                assert_eq!(buf[0], c64::new(src as f64, rank as f64));
            }
        }
    }

    #[test]
    fn bounded_capacity_applies_backpressure_and_records_watermark() {
        let config = ClusterConfig::with_capacity(4);
        let outcomes = Cluster::run_with(config, 2, |comm| {
            let peer = 1 - comm.rank();
            // 32 messages through a 4-deep queue: the sender must block
            // (backpressure) rather than queueing everything.
            if comm.rank() == 0 {
                for i in 0..32 {
                    comm.send(peer, tags::USER, vec![c64::real(i as f64); 64]);
                }
                comm.barrier();
                comm.stats().queue_high_watermark()
            } else {
                let ok = (0..32).all(|i| comm.recv(0, tags::USER)[0].re == i as f64);
                assert!(ok);
                comm.barrier();
                comm.stats().queue_high_watermark()
            }
        });
        let watermark0 = outcomes[0].clone().unwrap();
        assert!(watermark0 <= 4, "queue depth may never exceed capacity");
        assert!(watermark0 > 0, "sender must have observed queued messages");
    }

    #[test]
    fn unbounded_watermark_tracks_queue_depth() {
        let outcomes = Cluster::run_with(ClusterConfig::default(), 2, |comm| {
            if comm.rank() == 0 {
                for i in 0..16 {
                    comm.send(1, tags::USER, vec![c64::real(i as f64)]);
                }
                comm.barrier(); // receiver drains only after this
                comm.stats().queue_high_watermark()
            } else {
                comm.barrier();
                for _ in 0..16 {
                    comm.recv(0, tags::USER);
                }
                0
            }
        });
        assert!(
            outcomes[0].clone().unwrap() >= 8,
            "watermark should see the built-up queue"
        );
    }

    #[test]
    fn fault_events_are_deterministic_across_runs() {
        let run = || {
            let plan = FaultPlan::new(77).drop(0.3).corrupt(0.3).duplicate(0.2);
            let outcomes = run_cluster_with_faults(3, plan, |comm| {
                let p = comm.size();
                let outgoing: Vec<Vec<c64>> =
                    (0..p).map(|d| vec![c64::real(d as f64); 10]).collect();
                let incoming = comm.all_to_all(outgoing);
                (incoming, comm.fault_events().expect("plan installed"))
            });
            outcomes.into_iter().map(|o| o.unwrap()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + plan must give identical runs");
    }

    #[test]
    fn join_deadline_reports_wedged_rank() {
        let config = ClusterConfig {
            join_deadline: Duration::from_millis(50),
            ..ClusterConfig::default()
        };
        let outcomes = Cluster::run_with(config, 3, |comm| {
            if comm.rank() == 2 {
                // Wedged *outside* the comm layer, where no failure
                // detector can unblock it — only the join deadline sees it.
                std::thread::sleep(Duration::from_millis(400));
            }
            comm.rank()
        });
        assert_eq!(
            outcomes[2],
            RankOutcome::Panicked("join timeout".to_string())
        );
        assert_eq!(outcomes[0], RankOutcome::Ok(0));
        assert_eq!(outcomes[1], RankOutcome::Ok(1));
    }

    #[test]
    fn run_with_reports_plain_panics() {
        let outcomes: Vec<RankOutcome<()>> =
            Cluster::run_with(ClusterConfig::default(), 2, |comm| {
                if comm.rank() == 1 {
                    panic!("boom on rank 1");
                }
                comm.barrier();
            });
        match &outcomes[1] {
            RankOutcome::Panicked(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Rank 0 was blocked in the barrier; the dying rank cancels it.
        match &outcomes[0] {
            RankOutcome::Err(CommError::PeerFailed { rank }) => assert_eq!(*rank, 1),
            other => panic!("expected PeerFailed, got {other:?}"),
        }
    }

    /// Bytes of capacity a `Vec<c64>` of capacity `cap` pins.
    fn cap_bytes(cap: usize) -> usize {
        cap * std::mem::size_of::<c64>()
    }

    #[test]
    fn pool_retains_within_byte_ceiling() {
        // Room for exactly two 64-element buffers.
        let mut pool = BufferPool::with_limit(cap_bytes(128));
        assert_eq!(pool.give(Vec::with_capacity(64)), 0);
        assert_eq!(pool.give(Vec::with_capacity(64)), 0);
        assert_eq!(pool.retained_bytes, cap_bytes(128));
        // A third buffer forces one eviction to make room.
        assert_eq!(pool.give(Vec::with_capacity(64)), 1);
        assert_eq!(pool.retained_bytes, cap_bytes(128));
        // Taking drains the ledger symmetrically.
        assert!(pool.take(64).is_some());
        assert_eq!(pool.retained_bytes, cap_bytes(64));
    }

    #[test]
    fn pool_declines_buffer_larger_than_ceiling() {
        let mut pool = BufferPool::with_limit(cap_bytes(16));
        assert_eq!(pool.give(Vec::with_capacity(32)), 1, "declined outright");
        assert_eq!(pool.retained_bytes, 0);
        assert!(pool.take(32).is_none());
    }

    #[test]
    fn pool_evicts_largest_class_first_under_shape_churn() {
        let mut pool = BufferPool::with_limit(cap_bytes(1024 + 12));
        assert_eq!(pool.give(Vec::with_capacity(1024)), 0);
        assert_eq!(pool.give(Vec::with_capacity(8)), 0);
        // Admitting another small-class buffer overflows the ceiling; the
        // stale 1024-element buffer goes, not the hot small class.
        assert_eq!(pool.give(Vec::with_capacity(8)), 1);
        assert!(pool.take(1024).is_none(), "large class was evicted");
        assert!(pool.take(8).is_some());
        assert!(pool.take(8).is_some());
    }

    #[test]
    fn pool_evictions_surface_in_comm_stats() {
        let config = ClusterConfig {
            // Below any payload this run stages: every recycle is declined.
            pool_max_retained_bytes: 8,
            ..ClusterConfig::default()
        };
        let evictions = Cluster::run_with(config, 2, |comm| {
            let dst = (comm.rank() + 1) % comm.size();
            let mut buf = comm.acquire_buffer(32);
            buf.resize(32, c64::ZERO);
            comm.send(dst, tags::USER, buf);
            let src = (comm.rank() + 1) % comm.size();
            let got = comm.recv(src, tags::USER);
            comm.recycle_buffer(got);
            comm.stats().pool_evictions()
        });
        for (rank, outcome) in evictions.into_iter().enumerate() {
            match outcome {
                RankOutcome::Ok(n) => {
                    assert!(
                        n >= 1,
                        "rank {rank}: recycle under a tiny ceiling must evict"
                    )
                }
                other => panic!("rank {rank} failed: {other:?}"),
            }
        }
    }
}
