//! Simulated message-passing cluster runtime.
//!
//! The paper runs on 512 Stampede nodes over FDR InfiniBand with Intel MPI;
//! this crate is the substitution substrate (DESIGN.md §1): it runs `P`
//! ranks as OS threads and gives them an MPI-flavoured interface —
//! point-to-point sends with tags, barriers, and the collectives the two
//! distributed FFT algorithms need. The *algorithmic* communication
//! structure (message counts, sizes, and who-talks-to-whom) is exactly the
//! paper's; only the transport is threads + channels instead of
//! InfiniBand.
//!
//! Every rank keeps a [`CommStats`] ledger of bytes and wall time per named
//! phase, which is how the `fig1_trace` / `fig2_trace` binaries show the
//! "3 all-to-alls vs 1 all-to-all + ghost exchange" contrast, and how
//! functional runs are cross-checked against the analytic model's
//! byte-volume predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pcie;
pub mod proxy;
pub mod stats;

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use soifft_num::c64;

pub use pcie::PcieLink;
pub use proxy::ProxyCore;
pub use stats::{CommStats, CostModel, PhaseRecord};

/// A tagged message between ranks.
pub(crate) struct Message {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) data: Vec<c64>,
}

/// One rank's endpoint into the cluster: rank id, peers, and statistics.
pub struct Comm {
    rank: usize,
    size: usize,
    pub(crate) senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    pending: HashMap<(usize, u64), Vec<Vec<c64>>>,
    barrier: Arc<Barrier>,
    pub(crate) stats: CommStats,
}

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The statistics ledger accumulated so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mutable access to the ledger (for recording compute phases).
    pub fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    /// Sends `data` to `dst` with `tag`. Non-blocking (buffered channel).
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<c64>) {
        assert!(dst < self.size, "destination rank out of range");
        let bytes = (data.len() * std::mem::size_of::<c64>()) as u64;
        self.stats.add_bytes_sent(bytes);
        if dst == self.rank {
            // Self-message: short-circuit into the pending map.
            self.pending.entry((self.rank, tag)).or_default().push(data);
            return;
        }
        self.senders[dst]
            .send(Message { src: self.rank, tag, data })
            .expect("peer rank hung up");
    }

    /// Blocks until a message from `src` with `tag` arrives and returns it.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<c64> {
        assert!(src < self.size, "source rank out of range");
        loop {
            if let Some(queue) = self.pending.get_mut(&(src, tag)) {
                if !queue.is_empty() {
                    let data = queue.remove(0);
                    if queue.is_empty() {
                        self.pending.remove(&(src, tag));
                    }
                    return data;
                }
            }
            let msg = self.receiver.recv().expect("cluster shut down mid-recv");
            self.pending
                .entry((msg.src, msg.tag))
                .or_default()
                .push(msg.data);
        }
    }

    /// Non-blocking receive: returns a matching message if one has already
    /// arrived, without waiting (the `MPI_Iprobe + MPI_Recv` pattern used
    /// when polling for pipelined chunks while computing).
    pub fn try_recv(&mut self, src: usize, tag: u64) -> Option<Vec<c64>> {
        assert!(src < self.size, "source rank out of range");
        // Drain the channel into the pending map without blocking.
        while let Ok(msg) = self.receiver.try_recv() {
            self.pending
                .entry((msg.src, msg.tag))
                .or_default()
                .push(msg.data);
        }
        let queue = self.pending.get_mut(&(src, tag))?;
        let data = queue.remove(0);
        if queue.is_empty() {
            self.pending.remove(&(src, tag));
        }
        Some(data)
    }

    /// Combined send + receive (deadlock-free regardless of ordering since
    /// sends never block).
    pub fn send_recv(
        &mut self,
        dst: usize,
        send_tag: u64,
        data: Vec<c64>,
        src: usize,
        recv_tag: u64,
    ) -> Vec<c64> {
        self.send(dst, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// The all-to-all personalized exchange: rank `r` sends `outgoing[d]`
    /// to rank `d` and receives what every rank addressed to `r`, returned
    /// indexed by source. This is the `Perm_{L,N'}` step of SOI and each of
    /// the three exchanges of Cooley–Tukey.
    ///
    /// The whole exchange is recorded as one `"all-to-all"` phase.
    pub fn all_to_all(&mut self, outgoing: Vec<Vec<c64>>) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        let t = self.stats.phase_start();
        for (dst, data) in outgoing.into_iter().enumerate() {
            self.send(dst, tags::ALL_TO_ALL, data);
        }
        let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, slot) in incoming.iter_mut().enumerate() {
            *slot = self.recv(src, tags::ALL_TO_ALL);
        }
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// Chunked/pipelined all-to-all (§5.1): each per-destination buffer is
    /// split into chunks of at most `chunk_elems` elements which are sent
    /// round-robin across destinations, so no single long message
    /// serializes the exchange — the software analogue of pipelining PCIe
    /// staging with InfiniBand transfers. Message *contents* are identical
    /// to [`Comm::all_to_all`]; this collective assumes the symmetric
    /// layouts used by the FFT exchanges (you receive from `src` as many
    /// elements as you send to `src`).
    pub fn all_to_all_chunked(
        &mut self,
        outgoing: Vec<Vec<c64>>,
        chunk_elems: usize,
    ) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        assert!(chunk_elems > 0, "chunk size must be positive");
        let t = self.stats.phase_start();
        let lens: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        // Round-robin over destinations, one chunk at a time.
        let mut offsets = vec![0usize; self.size];
        let mut more = true;
        while more {
            more = false;
            for (dst, buf) in outgoing.iter().enumerate() {
                let off = offsets[dst];
                if off >= lens[dst] {
                    continue;
                }
                let take = chunk_elems.min(lens[dst] - off);
                self.send(dst, tags::ALL_TO_ALL_CHUNK, buf[off..off + take].to_vec());
                offsets[dst] = off + take;
                more |= offsets[dst] < lens[dst];
            }
        }
        // Reassemble, receiving chunks in order per source. Expected
        // lengths mirror what we sent (symmetric exchange).
        let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, slot) in incoming.iter_mut().enumerate() {
            while slot.len() < lens[src] {
                let chunk = self.recv(src, tags::ALL_TO_ALL_CHUNK);
                slot.extend_from_slice(&chunk);
            }
        }
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// Asymmetric chunked all-to-all (`MPI_Alltoallv` with pipelining):
    /// like [`Comm::all_to_all_chunked`], but the caller states how many
    /// elements to expect from each source instead of assuming symmetry —
    /// needed by heterogeneous segment layouts whose per-peer volumes
    /// differ.
    pub fn all_to_all_chunked_v(
        &mut self,
        outgoing: Vec<Vec<c64>>,
        chunk_elems: usize,
        expected: &[usize],
    ) -> Vec<Vec<c64>> {
        assert_eq!(outgoing.len(), self.size, "need one buffer per rank");
        assert_eq!(expected.len(), self.size, "need one expectation per rank");
        assert!(chunk_elems > 0, "chunk size must be positive");
        let t = self.stats.phase_start();
        let lens: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        let mut offsets = vec![0usize; self.size];
        let mut more = true;
        while more {
            more = false;
            for (dst, buf) in outgoing.iter().enumerate() {
                let off = offsets[dst];
                if off >= lens[dst] {
                    continue;
                }
                let take = chunk_elems.min(lens[dst] - off);
                self.send(dst, tags::ALL_TO_ALL_CHUNK, buf[off..off + take].to_vec());
                offsets[dst] = off + take;
                more |= offsets[dst] < lens[dst];
            }
        }
        let mut incoming: Vec<Vec<c64>> = (0..self.size).map(|_| Vec::new()).collect();
        for (src, slot) in incoming.iter_mut().enumerate() {
            while slot.len() < expected[src] {
                let chunk = self.recv(src, tags::ALL_TO_ALL_CHUNK);
                slot.extend_from_slice(&chunk);
            }
        }
        self.stats.phase_end("all-to-all", t);
        incoming
    }

    /// Ghost exchange (Fig 2's nearest-neighbour step): every rank sends
    /// the first `ghost_len` elements of its local input to its predecessor
    /// and receives its successor's prefix (circularly). Recorded as the
    /// `"ghost"` phase.
    pub fn exchange_ghost(&mut self, local: &[c64], ghost_len: usize) -> Vec<c64> {
        assert!(ghost_len <= local.len(), "ghost larger than local data");
        let t = self.stats.phase_start();
        let prev = (self.rank + self.size - 1) % self.size;
        let next = (self.rank + 1) % self.size;
        let out = local[..ghost_len].to_vec();
        let got = self.send_recv(prev, tags::GHOST, out, next, tags::GHOST);
        self.stats.phase_end("ghost", t);
        got
    }

    /// Gathers every rank's buffer to rank 0 (returns `None` elsewhere).
    pub fn gather(&mut self, data: Vec<c64>) -> Option<Vec<Vec<c64>>> {
        if self.rank == 0 {
            let mut all: Vec<Vec<c64>> = Vec::with_capacity(self.size);
            all.push(data);
            for src in 1..self.size {
                all.push(self.recv(src, tags::GATHER));
            }
            Some(all)
        } else {
            self.send(0, tags::GATHER, data);
            None
        }
    }

    /// Broadcast from `root`: the root's `data` is returned on every rank.
    pub fn broadcast(&mut self, root: usize, data: Vec<c64>) -> Vec<c64> {
        assert!(root < self.size, "root out of range");
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send(dst, tags::BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(root, tags::BCAST)
        }
    }

    /// All-gather: every rank contributes `data` and receives everyone's
    /// contribution, indexed by rank. Implemented as a symmetric exchange
    /// (each rank sends its buffer to every peer), which is how the
    /// verification steps of the examples collect distributed spectra.
    pub fn allgather(&mut self, data: Vec<c64>) -> Vec<Vec<c64>> {
        let outgoing: Vec<Vec<c64>> = (0..self.size).map(|_| data.clone()).collect();
        self.all_to_all(outgoing)
    }

    /// All-reduce of a scalar by maximum (used for error norms and timing
    /// reductions). Implemented as gather-to-0 + broadcast.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        if self.rank == 0 {
            let mut m = value;
            for src in 1..self.size {
                m = m.max(self.recv(src, tags::REDUCE)[0].re);
            }
            for dst in 1..self.size {
                self.send(dst, tags::BCAST, vec![c64::new(m, 0.0)]);
            }
            m
        } else {
            self.send(0, tags::REDUCE, vec![c64::new(value, 0.0)]);
            self.recv(0, tags::BCAST)[0].re
        }
    }
}

/// Reserved tags for built-in collectives; user tags should start at
/// [`tags::USER`].
pub mod tags {
    /// Blocking all-to-all.
    pub const ALL_TO_ALL: u64 = 1;
    /// Chunked all-to-all.
    pub const ALL_TO_ALL_CHUNK: u64 = 2;
    /// Ghost (nearest-neighbour) exchange.
    pub const GHOST: u64 = 3;
    /// Gather to root.
    pub const GATHER: u64 = 4;
    /// Reduction upsweep.
    pub const REDUCE: u64 = 5;
    /// Broadcast downsweep.
    pub const BCAST: u64 = 6;
    /// First tag available to applications.
    pub const USER: u64 = 1 << 16;
}

/// The cluster launcher.
///
/// # Example
///
/// ```
/// use soifft_cluster::{Cluster, tags};
/// use soifft_num::c64;
///
/// // A 3-rank ring: everyone passes a token to the right.
/// let out = Cluster::run(3, |comm| {
///     let next = (comm.rank() + 1) % comm.size();
///     let prev = (comm.rank() + 2) % comm.size();
///     let token = vec![c64::real(comm.rank() as f64)];
///     let got = comm.send_recv(next, tags::USER, token, prev, tags::USER);
///     got[0].re as usize
/// });
/// assert_eq!(out, vec![2, 0, 1]);
/// ```
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `ranks` concurrent ranks and returns each rank's result,
    /// indexed by rank.
    ///
    /// `f` receives a [`Comm`] wired to all peers. Panics in any rank
    /// propagate (the run aborts).
    pub fn run<T, F>(ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(ranks >= 1, "need at least one rank");
        let mut txs = Vec::with_capacity(ranks);
        let mut rxs = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = unbounded::<Message>();
            txs.push(tx);
            rxs.push(rx);
        }
        let barrier = Arc::new(Barrier::new(ranks));
        let mut comms: Vec<Comm> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                size: ranks,
                senders: txs.clone(),
                receiver,
                pending: HashMap::new(),
                barrier: Arc::clone(&barrier),
                stats: CommStats::default(),
            })
            .collect();
        drop(txs);

        std::thread::scope(|s| {
            let f = &f;
            let mut handles = Vec::with_capacity(ranks);
            for mut comm in comms.drain(..) {
                handles.push(s.spawn(move || f(&mut comm)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn point_to_point_ring() {
        let p = 5;
        let out = Cluster::run(p, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let payload = vec![c64::real(comm.rank() as f64)];
            let got = comm.send_recv(next, tags::USER, payload, prev, tags::USER);
            got[0].re as usize
        });
        for (rank, &got) in out.iter().enumerate() {
            assert_eq!(got, (rank + p - 1) % p, "rank {rank}");
        }
    }

    #[test]
    fn tag_matching_keeps_streams_separate() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, tags::USER + 1, vec![c64::real(1.0)]);
                comm.send(1, tags::USER + 2, vec![c64::real(2.0)]);
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, tags::USER + 2)[0].re;
                let a = comm.recv(0, tags::USER + 1)[0].re;
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn self_send_works() {
        let out = Cluster::run(1, |comm| {
            comm.send(0, tags::USER, vec![c64::real(7.0)]);
            comm.recv(0, tags::USER)[0].re
        });
        assert_eq!(out[0], 7.0);
    }

    #[test]
    fn fifo_order_within_same_src_tag() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..8 {
                    comm.send(1, tags::USER, vec![c64::real(i as f64)]);
                }
                Vec::new()
            } else {
                (0..8).map(|_| comm.recv(0, tags::USER)[0].re as usize).collect()
            }
        });
        assert_eq!(out[1], (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                // Rank 1 sends only after the first barrier, so this poll
                // is guaranteed to see nothing.
                let early = comm.try_recv(1, tags::USER).is_none();
                comm.barrier(); // release rank 1 to send
                comm.barrier(); // wait until it has sent
                // Poll until it arrives (bounded spin).
                let mut got = None;
                for _ in 0..1_000_000 {
                    if let Some(v) = comm.try_recv(1, tags::USER) {
                        got = Some(v);
                        break;
                    }
                }
                (early, got.expect("message must arrive")[0].re)
            } else {
                comm.barrier();
                comm.send(0, tags::USER, vec![c64::real(5.0)]);
                comm.barrier();
                (true, 0.0)
            }
        });
        assert!(out[0].0, "early poll must be empty");
        assert_eq!(out[0].1, 5.0);
    }

    #[test]
    fn all_to_all_is_a_global_transpose() {
        let p = 4;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            // outgoing[d][j] encodes (src=r, dst=d, j).
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| (0..3).map(|j| c64::new(r as f64, (d * 10 + j) as f64)).collect())
                .collect();
            comm.all_to_all(outgoing)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                for (j, v) in buf.iter().enumerate() {
                    assert_eq!(v.re as usize, src);
                    assert_eq!(v.im as usize, r * 10 + j);
                }
            }
        }
    }

    #[test]
    fn chunked_all_to_all_matches_blocking() {
        let p = 3;
        let make_outgoing = |r: usize| -> Vec<Vec<c64>> {
            (0..p)
                .map(|d| {
                    (0..17)
                        .map(|j| c64::new((r * 100 + d * 10) as f64, j as f64))
                        .collect()
                })
                .collect()
        };
        let blocking = Cluster::run(p, |comm| comm.all_to_all(make_outgoing(comm.rank())));
        for chunk in [1, 4, 16, 17, 64] {
            let chunked = Cluster::run(p, |comm| {
                comm.all_to_all_chunked(make_outgoing(comm.rank()), chunk)
            });
            assert_eq!(chunked, blocking, "chunk={chunk}");
        }
    }

    #[test]
    fn ghost_exchange_brings_successor_prefix() {
        let p = 4;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let local: Vec<c64> = (0..8).map(|i| c64::new(r as f64, i as f64)).collect();
            comm.exchange_ghost(&local, 3)
        });
        for (r, ghost) in out.iter().enumerate() {
            let next = (r + 1) % p;
            assert_eq!(ghost.len(), 3);
            for (i, v) in ghost.iter().enumerate() {
                assert_eq!(v.re as usize, next);
                assert_eq!(v.im as usize, i);
            }
        }
    }

    #[test]
    fn gather_collects_everything_at_root() {
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            comm.gather(vec![c64::real(r as f64); r + 1])
        });
        let root = out[0].as_ref().expect("root should have data");
        assert!(out[1].is_none() && out[2].is_none());
        for (src, buf) in root.iter().enumerate() {
            assert_eq!(buf.len(), src + 1);
            assert!(buf.iter().all(|v| v.re as usize == src));
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let out = Cluster::run(4, |comm| {
            let data = if comm.rank() == 2 {
                vec![c64::new(3.0, -1.0); 5]
            } else {
                Vec::new()
            };
            comm.broadcast(2, data)
        });
        for v in &out {
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|z| *z == c64::new(3.0, -1.0)));
        }
    }

    #[test]
    fn allgather_collects_by_rank() {
        let out = Cluster::run(3, |comm| {
            comm.allgather(vec![c64::real(comm.rank() as f64); comm.rank() + 1])
        });
        for (me, all) in out.iter().enumerate() {
            assert_eq!(all.len(), 3, "rank {me}");
            for (src, buf) in all.iter().enumerate() {
                assert_eq!(buf.len(), src + 1);
                assert!(buf.iter().all(|z| z.re as usize == src));
            }
        }
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        let vals = [3.0, -1.0, 7.5, 2.0];
        let out = Cluster::run(4, |comm| comm.allreduce_max(vals[comm.rank()]));
        assert!(out.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn chunked_all_to_all_handles_empty_buffers() {
        // Heterogeneous exchanges ship empty buffers to some peers.
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> = (0..p)
                .map(|d| {
                    if (r + d) % 2 == 0 {
                        vec![c64::real((r * 10 + d) as f64); 5]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            comm.all_to_all_chunked(outgoing, 2)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                if (src + r) % 2 == 0 {
                    assert_eq!(buf.len(), 5, "r={r} src={src}");
                    assert_eq!(buf[0].re as usize, src * 10 + r);
                } else {
                    assert!(buf.is_empty(), "r={r} src={src}");
                }
            }
        }
    }

    #[test]
    fn chunked_v_handles_asymmetric_volumes() {
        // Rank r sends r+1 elements to everyone; expects src+1 from src.
        let p = 3;
        let out = Cluster::run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<c64>> =
                (0..p).map(|_| vec![c64::real(r as f64); r + 1]).collect();
            let expected: Vec<usize> = (0..p).map(|src| src + 1).collect();
            comm.all_to_all_chunked_v(outgoing, 2, &expected)
        });
        for incoming in &out {
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf.len(), src + 1);
                assert!(buf.iter().all(|z| z.re as usize == src));
            }
        }
    }

    #[test]
    fn allreduce_single_rank() {
        let out = Cluster::run(1, |comm| comm.allreduce_max(-3.5));
        assert_eq!(out[0], -3.5);
    }

    #[test]
    fn stats_record_bytes_and_phases() {
        let out = Cluster::run(2, |comm| {
            let outgoing = vec![vec![c64::ZERO; 10], vec![c64::ZERO; 10]];
            comm.all_to_all(outgoing);
            let local = vec![c64::ZERO; 6];
            comm.exchange_ghost(&local, 2);
            comm.stats().clone()
        });
        for s in &out {
            // 20 elements in the all-to-all + 2 in the ghost, 16 B each.
            assert_eq!(s.total_bytes_sent(), (20 + 2) * 16);
            let phases: Vec<&str> = s.records().iter().map(|r| r.name).collect();
            assert_eq!(phases, vec!["all-to-all", "ghost"]);
            assert!(s.records()[0].seconds >= 0.0);
        }
    }

    #[test]
    fn randomized_message_storm_is_lossless() {
        // Every rank fires a deterministic pseudo-random sequence of sends
        // (varied sizes, tags, destinations), then receives everything in
        // a fixed matching order. Exercises the pending-queue plumbing
        // under out-of-order arrival.
        let p = 4;
        let msgs_per_pair = 16;
        let out = Cluster::run(p, |comm| {
            let me = comm.rank();
            let mut rng = (me as u64 + 1) * 0x9E37_79B9;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            // Send msgs_per_pair messages to every rank with mixed tags.
            for k in 0..msgs_per_pair {
                for dst in 0..p {
                    let tag = tags::USER + (k % 3) as u64;
                    let len = (next() % 50 + 1) as usize;
                    let payload =
                        vec![c64::new(me as f64, (k * p + dst) as f64); len];
                    comm.send(dst, tag, payload);
                }
            }
            // Receive them all, counting per (src, tag-class).
            let mut total = 0usize;
            let mut checksum = 0.0f64;
            for k in 0..msgs_per_pair {
                for src in 0..p {
                    let tag = tags::USER + (k % 3) as u64;
                    let got = comm.recv(src, tag);
                    assert!(got.iter().all(|z| z.re as usize == src));
                    total += 1;
                    checksum += got[0].im;
                }
            }
            (total, checksum)
        });
        for (total, _) in &out {
            assert_eq!(*total, p * msgs_per_pair);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
